//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! The macros parse the item's token stream directly (no `syn`/`quote`,
//! which are unavailable offline) and emit impls of the value-model
//! `serde::Serialize` / `serde::Deserialize` traits.  Supported shapes —
//! the ones this workspace uses:
//!
//! * structs with named fields, honouring `#[serde(skip)]` (skipped fields
//!   are omitted on serialize and `Default`-initialised on deserialize),
//! * tuple structs (arity 1 is transparent, like serde newtypes),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   serde's default representation).
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes leading attributes (`#[...]`), returning whether any of them was
/// `#[serde(skip)]`.
fn eat_attributes(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while *pos + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*pos] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*pos + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        skip |= attr_is_serde_skip(&g.stream());
        *pos += 2;
    }
    skip
}

fn attr_is_serde_skip(stream: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...).
fn eat_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(&tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    eat_attributes(&tokens, &mut pos);
    eat_visibility(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected `struct` or `enum`".to_string()),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err(format!("expected a name after `{kind}`")),
    };
    pos += 1;

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generics (type `{name}`)"
        ));
    }

    match (kind.as_str(), tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Struct {
                name,
                fields: parse_named_fields(&g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Item::TupleStruct {
                name,
                arity: count_tuple_fields(&g.stream()),
            })
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            Ok(Item::UnitStruct { name })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Enum {
                name,
                variants: parse_variants(&g.stream())?,
            })
        }
        _ => Err(format!("unsupported item shape for `{name}`")),
    }
}

fn parse_named_fields(stream: &TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let skip = eat_attributes(&tokens, &mut pos);
        eat_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            _ => return Err("expected a field name".to_string()),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name, skip });
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(fields)
}

/// Advances past one type, stopping at a `,` outside all angle brackets.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn count_tuple_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        eat_attributes(&tokens, &mut pos);
        eat_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        arity += 1;
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    arity
}

fn parse_variants(stream: &TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        eat_attributes(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            _ => return Err("expected a variant name".to_string()),
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Struct(
                    parse_named_fields(&g.stream())?
                        .into_iter()
                        .map(|f| f.name)
                        .collect(),
                )
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut body =
                String::from("let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                body.push_str(&format!(
                    "entries.push((String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            body.push_str("::serde::Value::Map(entries)");
            impl_serialize(name, &body)
        }
        Item::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Seq(vec![{}])", items.join(", ")),
            )
        }
        Item::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(arity) => {
                        let bindings: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let items: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(vec![(String::from(\"{v}\"), {payload})]),\n",
                            v = v.name,
                            binds = bindings.join(", ")
                        ));
                    }
                    VariantShape::Struct(field_names) => {
                        let entries: Vec<String> = field_names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![(String::from(\"{v}\"), ::serde::Value::Map(vec![{entries}]))]),\n",
                            v = v.name,
                            binds = field_names.join(", "),
                            entries = entries.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::Deserialize::from_value(::serde::map_get(entries, \"{0}\"))?,\n",
                        f.name
                    ));
                }
            }
            let body = format!(
                "let entries = v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\", v))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            );
            impl_deserialize(name, &body)
        }
        Item::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            &format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let body = format!(
                "let items = v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}\", v))?;\n\
                 if items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::new(format!(\"expected {arity} elements for {name}, got {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({fields}))",
                fields = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            impl_deserialize(name, &body)
        }
        Item::UnitStruct { name } => {
            impl_deserialize(name, &format!("::std::result::Result::Ok({name})"))
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                        v.name
                    )
                })
                .collect();
            let mut data_arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => {}
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(arity) => {
                        let fields: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                                 let items = payload.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}::{v}\", payload))?;\n\
                                 if items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::new(format!(\"expected {arity} elements for {name}::{v}, got {{}}\", items.len())));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{v}({fields}))\n\
                             }}\n",
                            v = v.name,
                            fields = fields.join(", ")
                        ));
                    }
                    VariantShape::Struct(field_names) => {
                        let inits: Vec<String> = field_names
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::map_get(inner, \"{f}\"))?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                                 let inner = payload.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}::{v}\", payload))?;\n\
                                 ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n\
                             }}\n",
                            v = v.name,
                            inits = inits.join(", ")
                        ));
                    }
                }
            }
            let map_arm = if data_arms.is_empty() {
                format!(
                    "::serde::Value::Map(_) => ::std::result::Result::Err(::serde::DeError::expected(\"variant name string\", \"{name}\", v)),\n"
                )
            } else {
                format!(
                    "::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (key, payload) = &entries[0];\n\
                         match key.as_str() {{\n{data_arms}\
                             other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n"
                )
            };
            let body = format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                         other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     {map_arm}\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-entry map\", \"{name}\", other)),\n\
                 }}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
