//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros and `black_box` — with a
//! deliberately simple measurement strategy: each benchmark body runs a
//! handful of iterations and the mean wall-clock time is printed.  This
//! keeps `cargo bench` functional (and the bench targets compiling) without
//! criterion's statistical machinery, which is unavailable offline.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after one warm-up run).
const ITERATIONS: u32 = 3;

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { name }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_case(&id.into(), &mut body);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stand-in always runs a fixed,
    /// small number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (see [`BenchmarkGroup::sample_size`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (see [`BenchmarkGroup::sample_size`]).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `body` with the given input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_case(&label, &mut |b: &mut Bencher| body(b, input));
        self
    }

    /// Benchmarks a function without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_case(&label, &mut body);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_case<F: FnMut(&mut Bencher)>(label: &str, body: &mut F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    body(&mut bencher);
    if bencher.iterations > 0 {
        let mean = bencher.elapsed / bencher.iterations;
        eprintln!("  {label}: {mean:?}/iter over {} iters", bencher.iterations);
    } else {
        eprintln!("  {label}: no iterations recorded");
    }
}

/// Passed to benchmark bodies; its [`Bencher::iter`] method times a closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times `routine`, discarding one warm-up invocation first.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += ITERATIONS;
    }
}

/// A two-part benchmark identifier (`function name` / `parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, ITERATIONS + 1);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(1))
            .warm_up_time(Duration::from_millis(10));
        let input = 21u64;
        let mut result = 0u64;
        group.bench_with_input(BenchmarkId::new("double", input), &input, |b, &i| {
            b.iter(|| result = i * 2);
        });
        group.finish();
        assert_eq!(result, 42);
    }
}
