//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the small API subset the workspace's deterministic workload
//! generators use: [`rngs::SmallRng`] (an xoshiro256++ generator seeded via
//! splitmix64, the same construction the real `SmallRng` uses on 64-bit
//! targets), [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! half-open and inclusive integer / float ranges, and [`Rng::gen_bool`].
//!
//! Streams are deterministic per seed but do **not** match the real rand
//! crate bit-for-bit; all workspace tests treat generator output as opaque.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a value from the standard distribution: `[0, 1)` for
    /// floats, the full range for integers, a fair coin for `bool`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a float in `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen`] can sample from their standard distribution.
pub trait StandardSample {
    /// Draws one sample from the standard distribution.
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

impl StandardSample for bool {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from, producing values of
/// type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Types with a uniform sampling routine over an interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    fn sample_interval<G: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut G,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_interval(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_interval(start, end, true, rng)
    }
}

impl SampleUniform for f64 {
    fn sample_interval<G: RngCore + ?Sized>(
        start: f64,
        end: f64,
        inclusive: bool,
        rng: &mut G,
    ) -> f64 {
        let v = start + unit_f64(rng.next_u64()) * (end - start);
        // Guard against rounding up to an excluded endpoint.
        if inclusive || v < end {
            v
        } else {
            start
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<G: RngCore + ?Sized>(
                start: $t,
                end: $t,
                inclusive: bool,
                rng: &mut G,
            ) -> $t {
                let span = (end as i128 - start as i128 + if inclusive { 1 } else { 0 }) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as rand_core does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&v));
            let w = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        let mut seen_inclusive = [false; 7];
        for _ in 0..500 {
            seen_inclusive[(rng.gen_range(-3i32..=3) + 3) as usize] = true;
        }
        assert!(seen_inclusive.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
