//! JSON text format over the [`crate::Value`] model.
//!
//! Floating point numbers are printed with Rust's shortest-round-trip
//! formatting (`{:?}`), so `to_string` → `from_str` preserves every `f64`
//! bit pattern except NaN.

use crate::{DeError, Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serialises a value to a JSON string.
pub fn to_string<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    out
}

/// Parses a JSON string into a value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, DeError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(DeError::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n:?}");
            } else {
                // JSON has no non-finite literals; fall back to null, the
                // same policy as serde_json's default.
                out.push_str("null");
            }
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(DeError::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(DeError::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::new("invalid number bytes"))?;
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| DeError::new(format!("invalid number '{text}' at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(DeError::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(DeError::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| DeError::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| DeError::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::new("invalid unicode scalar"))?,
                            );
                        }
                        other => {
                            return Err(DeError::new(format!(
                                "unknown escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full scalar in the source.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| DeError::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(DeError::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(DeError::new(format!(
                        "expected ',' or '}}' at {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("1e-12").unwrap(), 1e-12);
        assert_eq!(to_string(&1e-12f64), "1e-12");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert!(from_str::<bool>(" true ").unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.5, -3.0];
        assert_eq!(from_str::<Vec<f64>>(&to_string(&v)).unwrap(), v);
        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("2.0").unwrap(), Some(2.0));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\té€".to_string();
        assert_eq!(from_str::<String>(&to_string(&s)).unwrap(), s);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("tru").is_err());
    }
}
