//! Offline stand-in for the `serde` facade.
//!
//! The build environment of this workspace has no access to crates.io, so
//! this crate provides the small subset of serde the workspace actually
//! uses, backed by a self-describing [`Value`] model and a JSON text
//! format:
//!
//! * [`Serialize`] / [`Deserialize`] traits (value-model based rather than
//!   visitor based),
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro crate (re-exported here, like serde's `derive` feature),
//!   including `#[serde(skip)]` on struct fields,
//! * a [`json`] module with `to_string` / `from_str` for round-tripping.
//!
//! The encoding conventions follow serde's JSON defaults: structs become
//! maps keyed by field name, unit enum variants become strings, data-
//! carrying variants become single-entry maps, newtype structs are
//! transparent.

#![warn(missing_docs)]

use std::fmt;
use std::time::Duration;

/// A self-describing value: the intermediate representation every
/// [`Serialize`] implementation produces and every [`Deserialize`]
/// implementation consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A floating point number.
    Num(f64),
    /// An unsigned integer (kept separate from `Num` so `u64` ids survive
    /// round trips exactly).
    UInt(u64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys.
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The map entries, or `None` when the value is not a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, or `None` when the value is not a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A short name of the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::UInt(_) => "integer",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Looks up `key` in a map's entries, yielding [`Value::Null`] when the key
/// is absent (so `Option` fields deserialize to `None`).
pub fn map_get<'v>(entries: &'v [(String, Value)], key: &str) -> &'v Value {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Error raised when a [`Value`] cannot be decoded into the requested type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Creates an "expected X while decoding Y, got Z" error.
    pub fn expected(what: &str, context: &str, got: &Value) -> Self {
        Self::new(format!("expected {what} for {context}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can turn themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Decodes a value into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => *n as u64,
                    other => return Err(DeError::expected("unsigned integer", stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    Value::UInt(n) => <$t>::try_from(*n).map_err(|_| {
                        DeError::new(format!("{n} out of range for {}", stringify!($t)))
                    }),
                    other => Err(DeError::expected("integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(DeError::expected("sequence", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element sequence", "tuple", v)),
        }
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::expected("map", "Duration", v))?;
        let secs = u64::from_value(map_get(entries, "secs"))?;
        let nanos = u32::from_value(map_get(entries, "nanos"))?;
        Ok(Duration::new(secs, nanos))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

pub mod json;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(usize::from_value(&Value::Num(3.0)).unwrap(), 3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<f64>::from_value(&vec![1.0, 2.0].to_value()).unwrap(),
            vec![1.0, 2.0]
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            <(f64, f64)>::from_value(&(1.0, 2.0).to_value()).unwrap(),
            (1.0, 2.0)
        );
    }

    #[test]
    fn duration_round_trips() {
        let d = Duration::new(3, 250);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn map_get_falls_back_to_null() {
        let entries = vec![("a".to_string(), Value::Bool(true))];
        assert_eq!(map_get(&entries, "a"), &Value::Bool(true));
        assert_eq!(map_get(&entries, "b"), &Value::Null);
    }

    #[test]
    fn type_errors_are_reported() {
        let err = u32::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(format!("{err}").contains("unsigned integer"));
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }
}
