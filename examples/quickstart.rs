//! Quickstart: find the region most similar to an example region.
//!
//! Run with `cargo run --example quickstart --release`.
//!
//! The example builds a small synthetic POI dataset, describes a query
//! region by example, and runs the exact DS-Search algorithm and the
//! grid-index-accelerated GI-DS variant, printing both results.

use asrs_suite::prelude::*;

fn main() {
    // 1. A synthetic dataset: 5,000 POIs with a categorical attribute.
    let dataset = UniformGenerator::default().generate(5_000, 42);
    println!(
        "dataset: {} objects over {}",
        dataset.len(),
        dataset.bounding_box().expect("non-empty dataset")
    );

    // 2. A composite aggregator describing which aspects of a region we
    //    care about — here, the distribution of POI categories.
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .distribution("category", Selection::All)
        .build()
        .expect("schema has a 'category' attribute");

    // 3. Query by example: "find me a region that looks like this one".
    let example = Rect::new(10.0, 10.0, 30.0, 25.0);
    let query = AsrsQuery::from_example_region(&dataset, &aggregator, &example)
        .expect("example region is non-degenerate");
    println!(
        "query region {} has representation {}",
        example, query.target
    );

    // 4. Exact search with DS-Search.
    let result = DsSearch::new(&dataset, &aggregator).search(&query);
    println!(
        "DS-Search: best region {} at distance {:.4} ({} sub-spaces, {} clean cells, {:.1?})",
        result.region,
        result.distance,
        result.stats.spaces_processed,
        result.stats.clean_cells,
        result.stats.elapsed
    );

    // 5. The same query through the grid index (GI-DS).
    let index = GridIndex::build(&dataset, &aggregator, 64, 64).expect("non-empty dataset");
    let indexed = GiDsSearch::new(&dataset, &aggregator, &index).search(&query);
    println!(
        "GI-DS:     best region {} at distance {:.4} (searched {}/{} index cells, {:.1?})",
        indexed.region,
        indexed.distance,
        indexed.stats.index_cells_searched,
        indexed.stats.index_cells_total,
        indexed.stats.elapsed
    );

    assert!((result.distance - indexed.distance).abs() < 1e-9);
    println!("both solvers agree on the optimal distance ✓");
}
