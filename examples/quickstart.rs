//! Quickstart: find the region most similar to an example region.
//!
//! Run with `cargo run --example quickstart --release`.
//!
//! The example builds a small synthetic POI dataset and drives everything
//! through the engine's declarative request/plan/execute API:
//! query-by-example, cost-based backend planning with `plan.explain()`,
//! `submit`, per-request deadlines, top-k and batch requests, and
//! concurrent submission through cloned `EngineHandle`s.

use asrs_suite::prelude::*;

fn main() {
    // 1. A synthetic dataset: 5,000 POIs with a categorical attribute.
    let dataset = UniformGenerator::default().generate(5_000, 42);
    println!(
        "dataset: {} objects over {}",
        dataset.len(),
        dataset.bounding_box().expect("non-empty dataset")
    );

    // 2. A composite aggregator describing which aspects of a region we
    //    care about — here, the distribution of POI categories.
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .distribution("category", Selection::All)
        .build()
        .expect("schema has a 'category' attribute");

    // 3. The engine: owns dataset + aggregator and builds the grid index.
    //    Backends are chosen per request by the cost-based planner.
    let engine = AsrsEngine::builder(dataset, aggregator)
        .build_index(64, 64)
        .build()
        .expect("valid configuration and non-empty dataset");

    // 4. Query by example: "find me a region that looks like this one".
    let example = Rect::new(10.0, 10.0, 30.0, 25.0);
    let query = engine
        .query_from_example(&example)
        .expect("example region is non-degenerate");
    println!(
        "query region {} has representation {}",
        example, query.target
    );

    // 5. Plan, then submit.  The plan explains the cost model's choice;
    //    the response bundles results, backend and statistics.  A deadline
    //    guards against runaway queries — serving-style.
    let request = QueryRequest::similar(query.clone()).with_budget_ms(30_000);
    println!("{}", engine.plan(&request).expect("plannable").explain());
    let response = engine.submit(&request).expect("within budget");
    let best = response.best().expect("similar yields a best region");
    println!(
        "[{}] best region {} at distance {:.4} (searched {}/{} index cells, {:.1?})",
        response.backend,
        best.region,
        best.distance,
        response.stats.index_cells_searched,
        response.stats.index_cells_total,
        response.stats.elapsed
    );

    // 6. The same query with the backend forced to plain DS-Search must
    //    agree on the optimal distance — planning never costs answer
    //    quality (though tied optima may surface as different, equally
    //    optimal regions).  The un-indexed algorithm degrades on dense
    //    uniform data (that is what the grid index is for), so compare on
    //    a 1,500-object sample.
    let sample = UniformGenerator::default().generate(1_500, 42);
    let sample_engine = AsrsEngine::builder(sample, (*engine.aggregator()).clone())
        .build_index(64, 64)
        .build()
        .expect("valid configuration");
    let sample_query = sample_engine
        .query_from_example(&example)
        .expect("example region is non-degenerate");
    let planned = sample_engine
        .submit(&QueryRequest::similar(sample_query.clone()))
        .expect("valid request");
    let forced = sample_engine
        .submit(&QueryRequest::similar(sample_query).with_backend(Backend::DsSearch))
        .expect("valid request");
    println!(
        "planned [{}] distance {:.4} vs forced [{}] distance {:.4}",
        planned.backend,
        planned.best().unwrap().distance,
        forced.backend,
        forced.best().unwrap().distance
    );
    assert!((planned.best().unwrap().distance - forced.best().unwrap().distance).abs() < 1e-9);
    println!("both backends agree on the optimal distance ✓");

    // 7. The 3 best distinct anchors...
    let top = engine
        .submit(&QueryRequest::top_k(query.clone(), 3))
        .expect("k >= 1");
    for (rank, r) in top.results().iter().enumerate() {
        println!(
            "top-{}: {} at distance {:.4}",
            rank + 1,
            r.region,
            r.distance
        );
    }

    // ...and a thread-parallel batch of related queries, answered in input
    // order with merged statistics.
    let batch: Vec<AsrsQuery> = [8.0, 15.0, 25.0]
        .iter()
        .map(|side| {
            let region = Rect::new(40.0, 40.0, 40.0 + side, 40.0 + side);
            engine.query_from_example(&region).expect("non-degenerate")
        })
        .collect();
    let answers = engine
        .submit(&QueryRequest::batch(batch.clone()))
        .expect("all queries are valid");
    println!(
        "batch: {} queries answered, {} sub-spaces processed in total",
        answers.results().len(),
        answers.stats.spaces_processed
    );
    for (q, a) in batch.iter().zip(answers.results()) {
        println!("  {} → {} at distance {:.4}", q.size, a.region, a.distance);
    }

    // 8. Concurrency: cheap handles share the engine across threads.
    let handle = engine.handle();
    let concurrent: Vec<f64> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                let handle = handle.clone();
                let query = query.clone();
                scope.spawn(move || {
                    handle
                        .submit(&QueryRequest::similar(query))
                        .expect("valid request")
                        .best()
                        .expect("similar yields a best region")
                        .distance
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().expect("worker thread"))
            .collect()
    });
    assert!(concurrent.iter().all(|d| (d - best.distance).abs() < 1e-12));
    println!(
        "{} concurrent handle submissions agree with the sequential answer ✓",
        concurrent.len()
    );
}
