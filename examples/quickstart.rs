//! Quickstart: find the region most similar to an example region.
//!
//! Run with `cargo run --example quickstart --release`.
//!
//! The example builds a small synthetic POI dataset and drives everything
//! through the `AsrsEngine` facade: query-by-example, automatic backend
//! selection (GI-DS because an index is attached), explicit backend
//! comparison, top-k and batch querying.

use asrs_suite::prelude::*;

fn main() {
    // 1. A synthetic dataset: 5,000 POIs with a categorical attribute.
    let dataset = UniformGenerator::default().generate(5_000, 42);
    println!(
        "dataset: {} objects over {}",
        dataset.len(),
        dataset.bounding_box().expect("non-empty dataset")
    );

    // 2. A composite aggregator describing which aspects of a region we
    //    care about — here, the distribution of POI categories.
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .distribution("category", Selection::All)
        .build()
        .expect("schema has a 'category' attribute");

    // 3. The engine: owns dataset + aggregator, builds the grid index and
    //    picks the backend (Auto: index present → GI-DS).
    let engine = AsrsEngine::builder(dataset, aggregator)
        .build_index(64, 64)
        .strategy(Strategy::Auto)
        .build()
        .expect("valid configuration and non-empty dataset");
    println!("engine backend: {}", engine.backend_name());

    // 4. Query by example: "find me a region that looks like this one".
    let example = Rect::new(10.0, 10.0, 30.0, 25.0);
    let query = engine
        .query_from_example(&example)
        .expect("example region is non-degenerate");
    println!(
        "query region {} has representation {}",
        example, query.target
    );

    // 5. Search through the facade.
    let result = engine.search(&query).expect("query matches the aggregator");
    println!(
        "{}: best region {} at distance {:.4} (searched {}/{} index cells, {:.1?})",
        engine.backend_name(),
        result.region,
        result.distance,
        result.stats.index_cells_searched,
        result.stats.index_cells_total,
        result.stats.elapsed
    );

    // 6. The same query on the plain DS-Search backend must agree.  The
    //    un-indexed algorithm degrades on dense uniform data (that is what
    //    the grid index is for), so compare on a 1,500-object sample.
    let sample = UniformGenerator::default().generate(1_500, 42);
    let sample_query = AsrsQuery::from_example_region(&sample, engine.aggregator(), &example)
        .expect("example region is non-degenerate");
    let ds_engine = AsrsEngine::builder(sample.clone(), engine.aggregator().clone())
        .strategy(Strategy::DsSearch)
        .build()
        .expect("valid configuration");
    let plain = ds_engine
        .search(&sample_query)
        .expect("query matches the aggregator");
    println!(
        "ds-search: best region {} at distance {:.4} ({} sub-spaces, {:.1?})",
        plain.region, plain.distance, plain.stats.spaces_processed, plain.stats.elapsed
    );
    let gi_sample = AsrsEngine::builder(sample, engine.aggregator().clone())
        .build_index(64, 64)
        .build()
        .expect("valid configuration");
    let indexed = gi_sample
        .search(&sample_query)
        .expect("query matches the aggregator");
    assert!((indexed.distance - plain.distance).abs() < 1e-9);
    println!("both backends agree on the optimal distance ✓");

    // 7. Engine-level extras: the 3 best distinct anchors...
    let top = engine.search_top_k(&query, 3).expect("k >= 1");
    for (rank, r) in top.iter().enumerate() {
        println!(
            "top-{}: {} at distance {:.4}",
            rank + 1,
            r.region,
            r.distance
        );
    }

    // ...and a thread-parallel batch of related queries.
    let batch: Vec<AsrsQuery> = [8.0, 15.0, 25.0]
        .iter()
        .map(|side| {
            let region = Rect::new(40.0, 40.0, 40.0 + side, 40.0 + side);
            engine.query_from_example(&region).expect("non-degenerate")
        })
        .collect();
    let answers = engine.search_batch(&batch).expect("all queries are valid");
    println!("batch: {} queries answered", answers.len());
    for (q, a) in batch.iter().zip(&answers) {
        println!("  {} → {} at distance {:.4}", q.size, a.region, a.distance);
    }
}
