//! Composite aggregator F1 from the paper's evaluation: find a region whose
//! geo-tagged posts are concentrated on weekends — driven through the
//! engine's request/plan/execute API.
//!
//! Run with `cargo run --example weekend_hotspots --release`.

use asrs_suite::prelude::*;

fn main() {
    // Tweet-like clustered workload with a day-of-week attribute.
    let generator = TweetGenerator::compact(16);
    let dataset = generator.generate(50_000, 2024);
    println!("generated {} geo-tagged posts", dataset.len());

    // F1 = ((f_D, day of the week, γ_all)).
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .expect("day_of_week attribute exists");

    // Query representation (0, 0, 0, 0, 0, T6, T7): only weekend posts, as
    // many as a region can plausibly hold; weekday dimensions weighted 1/5,
    // weekend dimensions 1/2 — exactly the setup of Section 7.1.
    let t = 400.0;
    let query = AsrsQuery::new(
        RegionSize::new(30.0, 30.0),
        FeatureVector::new(vec![0.0, 0.0, 0.0, 0.0, 0.0, t, t]),
        Weights::new(vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.5, 0.5]),
    );

    // The engine owns the 128 × 128 grid index; the planner decides per
    // request whether the index pays off.
    let engine = AsrsEngine::builder(dataset, aggregator)
        .build_index(128, 128)
        .build()
        .expect("non-empty dataset");
    let index = engine.index().expect("index was built");
    println!(
        "grid index: 128x128 cells, {:.1} KiB",
        index.memory_bytes() as f64 / 1024.0
    );

    let request = QueryRequest::similar(query.clone());
    println!("{}", engine.plan(&request).expect("plannable").explain());
    let response = engine.submit(&request).expect("query matches aggregator");
    let result = response.best().expect("similar yields a best region");

    println!("\nmost weekend-centric region: {}", result.region);
    println!(
        "distance to the ideal weekend profile: {:.2}",
        result.distance
    );
    println!("posts per day of the week inside it:");
    for (day, count) in WEEKDAY_LABELS.iter().zip(result.representation.iter()) {
        println!("  {day:<10} {count:6.0}");
    }
    println!(
        "[{}] searched {}/{} index cells in {:?}",
        response.backend,
        response.stats.index_cells_searched,
        response.stats.index_cells_total,
        response.stats.elapsed
    );

    // The approximate variant trades a bounded loss for speed (Section 6).
    for delta in [0.1, 0.4] {
        let approx = engine
            .submit(&QueryRequest::approximate(query.clone(), delta))
            .expect("valid delta");
        let best = approx.best().expect("approximate yields a best region");
        println!(
            "(1+{delta:.1})-approximation: distance {:.2}, searched {} cells, {:?}",
            best.distance, approx.stats.index_cells_searched, approx.stats.elapsed
        );
    }
}
