//! Serving smoke: boot the HTTP server, drive one of every endpoint over a
//! real socket, and shut down cleanly.
//!
//! Run with `cargo run --example serve --release`.  Pass
//! `--persist-dir <path>` to boot the engine through the persistence
//! subsystem: a snapshot + write-ahead log live in that directory, and the
//! server exposes `POST /snapshot` plus persistence counters in `/metrics`.
//!
//! This is the example CI uses as its server smoke step: it exercises the
//! whole serving path — bind, worker pool, JSON round trip, query-result
//! cache, metrics, planner explain, error mapping, shutdown — and exits
//! non-zero if any step misbehaves.

use asrs_suite::prelude::*;

/// The engine, either plain or booted through the persistence subsystem.
enum Boot {
    Plain(AsrsEngine),
    Durable(PersistentEngine),
}

impl Boot {
    fn engine(&self) -> &AsrsEngine {
        match self {
            Boot::Plain(engine) => engine,
            Boot::Durable(persistent) => persistent.engine(),
        }
    }
}

fn main() {
    let mut cli = std::env::args().skip(1);
    let mut persist_dir: Option<String> = None;
    while let Some(arg) = cli.next() {
        match arg.as_str() {
            "--persist-dir" => persist_dir = Some(cli.next().expect("--persist-dir needs a path")),
            other => panic!("unknown flag {other:?} (supported: --persist-dir <path>)"),
        }
    }

    // An engine with a grid index and a query-result cache, shared with the
    // server through a cheap `EngineHandle`.
    let dataset = UniformGenerator::default().generate(5_000, 42);
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .distribution("category", Selection::All)
        .build()
        .expect("schema has a 'category' attribute");
    let builder = AsrsEngine::builder(dataset, aggregator)
        .build_index(64, 64)
        .cache_capacity(256);
    let boot = match &persist_dir {
        Some(dir) => {
            let persistent = builder
                .persist_dir(dir)
                .build()
                .expect("persistent engine boots");
            let report = persistent.boot();
            println!(
                "persistence: {dir} (cold_start={}, replayed {} WAL frames)",
                report.cold_start, report.replayed_entries
            );
            Boot::Durable(persistent)
        }
        None => Boot::Plain(builder.build().expect("valid configuration")),
    };
    let engine = boot.engine();

    let mut server = AsrsServer::bind(engine.handle(), "127.0.0.1:0", ServerConfig::default())
        .expect("server binds an ephemeral port");
    if let Boot::Durable(persistent) = &boot {
        server = server.with_persistence(persistent.persist().clone());
    }
    let server = server.start().expect("server starts");
    println!("serving on http://{}", server.addr());

    let mut client = HttpClient::connect(server.addr()).expect("client connects");

    // One query round trip: serialize a request, POST it, decode the
    // response.
    let query = engine
        .query_from_example(&Rect::new(10.0, 10.0, 30.0, 25.0))
        .expect("non-degenerate example");
    let request = QueryRequest::similar(query).with_budget_ms(30_000);
    let body = serde::json::to_string(&request);
    let (status, response) = client
        .request("POST", "/query", &body)
        .expect("query round-trips");
    assert_eq!(status, 200, "{response}");
    let decoded: QueryResponse = serde::json::from_str(&response).expect("valid response JSON");
    let best = decoded.best().expect("similar yields a best region");
    println!(
        "[{}] best region {} at distance {:.4}",
        decoded.backend, best.region, best.distance
    );

    // The same request again: served from the cache, byte-identical.
    let (status, cached) = client
        .request("POST", "/query", &body)
        .expect("cached round trip");
    assert_eq!(status, 200);
    assert_eq!(cached, response, "cache hit must be byte-identical");
    println!("cache hit is byte-identical to the cold response ✓");

    // The planner's reasoning, without executing.
    let (status, explain) = client
        .request("GET", "/explain", &body)
        .expect("explain round-trips");
    assert_eq!(status, 200, "{explain}");
    println!("explain: {explain}");

    // Metrics: two queries served, one cache hit.
    let (status, metrics) = client.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    println!("metrics: {metrics}");
    assert!(metrics.contains("\"queries_ok\":2"), "{metrics}");
    assert!(metrics.contains("\"hits\":1"), "{metrics}");

    // Error mapping: a spent deadline answers 408, garbage answers 400.
    let expired = serde::json::to_string(&request.with_budget_ms(0));
    let (status, _) = client
        .request("POST", "/query", &expired)
        .expect("expired round trip");
    assert_eq!(status, 408);
    let (status, _) = client
        .request("POST", "/query", "{broken")
        .expect("garbage round trip");
    assert_eq!(status, 400);
    println!("error statuses map correctly (408 deadline, 400 malformed) ✓");

    // With persistence configured, a snapshot can be forced over HTTP.
    if matches!(boot, Boot::Durable(_)) {
        let (status, body) = client
            .request("POST", "/snapshot", "")
            .expect("snapshot round-trips");
        assert_eq!(status, 200, "{body}");
        println!("POST /snapshot ✓");
    }

    drop(client);
    server.shutdown();
    println!("clean shutdown ✓");
}
