//! MaxRS via DS-Search vs the Optimal Enclosure sweep line (Section 7.5),
//! driven through the engine's declarative `submit` API.
//!
//! Run with `cargo run --example maxrs_demo --release`.

use asrs_suite::prelude::*;
use std::time::Instant;

fn main() {
    let dataset = TweetGenerator::compact(12).generate(30_000, 11);
    println!("dataset: {} objects", dataset.len());
    let size = RegionSize::new(20.0, 20.0);

    // MaxRS is a counting problem, so the engine only needs a count
    // aggregator; the planner routes MaxRS to the DS-Search adaptation.
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .count(Selection::All)
        .build()
        .expect("count works on every schema");
    let engine = AsrsEngine::builder(dataset.clone(), aggregator)
        .build()
        .expect("valid configuration");

    let request = QueryRequest::max_rs(size);
    println!("{}", engine.plan(&request).expect("plannable").explain());

    let started = Instant::now();
    let response = engine.submit(&request).expect("valid request");
    let ds_time = started.elapsed();
    let ds_result = response.max_rs().expect("max-rs outcome").clone();

    // The O(n log n) Optimal Enclosure baseline.
    let started = Instant::now();
    let oe_result = OptimalEnclosure::new(&dataset, size).search().unwrap();
    let oe_time = started.elapsed();

    println!(
        "\nDS-Search (MaxRS): {} objects in {}",
        ds_result.count, ds_result.region
    );
    println!("                   {:?}", ds_time);
    println!(
        "Optimal Enclosure: {} objects in {}",
        oe_result.count, oe_result.region
    );
    println!("                   {:?}", oe_time);

    assert_eq!(
        ds_result.count, oe_result.count,
        "both algorithms are exact"
    );
    println!("\nboth algorithms agree on the maximum count ✓");

    // The class-constrained variant: densest region of weekend posts only,
    // with a per-request deadline as a serving-style safety net.
    let weekend = engine
        .submit(
            &QueryRequest::max_rs_selective(size, Selection::cat_in(0, vec![5, 6]))
                .with_budget_ms(30_000),
        )
        .expect("within budget");
    let weekend_only = weekend.max_rs().expect("max-rs outcome");
    println!(
        "densest weekend-post region: {} posts in {} ({} fallback probes)",
        weekend_only.count, weekend_only.region, weekend.stats.fallback_points
    );
}
