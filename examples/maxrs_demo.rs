//! MaxRS via DS-Search vs the Optimal Enclosure sweep line (Section 7.5).
//!
//! Run with `cargo run --example maxrs_demo --release`.

use asrs_suite::prelude::*;
use std::time::Instant;

fn main() {
    let dataset = TweetGenerator::compact(12).generate(30_000, 11);
    println!("dataset: {} objects", dataset.len());
    let size = RegionSize::new(20.0, 20.0);

    // DS-Search adapted to MaxRS (upper bounds instead of lower bounds).
    let started = Instant::now();
    let ds_result = MaxRsSearch::new(&dataset, size).search().unwrap();
    let ds_time = started.elapsed();

    // The O(n log n) Optimal Enclosure baseline.
    let started = Instant::now();
    let oe_result = OptimalEnclosure::new(&dataset, size).search().unwrap();
    let oe_time = started.elapsed();

    println!(
        "\nDS-Search (MaxRS): {} objects in {}",
        ds_result.count, ds_result.region
    );
    println!("                   {:?}", ds_time);
    println!(
        "Optimal Enclosure: {} objects in {}",
        oe_result.count, oe_result.region
    );
    println!("                   {:?}", oe_time);

    assert_eq!(
        ds_result.count, oe_result.count,
        "both algorithms are exact"
    );
    println!("\nboth algorithms agree on the maximum count ✓");

    // The class-constrained variant: densest region of weekend posts only.
    let weekend_only = MaxRsSearch::new(&dataset, size)
        .with_selection(Selection::cat_in(0, vec![5, 6]))
        .search()
        .unwrap();
    println!(
        "densest weekend-post region: {} posts in {}",
        weekend_only.count, weekend_only.region
    );
}
