//! The case study of Section 7.6, on a synthetic city.
//!
//! Run with `cargo run --example city_similarity --release`.
//!
//! The paper runs DS-Search over the Foursquare POIs of Singapore with a
//! category-distribution aggregator and shows that the "Orchard" shopping
//! district retrieves "Marina Bay" (another shopping/entertainment
//! epicentre) while "Bugis" only matches in the Food and Transport
//! dimensions.  This example reproduces the experiment on the synthetic
//! city generator, prints the per-category profiles (the textual analogue
//! of the paper's stacked-bar Fig. 14b) and runs the actual search.

use asrs_suite::prelude::*;

fn profile(dataset: &Dataset, agg: &CompositeAggregator, region: &Rect) -> FeatureVector {
    agg.aggregate_region(dataset, region)
}

fn print_profile(name: &str, rep: &FeatureVector) {
    let total: f64 = rep.iter().sum::<f64>().max(1.0);
    print!("{name:<12}");
    for value in rep.iter() {
        print!(" {:5.1}%", 100.0 * value / total);
    }
    println!();
}

fn main() {
    let city = CityGenerator::default().generate(2019);
    let dataset = &city.dataset;
    println!(
        "synthetic city: {} POIs, {} named districts",
        dataset.len(),
        city.districts.len()
    );

    let aggregator = CompositeAggregator::builder(dataset.schema())
        .distribution("category", Selection::All)
        .build()
        .expect("category attribute exists");

    let orchard = city.district("Orchard").expect("district exists").rect;
    let marina = city.district("Marina Bay").expect("district exists").rect;
    let bugis = city.district("Bugis").expect("district exists").rect;

    // Category profiles (Fig. 14b analogue).
    print!("{:<12}", "district");
    for cat in CITY_CATEGORIES {
        print!(" {:>6}", &cat[..cat.len().min(6)]);
    }
    println!();
    let f_orchard = profile(dataset, &aggregator, &orchard);
    let f_marina = profile(dataset, &aggregator, &marina);
    let f_bugis = profile(dataset, &aggregator, &bugis);
    print_profile("Orchard", &f_orchard);
    print_profile("Marina Bay", &f_marina);
    print_profile("Bugis", &f_bugis);

    let w = Weights::uniform(aggregator.feature_dim());
    let d_marina = weighted_distance(&f_orchard, &f_marina, &w, DistanceMetric::L1);
    let d_bugis = weighted_distance(&f_orchard, &f_bugis, &w, DistanceMetric::L1);
    println!("\ndistance(Orchard, Marina Bay) = {d_marina:.1}");
    println!("distance(Orchard, Bugis)      = {d_bugis:.1}");
    assert!(d_marina < d_bugis, "Marina Bay should be the better match");

    // Run the actual similar-region search with Orchard as the example.
    // A top-k request surfaces the runner-up regions too: the query region
    // itself is always the perfect rank-1 match, so the interesting
    // answers are the later ranks.
    let engine = AsrsEngine::builder(dataset.clone(), aggregator)
        .build()
        .expect("valid configuration");
    let query = engine
        .query_from_example(&orchard)
        .expect("district rectangles are non-degenerate");
    let request = QueryRequest::top_k(query, 3);
    println!("\n{}", engine.plan(&request).expect("plannable").explain());
    let response = engine.submit(&request).expect("valid request");
    println!(
        "[{}] search took {:?}",
        response.backend, response.stats.elapsed
    );
    for (rank, result) in response.results().iter().enumerate() {
        let overlaps_orchard = result.region.intersects(&orchard);
        let overlaps_marina = result.region.intersects(&marina);
        println!(
            "rank {}: {} at distance {:.1} (overlaps Orchard: {overlaps_orchard}, Marina Bay: {overlaps_marina})",
            rank + 1,
            result.region,
            result.distance
        );
    }
    println!("(the query region itself is always a perfect match; Marina Bay is the best *other* district)");
}
