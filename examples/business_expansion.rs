//! Composite aggregator F2 from the paper's evaluation: a business owner
//! looks for a region where POIs are heavily visited *and* highly rated —
//! e.g. to open a new branch in surroundings similar to a thriving one.
//!
//! Run with `cargo run --example business_expansion --release`.

use asrs_suite::prelude::*;

fn main() {
    // POISyn-like workload: numeric `visits` (1..500) and `rating` (0..10).
    let dataset = PoiSynGenerator::compact(20).generate(40_000, 7);
    println!("generated {} POIs", dataset.len());

    // F2 = ((f_S, number of visits, γ_all), (f_A, rating, γ_all)).
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .sum("visits", Selection::All)
        .average("rating", Selection::All)
        .build()
        .expect("schema has visits and rating");

    // Target: the maximum plausible number of visits and a perfect average
    // rating, weighted as in Section 7.1 (1/v_max and 1/10).
    let vmax = 150_000.0;
    let query = AsrsQuery::new(
        RegionSize::new(25.0, 25.0),
        FeatureVector::new(vec![vmax, 10.0]),
        Weights::new(vec![1.0 / vmax, 1.0 / 10.0]),
    );

    // The engine owns the index; the planner picks GI-DS for this small
    // query and `submit` reports the statistics alongside the result.
    let engine = AsrsEngine::builder(dataset, aggregator)
        .build_index(128, 128)
        .build()
        .expect("non-empty dataset");
    let request = QueryRequest::similar(query);
    println!("{}", engine.plan(&request).expect("plannable").explain());
    let response = engine.submit(&request).unwrap();
    let result = response.best().expect("similar yields a best region");

    println!("\nbest expansion area: {}", result.region);
    println!("total visits inside:  {:>10.0}", result.representation[0]);
    println!("average rating:       {:>10.2}", result.representation[1]);
    println!(
        "[{}] distance {:.4}, searched {}/{} index cells, {:?}",
        response.backend,
        result.distance,
        response.stats.index_cells_searched,
        response.stats.index_cells_total,
        response.stats.elapsed
    );

    // Sanity check against a direct recomputation over the returned region.
    let recomputed = engine
        .aggregator()
        .aggregate_region(&engine.dataset(), &result.region);
    assert!((recomputed[0] - result.representation[0]).abs() < 1e-6);
    assert!((recomputed[1] - result.representation[1]).abs() < 1e-6);
    println!("representation verified against a direct recount ✓");
}
