//! Generational mutable engine demo: live appends, TTL expiry, removals,
//! incremental index maintenance, and the rebuild-equivalence check.
//!
//! ```text
//! cargo run --release --example mutable
//! ```
//!
//! Boots a sharded, cached engine over a synthetic city, streams
//! mutations at it while a reader thread keeps querying, then proves the
//! mutated engine answers byte-identically to a fresh engine rebuilt from
//! the final dataset.  Exits non-zero if any invariant fails.

use asrs_suite::prelude::*;
use std::sync::Arc;

fn main() {
    let ds = UniformGenerator::default().generate(2_000, 42);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    let engine = AsrsEngine::builder(ds.clone(), agg.clone())
        .build_index(24, 24)
        .shards(4)
        .cache_capacity(256)
        .build()
        .unwrap();
    let bbox = ds.bounding_box().unwrap();
    let template = ds.object(0).clone();

    println!(
        "engine: {} objects, {} shards, generation {}",
        engine.dataset().len(),
        engine.shard_count(),
        engine.generation()
    );

    // A reader hammers the engine while the writer mutates: queries must
    // never fail, whatever generation they land on.
    let handle = engine.handle();
    let query = handle
        .query_from_example(&Rect::new(
            bbox.min_x + bbox.width() * 0.2,
            bbox.min_y + bbox.height() * 0.2,
            bbox.min_x + bbox.width() * 0.35,
            bbox.min_y + bbox.height() * 0.35,
        ))
        .unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader = {
        let handle = handle.clone();
        let query = query.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut served = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                handle
                    .submit(&QueryRequest::similar(query.clone()))
                    .expect("queries never fail across generations");
                served += 1;
            }
            served
        })
    };

    // The writer: interior appends, a TTL'd batch, removals.
    for i in 0..300u64 {
        let f = (i as f64 * 0.618_033_988_75).fract();
        let g = (i as f64 * 0.414_213_562_37).fract();
        let object = SpatialObject::new(
            1_000_000 + i,
            Point::new(
                bbox.min_x + bbox.width() * f,
                bbox.min_y + bbox.height() * g,
            ),
            template.values.clone(),
        );
        if i % 10 == 3 {
            handle
                .append_with_ttl(object, std::time::Duration::from_millis(1))
                .unwrap();
        } else {
            handle.append(object).unwrap();
        }
        if i % 7 == 0 {
            handle.remove(i * 3 % 2_000).ok();
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(5));
    let expired = handle.sweep_expired().unwrap();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let served = reader.join().unwrap();

    let stats = engine.mutation_stats();
    println!(
        "writer done: generation {}, {} objects, {} appends / {} removes / {} expiries",
        stats.generation, stats.object_count, stats.appends, stats.removes, stats.expiries
    );
    println!(
        "index maintenance: {} incremental updates, {} rebuilds, {} re-partitions",
        stats.incremental_index_updates, stats.index_rebuilds, stats.repartitions
    );
    println!("reader served {served} queries concurrently with the writer");
    assert!(expired.iter().all(|r| r.kind == "expire"));
    assert!(stats.expiries > 0, "the TTL batch must have expired");
    assert!(
        stats.incremental_index_updates > 0,
        "interior appends must maintain the shard indexes incrementally"
    );

    // Rebuild equivalence: a fresh engine from the final dataset answers
    // byte-identically (statistics stripped — they describe the run).
    let rebuilt = AsrsEngine::builder((*engine.dataset()).clone(), agg)
        .build_index(24, 24)
        .shards(4)
        .build()
        .unwrap();
    for (label, request) in [
        ("similar", QueryRequest::similar(query.clone())),
        ("top-k", QueryRequest::top_k(query.clone(), 3)),
        (
            "max-rs",
            QueryRequest::max_rs(RegionSize::new(bbox.width() / 40.0, bbox.height() / 40.0)),
        ),
    ] {
        let mutated = serde::json::to_string(&engine.submit(&request).unwrap().stats_stripped());
        let fresh = serde::json::to_string(&rebuilt.submit(&request).unwrap().stats_stripped());
        assert_eq!(mutated, fresh, "{label}: rebuild equivalence violated");
        println!("parity OK: {label}");
    }
    println!("OK");
}
