//! Persistence walkthrough: crash-safe durability and instant reboot.
//!
//! Run with `cargo run --example persist --release`.
//!
//! The script: build an engine persisted into a directory, mutate it (every
//! mutation is fsync'd to the write-ahead log *before* its generation
//! publishes), "crash" by dropping the engine, reboot from snapshot + log,
//! verify the reopened engine answers byte-identically, then serve it over
//! HTTP with the background sweeper and `POST /snapshot` live.  CI runs
//! this as its persistence smoke step; it exits non-zero if any step
//! misbehaves.

use asrs_suite::prelude::*;

fn canonical(response: &QueryResponse) -> String {
    serde::json::to_string(&response.stats_stripped())
}

fn main() {
    let dir = std::env::temp_dir().join(format!("asrs-persist-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let dataset = UniformGenerator::default().generate(3_000, 42);
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .distribution("category", Selection::All)
        .build()
        .expect("schema has a 'category' attribute");
    let builder = || {
        AsrsEngine::builder(dataset.clone(), aggregator.clone())
            .build_index(32, 32)
            .cache_capacity(128)
            .shards(2)
    };

    // First boot: cold start — the seed dataset is built, indexed, and
    // snapshotted; the write-ahead log opens empty.
    let persistent = builder()
        .persist_dir(&dir)
        .build()
        .expect("persistent engine boots");
    let boot = persistent.boot();
    assert!(boot.cold_start);
    println!(
        "cold boot: generation {}, snapshot {} bytes",
        boot.boot_generation,
        persistent.persist().stats().snapshot_bytes.unwrap_or(0)
    );

    // Mutations: each one is durable before it is acknowledged.
    let template = persistent.engine().dataset().object(0).values.clone();
    for i in 0..5u64 {
        persistent
            .engine()
            .append(SpatialObject::new(
                1_000_000 + i,
                Point::new(20.0 + i as f64 * 9.0, 35.0 + i as f64 * 7.0),
                template.clone(),
            ))
            .expect("append");
    }
    persistent.engine().remove(1_000_002).expect("remove");
    let stats = persistent.persist().stats();
    println!(
        "after 6 mutations: WAL holds {} frames ({} bytes)",
        stats.wal_entries, stats.wal_bytes
    );
    assert_eq!(stats.wal_entries, 6);

    // Remember one answer, then "crash" (drop without snapshotting — the
    // log alone must carry the mutations across).
    let request = QueryRequest::similar(
        persistent
            .engine()
            .query_from_example(&Rect::new(10.0, 10.0, 40.0, 35.0))
            .expect("example query"),
    );
    let before = canonical(&persistent.engine().submit(&request).expect("query"));
    let generation = persistent.engine().generation();
    drop(persistent);
    println!("crashed at generation {generation}");

    // Reboot: snapshot restored without re-indexing, log tail replayed.
    let reopened = builder()
        .persist_dir(&dir)
        .build()
        .expect("engine reboots from snapshot + WAL");
    let boot = reopened.boot();
    assert!(!boot.cold_start);
    assert_eq!(boot.replayed_entries, 6);
    assert_eq!(reopened.engine().generation(), generation);
    let after = canonical(&reopened.engine().submit(&request).expect("query"));
    assert_eq!(before, after, "recovery must be byte-identical");
    println!(
        "rebooted: snapshot generation {:?} + {} replayed frames, responses byte-identical ✓",
        boot.snapshot_generation, boot.replayed_entries
    );

    // Serve it: the background maintenance thread sweeps TTLs and
    // snapshots when the log outgrows its threshold; `POST /snapshot`
    // forces one now.
    let persist_handle = reopened.persist().clone();
    let server = AsrsServer::bind(
        reopened.handle(),
        "127.0.0.1:0",
        ServerConfig {
            sweep_interval: Some(std::time::Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    )
    .expect("server binds")
    .with_persistence(persist_handle)
    .start()
    .expect("server starts");
    let mut client = HttpClient::connect(server.addr()).expect("client connects");

    let (status, body) = client
        .request("POST", "/snapshot", "")
        .expect("snapshot round-trips");
    assert_eq!(status, 200, "{body}");
    let report: SnapshotReport = serde::json::from_str(&body).expect("valid report JSON");
    assert_eq!(report.generation, generation);
    assert_eq!(report.wal_entries, 0, "a snapshot compacts the log");
    println!(
        "POST /snapshot: generation {} in {} bytes, WAL compacted to {} frames",
        report.generation, report.bytes, report.wal_entries
    );

    // A TTL'd object expires without any client calling /sweep: the
    // background sweeper picks it up on its next tick.
    let object = SpatialObject::new(
        2_000_000,
        Point::new(55.0, 55.0),
        reopened.engine().dataset().object(0).values.clone(),
    );
    let append = format!(
        "{{\"object\":{},\"ttl_ms\":1}}",
        serde::json::to_string(&object)
    );
    let (status, _) = client.request("POST", "/append", &append).expect("append");
    assert_eq!(status, 200);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let metrics = server.metrics();
        let swept = metrics.sweeper.as_ref().map_or(0, |s| s.swept_objects);
        if swept >= 1 {
            println!("background sweeper expired the TTL'd object ✓");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sweeper did not expire the object in time: {metrics:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let metrics = server.metrics();
    let persistence = metrics.persistence.expect("persistence counters served");
    println!(
        "metrics: wal_entries={}, snapshots_written={}, replayed_on_boot={}",
        persistence.wal_entries, persistence.snapshots_written, persistence.replayed_on_boot
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("OK");
}
