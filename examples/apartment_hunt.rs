//! The apartment-hunting scenario of the paper's Example 1.
//!
//! Run with `cargo run --example apartment_hunt --release`.
//!
//! A user who just moved to a new city wants a neighbourhood that (1) has a
//! restaurant, a supermarket and a bus stop, but not too many of them, (2)
//! has apartments whose average sale price fits the budget, and (3) is
//! small enough that everything is within walking distance.  The scenario
//! is expressed as a composite aggregator combining a category
//! distribution with an average price over apartments only, plus a
//! hand-crafted ("virtual") query representation.

use asrs_suite::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const APARTMENT: u32 = 0;
const SUPERMARKET: u32 = 1;
const RESTAURANT: u32 = 2;
const BUS_STOP: u32 = 3;

/// Builds a synthetic city of POIs with categories and apartment prices.
fn build_city(seed: u64) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new(
            "category",
            AttributeKind::categorical_labeled(vec![
                "Apartment",
                "Supermarket",
                "Restaurant",
                "Bus stop",
            ]),
        ),
        // Price in units of 100k; only meaningful for apartments.
        AttributeDef::new("price", AttributeKind::numeric(0.0, 20.0)),
    ]);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = DatasetBuilder::new(schema);
    // Several neighbourhoods with different price levels and amenity mixes.
    let neighbourhoods: [(f64, f64, f64, f64); 4] = [
        (5.0, 5.0, 14.0, 0.6),   // expensive, amenity-rich
        (25.0, 8.0, 6.0, 0.5),   // affordable, amenity-rich
        (12.0, 25.0, 8.0, 0.15), // mid-priced, few amenities
        (30.0, 28.0, 4.5, 0.4),  // cheap, some amenities
    ];
    for &(cx, cy, price_level, amenity_rate) in &neighbourhoods {
        for _ in 0..220 {
            let x = cx + rng.gen_range(-4.0..4.0);
            let y = cy + rng.gen_range(-4.0..4.0);
            let roll: f64 = rng.gen();
            let (category, price) = if roll < amenity_rate {
                let cat = match rng.gen_range(0..3) {
                    0 => SUPERMARKET,
                    1 => RESTAURANT,
                    _ => BUS_STOP,
                };
                (cat, 0.0)
            } else {
                (
                    APARTMENT,
                    (price_level + rng.gen_range(-2.0..2.0)).clamp(0.5, 20.0),
                )
            };
            builder.push(x, y, vec![AttrValue::Cat(category), AttrValue::Num(price)]);
        }
    }
    builder
        .build()
        .expect("generated values respect the schema")
}

fn main() {
    let dataset = build_city(7);
    println!("synthetic city with {} POIs", dataset.len());

    // Aspects of interest: the category mix of the neighbourhood and the
    // average apartment price.
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .distribution("category", Selection::All)
        .average("price", Selection::cat_equals(0, APARTMENT))
        .build()
        .expect("aggregator matches the schema");

    // The ideal neighbourhood (a "virtual" query region): a handful of
    // apartments, one or two of each amenity, and an average price around
    // 600k.  Dimensions: [#apartment, #supermarket, #restaurant, #bus stop,
    // avg price].
    let target = FeatureVector::new(vec![12.0, 2.0, 2.0, 1.0, 6.0]);
    // The price dimension is what the user cares about most.
    let weights = Weights::new(vec![0.3, 1.0, 1.0, 1.0, 2.0]);
    let query = AsrsQuery::new(RegionSize::new(6.0, 6.0), target, weights);

    // Submit through the engine: no index here, so the planner falls back
    // to DS-Search — `plan()` explains exactly that.
    let engine = AsrsEngine::builder(dataset, aggregator)
        .build()
        .expect("valid configuration");
    let request = QueryRequest::similar(query.clone());
    println!("{}", engine.plan(&request).expect("plannable").explain());
    let response = engine.submit(&request).unwrap();
    let result = response.best().expect("similar yields a best region");

    let labels = engine.aggregator().dimension_labels();
    println!("\nbest neighbourhood: {}", result.region);
    println!("distance to the ideal: {:.3}", result.distance);
    println!("its profile:");
    for (label, value) in labels.iter().zip(result.representation.iter()) {
        println!("  {label:<22} {value:8.2}");
    }

    // Compare against the sweep-line baseline, plugged in as an external
    // backend (external backends bypass the planner by design).
    let (base_ds, base_agg) = (engine.dataset(), engine.aggregator());
    let baseline = SweepBase::new(&base_ds, &base_agg);
    let base_result = engine.search_with(&baseline, &query).unwrap();
    println!(
        "\nsweep-line baseline distance: {:.3} (DS-Search took {:?})",
        base_result.distance, response.stats.elapsed
    );
    assert!((base_result.distance - result.distance).abs() < 1e-6);
}
