//! Sharded scatter-gather serving in five steps.
//!
//! Builds the same engine twice — single-shard baseline and 4-way sharded
//! — submits an identical mixed workload to both, and shows the parity
//! guarantee: stripped responses are byte-identical, while the statistics
//! report the actual scatter fan-out.
//!
//! ```text
//! cargo run --release --example sharded
//! ```

use asrs_suite::prelude::*;

fn main() {
    // 1. A clustered dataset plus the paper's F1-style aggregator.
    let dataset = TweetGenerator::compact(12).generate(3_000, 7);
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .expect("schema has day_of_week");

    // 2. The parity baseline: the scatter-gather executor with ONE shard.
    let baseline = AsrsEngine::builder(dataset.clone(), aggregator.clone())
        .shards(1)
        .build_index(24, 24)
        .build()
        .expect("baseline builds");

    // 3. The sharded engine: 4 spatial shards, one core + grid index each.
    let sharded = AsrsEngine::builder(dataset.clone(), aggregator)
        .shards(4)
        .build_index(24, 24)
        .build()
        .expect("sharded engine builds");
    println!("shards: {}", sharded.shard_count());
    for (i, region) in sharded.shard_regions().unwrap().iter().enumerate() {
        println!("  shard {i}: region {region}");
    }

    // 4. An identical mixed workload against both engines.
    let bbox = dataset.bounding_box().unwrap();
    let example = Rect::new(
        bbox.min_x + bbox.width() * 0.40,
        bbox.min_y + bbox.height() * 0.40,
        bbox.min_x + bbox.width() * 0.48,
        bbox.min_y + bbox.height() * 0.47,
    );
    let query = baseline
        .query_from_example(&example)
        .expect("example query");
    let requests = vec![
        QueryRequest::similar(query.clone()),
        QueryRequest::top_k(query.clone(), 3),
        QueryRequest::max_rs(RegionSize::new(bbox.width() / 40.0, bbox.height() / 40.0)),
    ];
    for request in &requests {
        let plan = sharded.plan(request).expect("plan");
        println!("\n{}", plan.explain());
        let a = baseline.submit(request).expect("baseline answers");
        let b = sharded.submit(request).expect("sharded answers");
        // The parity guarantee: outcomes are byte-identical across shard
        // counts; only the execution statistics describe the decomposition.
        assert_eq!(
            serde::json::to_string(&a.stats_stripped()),
            serde::json::to_string(&b.stats_stripped()),
            "sharded outcome must be byte-identical to the baseline"
        );
        println!(
            "parity OK — backend {}, {} of {} shards touched",
            b.backend,
            b.stats.shards_touched,
            b.stats.shards_touched + b.stats.shards_pruned
        );
    }

    // 5. Serving is transparent: handles and the HTTP layer work unchanged,
    //    and /metrics exposes per-shard request counts.
    let counts = sharded.shard_request_counts().unwrap();
    println!("\nper-shard scattered executions: {counts:?}");
    println!("sharded demo OK");
}
