//! Umbrella crate wiring the repository-level `examples/` and `tests/`
//! directories into the cargo workspace.
//!
//! The crate re-exports the public API of every workspace crate through
//! [`prelude`], so examples and integration tests can start with a single
//! `use asrs_suite::prelude::*;`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use asrs_aggregator::{
        distance_lower_bound, weighted_distance, AggregatorKind, AggregatorSpec,
        CompositeAggregator, DistanceMetric, FeatureVector, Selection, Weights,
    };
    pub use asrs_baseline::{naive, segment_tree::MaxAddSegmentTree, OptimalEnclosure, SweepBase};
    pub use asrs_core::{
        AsrsEngine, AsrsError, AsrsQuery, Backend, Budget, CacheStats, ConfigError, CostEstimate,
        DsSearch, EngineBuilder, EngineHandle, EngineStatistics, ExecutionPlan, GiDsSearch,
        GridIndex, IndexMaintenance, IndexStatistics, MaxRsResult, MaxRsSearch, MutationPolicy,
        MutationReceipt, MutationStats, NaiveSearch, PlanReason, Planner, QueryCache, QueryError,
        QueryOutcome, QueryRequest, QueryResponse, RequestKey, SearchAlgorithm, SearchConfig,
        SearchResult, SearchStats, ShardFanOut, Strategy,
    };
    pub use asrs_data::gen::{
        CityGenerator, CityMap, ClusteredGenerator, District, PoiSynGenerator, TweetGenerator,
        UniformGenerator, CITY_CATEGORIES, WEEKDAY_LABELS,
    };
    pub use asrs_data::{
        AttrValue, AttributeDef, AttributeKind, Dataset, DatasetBuilder, LoggedMutation, Mutation,
        MutationLog, Schema, SpatialObject, SpatialPartition,
    };
    pub use asrs_geo::{Accuracy, GridSpec, Point, Rect, RegionSize};
    pub use asrs_persist::{
        BootReport, PersistError, PersistExt, PersistHandle, PersistStats, PersistentBuilder,
        PersistentEngine, SnapshotFile, SnapshotReport, Wal, WalEntry, WalRecovery,
    };
    pub use asrs_server::{
        AsrsServer, CacheSnapshot, HttpClient, MetricsSnapshot, ServerConfig, ServerHandle,
        ShardsSnapshot, SweeperSnapshot,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        let ds = UniformGenerator::default().generate(10, 1);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        assert_eq!(agg.feature_dim(), 4);
        let _ = RegionSize::new(1.0, 1.0);
    }
}
