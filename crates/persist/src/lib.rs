//! Durability for the ASRS engine: crash-safe persistence with instant
//! boot.
//!
//! Two cooperating mechanisms:
//!
//! * **Columnar snapshots** ([`snapshot`]) — a versioned, checksummed file
//!   capturing one engine generation: the dataset's columns plus the grid
//!   index base tables, per shard.  Loading one restores the engine
//!   *without re-indexing*, so boot cost is file-read cost; the restored
//!   engine answers every query byte-identically to the one that wrote
//!   the snapshot.
//! * **A write-ahead log** ([`wal`]) — length-prefixed, CRC-framed
//!   mutation records, fsync'd *before* the engine publishes the mutated
//!   generation.  A crash loses at most the unacknowledged tail, which is
//!   detected and truncated on the next open.
//!
//! [`store`] ties them together: [`PersistExt::persist_dir`] turns an
//! `EngineBuilder` into a [`PersistentBuilder`] whose `build` restores
//! snapshot + log, and whose [`PersistHandle`] keeps later mutations
//! durable and schedules log compaction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc;
pub mod error;
pub mod fsck;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use error::PersistError;
pub use fsck::{
    check_dir, check_snapshot_file, check_wal_file, FsckCategory, FsckFinding, FsckReport,
    Severity, SnapshotCheck, WalCheck,
};
pub use snapshot::{load_latest, read_snapshot, write_snapshot, SnapshotFile};
pub use store::{
    BootReport, PersistExt, PersistHandle, PersistStats, PersistentBuilder, PersistentEngine,
    SnapshotReport,
};
pub use wal::{Wal, WalEntry, WalRecovery, FSYNC_BUCKET_BOUNDS_US};
