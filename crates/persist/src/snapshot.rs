//! The columnar snapshot format: one versioned, checksummed file per
//! engine generation, loadable without re-indexing.
//!
//! # Format (version 1)
//!
//! ```text
//! [4]  magic  b"ASNP"
//! [4]  format version, little-endian u32 (currently 1)
//! [..] payload (below)
//! [4]  CRC-32 of the payload
//! ```
//!
//! The payload is column-oriented throughout (see
//! [`asrs_data::columnar`]): the generation number, the full dataset
//! (schema + id/x/y/attribute columns), the optional whole-dataset grid
//! index, and — for sharded engines — one section per shard.  Two
//! representation choices keep the file small without costing bit
//! fidelity:
//!
//! * **Index tables**: only the per-cell *base* table is stored; the
//!   suffix tables are a deterministic pure function of it and are
//!   recomputed on load ([`asrs_core::GridIndex::from_base_table`]), which
//!   halves the index bytes while staying bit-identical.
//! * **Shard datasets**: each shard stores the *positions* of its objects
//!   in the main dataset (in shard order), not the objects themselves —
//!   the objects already travel once in the main columns.
//!
//! Snapshot files are named `snapshot-<generation:016x>.snap`, written to
//! a temporary sibling, fsync'd and renamed into place, then the directory
//! itself is fsync'd — a crash mid-write leaves the previous snapshot
//! untouched.  [`load_latest`] picks the highest-generation file whose
//! checksum verifies, skipping damaged candidates.

use crate::crc::crc32;
use crate::error::PersistError;
use asrs_core::{AsrsError, EngineState, GridIndex, ShardState};
use asrs_data::columnar::{self, Reader};
use asrs_geo::{GridSpec, Rect};
use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic of the snapshot format.
pub(crate) const MAGIC: [u8; 4] = *b"ASNP";
/// Current format version.
pub(crate) const VERSION: u32 = 1;

/// A snapshot file on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotFile {
    /// Where the file lives.
    pub path: PathBuf,
    /// The engine generation it captures.
    pub generation: u64,
    /// Total file size in bytes.
    pub bytes: u64,
}

/// The file name of the snapshot for `generation`.
fn file_name(generation: u64) -> String {
    format!("snapshot-{generation:016x}.snap")
}

/// Parses a generation out of a snapshot file name, `None` for foreign
/// files.
pub(crate) fn parse_generation(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snapshot-")?.strip_suffix(".snap")?;
    u64::from_str_radix(hex, 16).ok()
}

fn put_rect(out: &mut Vec<u8>, rect: &Rect) {
    columnar::put_f64(out, rect.min_x);
    columnar::put_f64(out, rect.min_y);
    columnar::put_f64(out, rect.max_x);
    columnar::put_f64(out, rect.max_y);
}

fn read_rect(reader: &mut Reader<'_>) -> Result<Rect, asrs_data::columnar::ColumnarError> {
    Ok(Rect::new(
        reader.f64()?,
        reader.f64()?,
        reader.f64()?,
        reader.f64()?,
    ))
}

fn put_index(out: &mut Vec<u8>, index: Option<&GridIndex>) {
    let Some(index) = index else {
        columnar::put_u8(out, 0);
        return;
    };
    columnar::put_u8(out, 1);
    put_rect(out, index.spec().space());
    columnar::put_u64(out, index.spec().cols() as u64);
    columnar::put_u64(out, index.spec().rows() as u64);
    columnar::put_u64(out, index.stats_dim() as u64);
    columnar::put_u64(out, index.objects_indexed() as u64);
    let base = index.base_table();
    columnar::put_u64(out, base.len() as u64);
    for &v in base {
        columnar::put_f64(out, v);
    }
}

fn read_index(reader: &mut Reader<'_>, path: &Path) -> Result<Option<GridIndex>, PersistError> {
    let decode = |e: asrs_data::columnar::ColumnarError| PersistError::corrupt(path, e.to_string());
    if reader.u8().map_err(decode)? == 0 {
        return Ok(None);
    }
    let space = read_rect(reader).map_err(decode)?;
    let cols = reader.u64().map_err(decode)? as usize;
    let rows = reader.u64().map_err(decode)? as usize;
    let stats_dim = reader.u64().map_err(decode)? as usize;
    let objects_indexed = reader.u64().map_err(decode)? as usize;
    let len = reader.u64().map_err(decode)? as usize;
    let mut base = Vec::with_capacity(len);
    for _ in 0..len {
        base.push(reader.f64().map_err(decode)?);
    }
    let spec = GridSpec::new(space, cols, rows);
    GridIndex::from_base_table(spec, stats_dim, objects_indexed, base)
        .map(Some)
        .map_err(PersistError::Engine)
}

/// Serializes `state` into the version-1 snapshot payload.
fn encode_payload(state: &EngineState) -> Result<Vec<u8>, PersistError> {
    let mut out = Vec::new();
    columnar::put_u64(&mut out, state.generation);
    columnar::encode_dataset(&state.dataset, &mut out);
    put_index(&mut out, state.index.as_deref());
    match &state.shards {
        None => columnar::put_u8(&mut out, 0),
        Some(shards) => {
            columnar::put_u8(&mut out, 1);
            columnar::put_u64(&mut out, shards.len() as u64);
            // Shard objects are stored as positions into the main columns.
            let by_id: HashMap<u64, usize> = state
                .dataset
                .iter()
                .map(|(i, o)| (o.id, i))
                .collect();
            for shard in shards {
                put_rect(&mut out, &shard.region);
                columnar::put_u64(&mut out, shard.dataset.len() as u64);
                for o in shard.dataset.objects() {
                    let position = match by_id.get(&o.id) {
                        Some(&i) if *state.dataset.object(i) == *o => i,
                        // Defensive: an id collision or divergent copy
                        // would silently snapshot the wrong object.
                        _ => {
                            return Err(PersistError::Engine(AsrsError::Persistence {
                                message: format!(
                                    "shard object {} has no identical twin in the main dataset",
                                    o.id
                                ),
                            }))
                        }
                    };
                    columnar::put_u64(&mut out, position as u64);
                }
                put_index(&mut out, shard.index.as_deref());
            }
        }
    }
    Ok(out)
}

/// Deserializes a version-1 payload back into an [`EngineState`].
pub(crate) fn decode_payload(payload: &[u8], path: &Path) -> Result<EngineState, PersistError> {
    let decode = |e: asrs_data::columnar::ColumnarError| PersistError::corrupt(path, e.to_string());
    let mut reader = Reader::new(payload);
    let generation = reader.u64().map_err(decode)?;
    let dataset = Arc::new(columnar::decode_dataset(&mut reader).map_err(decode)?);
    let index = read_index(&mut reader, path)?.map(Arc::new);
    let shards = if reader.u8().map_err(decode)? == 0 {
        None
    } else {
        let count = reader.u64().map_err(decode)? as usize;
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            let region = read_rect(&mut reader).map_err(decode)?;
            let len = reader.u64().map_err(decode)? as usize;
            let mut shard_objects = Vec::with_capacity(len);
            for _ in 0..len {
                let position = reader.u64().map_err(decode)? as usize;
                if position >= dataset.len() {
                    return Err(PersistError::corrupt(
                        path,
                        format!("shard object position {position} out of range"),
                    ));
                }
                shard_objects.push(dataset.object(position).clone());
            }
            let shard_dataset = Arc::new(asrs_data::Dataset::new_unchecked(
                dataset.schema().clone(),
                shard_objects,
            ));
            let shard_index = read_index(&mut reader, path)?.map(Arc::new);
            shards.push(ShardState {
                region,
                dataset: shard_dataset,
                index: shard_index,
            });
        }
        Some(shards)
    };
    if reader.remaining() != 0 {
        return Err(PersistError::corrupt(
            path,
            format!("{} trailing payload bytes", reader.remaining()),
        ));
    }
    Ok(EngineState {
        generation,
        dataset,
        index,
        shards,
    })
}

/// Writes a snapshot of `state` into `dir` (atomically: temporary file,
/// fsync, rename, directory fsync) and returns its description.
pub fn write_snapshot(dir: &Path, state: &EngineState) -> Result<SnapshotFile, PersistError> {
    let payload = encode_payload(state)?;
    let mut bytes = Vec::with_capacity(payload.len() + 12);
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());

    let path = dir.join(file_name(state.generation));
    let tmp = dir.join(format!("{}.tmp", file_name(state.generation)));
    let mut file =
        fs::File::create(&tmp).map_err(|e| PersistError::io("create snapshot", &tmp, e))?;
    file.write_all(&bytes)
        .map_err(|e| PersistError::io("write snapshot", &tmp, e))?;
    file.sync_all()
        .map_err(|e| PersistError::io("fsync snapshot", &tmp, e))?;
    drop(file);
    fs::rename(&tmp, &path).map_err(|e| PersistError::io("publish snapshot", &path, e))?;
    sync_dir(dir)?;
    Ok(SnapshotFile {
        path,
        generation: state.generation,
        bytes: bytes.len() as u64,
    })
}

/// Fsyncs a directory so a just-renamed file survives power loss.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), PersistError> {
    let handle = fs::File::open(dir).map_err(|e| PersistError::io("open directory", dir, e))?;
    handle
        .sync_all()
        .map_err(|e| PersistError::io("fsync directory", dir, e))
}

/// Reads and fully validates one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<EngineState, PersistError> {
    let bytes = fs::read(path).map_err(|e| PersistError::io("read snapshot", path, e))?;
    if bytes.len() < 12 {
        return Err(PersistError::corrupt(
            path,
            "shorter than the fixed framing",
        ));
    }
    if bytes[..4] != MAGIC {
        return Err(PersistError::corrupt(path, "bad magic"));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(PersistError::corrupt(
            path,
            format!("unsupported format version {version}"),
        ));
    }
    let payload = &bytes[8..bytes.len() - 4];
    let tail = bytes.len() - 4;
    let stored = u32::from_le_bytes([
        bytes[tail],
        bytes[tail + 1],
        bytes[tail + 2],
        bytes[tail + 3],
    ]);
    let computed = crc32(payload);
    if stored != computed {
        return Err(PersistError::corrupt(
            path,
            format!("checksum mismatch: stored {stored:08x}, computed {computed:08x}"),
        ));
    }
    decode_payload(payload, path)
}

/// Lists the snapshot files in `dir`, newest generation first.
fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut found = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(PersistError::io("list snapshot directory", dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io("list snapshot directory", dir, e))?;
        if let Some(generation) = entry.file_name().to_str().and_then(parse_generation) {
            found.push((generation, entry.path()));
        }
    }
    found.sort_by_key(|(generation, _)| std::cmp::Reverse(*generation));
    Ok(found)
}

/// Loads the newest valid snapshot in `dir`, or `None` when the directory
/// holds no loadable snapshot.  Damaged candidates (bad checksum,
/// truncation, undecodable payload) are skipped in favour of the next
/// older one — an interrupted snapshot write must never block recovery
/// from an older good image.
pub fn load_latest(dir: &Path) -> Result<Option<(EngineState, SnapshotFile)>, PersistError> {
    for (generation, path) in list_snapshots(dir)? {
        match read_snapshot(&path) {
            Ok(state) => {
                let bytes = fs::metadata(&path)
                    .map(|m| m.len())
                    .map_err(|e| PersistError::io("stat snapshot", &path, e))?;
                return Ok(Some((
                    state,
                    SnapshotFile {
                        path,
                        generation,
                        bytes,
                    },
                )));
            }
            Err(PersistError::Corrupt { .. }) => continue,
            Err(other) => return Err(other),
        }
    }
    Ok(None)
}

/// Deletes every snapshot older than `keep_generation` (best effort: a
/// file that refuses to die is left behind and retried next time).
pub fn prune_older_than(dir: &Path, keep_generation: u64) -> Result<(), PersistError> {
    for (generation, path) in list_snapshots(dir)? {
        if generation < keep_generation {
            let _ = fs::remove_file(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_aggregator::{CompositeAggregator, Selection};
    use asrs_core::AsrsEngine;
    use asrs_data::gen::UniformGenerator;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("asrs-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn engine(shards: usize) -> AsrsEngine {
        let ds = UniformGenerator::default().generate(300, 17);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let mut builder = AsrsEngine::builder(ds, agg).build_index(12, 12);
        if shards > 0 {
            builder = builder.shards(shards);
        }
        builder.build().unwrap()
    }

    #[test]
    fn snapshot_round_trips_unsharded_and_sharded() {
        for shards in [0usize, 3] {
            let dir = temp_dir(&format!("rt{shards}"));
            let engine = engine(shards);
            let state = engine.export_state();
            let written = write_snapshot(&dir, &state).unwrap();
            assert_eq!(written.generation, 0);
            let (loaded, file) = load_latest(&dir).unwrap().expect("one snapshot");
            assert_eq!(file, written);
            assert_eq!(loaded.generation, state.generation);
            assert!(loaded.dataset.objects().eq(state.dataset.objects()));
            match (&loaded.index, &state.index) {
                (Some(a), Some(b)) => assert_eq!(a.base_table(), b.base_table()),
                (None, None) => {}
                _ => panic!("index presence must round-trip"),
            }
            assert_eq!(
                loaded.shards.as_ref().map(Vec::len),
                state.shards.as_ref().map(Vec::len)
            );
            if let (Some(a), Some(b)) = (&loaded.shards, &state.shards) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.region, y.region);
                    assert!(x.dataset.objects().eq(y.dataset.objects()));
                    assert_eq!(
                        x.index.as_ref().map(|i| i.base_table().to_vec()),
                        y.index.as_ref().map(|i| i.base_table().to_vec())
                    );
                }
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn corrupt_snapshots_are_skipped_in_favour_of_older_ones() {
        let dir = temp_dir("corrupt");
        let engine = engine(0);
        write_snapshot(&dir, &engine.export_state()).unwrap();
        // A newer, damaged snapshot: valid framing, flipped payload byte.
        let mut newer = engine.export_state();
        newer.generation = 7;
        let written = write_snapshot(&dir, &newer).unwrap();
        let mut bytes = fs::read(&written.path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&written.path, &bytes).unwrap();

        let (state, file) = load_latest(&dir).unwrap().expect("older snapshot loads");
        assert_eq!(
            file.generation, 0,
            "the damaged generation-7 file is skipped"
        );
        assert_eq!(state.generation, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruning_keeps_the_current_generation() {
        let dir = temp_dir("prune");
        let engine = engine(0);
        let mut state = engine.export_state();
        write_snapshot(&dir, &state).unwrap();
        state.generation = 5;
        write_snapshot(&dir, &state).unwrap();
        prune_older_than(&dir, 5).unwrap();
        let files = list_snapshots(&dir).unwrap();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].0, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_loads_nothing() {
        let dir = temp_dir("empty");
        assert!(load_latest(&dir).unwrap().is_none());
        // A missing directory is also "nothing", not an error.
        let _ = fs::remove_dir_all(&dir);
        assert!(load_latest(&dir).unwrap().is_none());
    }
}
