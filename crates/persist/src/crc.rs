//! CRC-32 (IEEE 802.3 polynomial, reflected), table-based.
//!
//! The build environment is offline, so the checksum is hand-rolled: the
//! standard reflected-polynomial byte-table construction, matching the
//! `crc32` every zip/png/ethernet implementation computes.  The snapshot
//! and WAL formats use it to detect torn writes and bit rot before any
//! byte is trusted.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry byte table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"generation 42, mutation append".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
