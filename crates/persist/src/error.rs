//! The unified error type of the persistence subsystem.

use asrs_core::AsrsError;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Errors raised by snapshot and write-ahead-log operations.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io {
        /// What was being attempted (e.g. `"append to WAL"`).
        context: String,
        /// The file involved.
        path: PathBuf,
        /// The operating-system error.
        source: io::Error,
    },
    /// A persisted file is structurally invalid: bad magic, unsupported
    /// version, checksum mismatch, or a payload that does not decode.
    /// Torn WAL *tails* are tolerated silently (they are the expected
    /// crash artifact); this variant covers damage recovery cannot explain.
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// Human-readable description of the damage.
        message: String,
    },
    /// The engine rejected a restore or replay (configuration mismatch,
    /// replayed mutation failing validation, …).
    Engine(AsrsError),
}

impl PersistError {
    pub(crate) fn io(context: impl Into<String>, path: &Path, source: io::Error) -> Self {
        PersistError::Io {
            context: context.into(),
            path: path.to_path_buf(),
            source,
        }
    }

    pub(crate) fn corrupt(path: &Path, message: impl Into<String>) -> Self {
        PersistError::Corrupt {
            path: path.to_path_buf(),
            message: message.into(),
        }
    }

    /// Converts into the engine-side error surface (for the
    /// [`DurabilitySink`](asrs_core::DurabilitySink) boundary and HTTP
    /// mapping).
    pub fn into_asrs(self) -> AsrsError {
        match self {
            PersistError::Engine(e) => e,
            other => AsrsError::Persistence {
                message: other.to_string(),
            },
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io {
                context,
                path,
                source,
            } => write!(f, "{} ({}): {}", context, path.display(), source),
            PersistError::Corrupt { path, message } => {
                write!(
                    f,
                    "corrupt persistence file {}: {}",
                    path.display(),
                    message
                )
            }
            PersistError::Engine(e) => write!(f, "engine rejected persisted state: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Engine(e) => Some(e),
            PersistError::Corrupt { .. } => None,
        }
    }
}

impl From<AsrsError> for PersistError {
    fn from(e: AsrsError) -> Self {
        PersistError::Engine(e)
    }
}
