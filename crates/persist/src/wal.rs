//! The durable write-ahead log: length-prefixed, CRC-framed mutation
//! records, fsync'd before a generation is published.
//!
//! # Format (version 1)
//!
//! ```text
//! [4] magic  b"ASWL"
//! [4] format version, little-endian u32 (currently 1)
//! then zero or more frames:
//!   [4]   payload length, little-endian u32
//!   [4]   CRC-32 of the payload
//!   [len] payload = u64 generation + columnar mutation
//! ```
//!
//! Appends write one frame and `fdatasync` it before returning; the engine
//! publishes a generation only after its frame is durable, so an
//! acknowledged mutation is never lost.  A crash can leave a *torn tail* —
//! a partially written final frame — which [`Wal::open`] detects via the
//! length prefix and checksum and truncates away; everything before the
//! tear is intact by construction.  Compaction (after a snapshot) rewrites
//! the log keeping only frames newer than the snapshot generation, through
//! the same temp-file-and-rename dance the snapshots use.

use crate::crc::crc32;
use crate::error::PersistError;
use crate::snapshot::sync_dir;
use asrs_core::sync::Mutex;
use asrs_data::columnar::{self, Reader};
use asrs_data::Mutation;
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// File magic of the write-ahead log.
pub(crate) const MAGIC: [u8; 4] = *b"ASWL";
/// Current format version.
pub(crate) const VERSION: u32 = 1;
/// Bytes before the first frame.
pub(crate) const HEADER_LEN: u64 = 8;
/// Ceiling on a single frame payload; anything larger is framing damage,
/// not a real record (a mutation is one object, not a dataset).
pub(crate) const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// One replayable record recovered from the log.
#[derive(Debug, Clone, PartialEq)]
pub struct WalEntry {
    /// The generation the engine reached by applying this mutation.
    pub generation: u64,
    /// The mutation itself.
    pub mutation: Mutation,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every intact frame, in append order.
    pub entries: Vec<WalEntry>,
    /// Bytes of torn tail discarded (0 for a clean shutdown).
    pub truncated_bytes: u64,
}

#[derive(Debug)]
struct WalInner {
    file: File,
    /// Frames currently in the file.
    entries: u64,
    /// File length in bytes (header included).
    bytes: u64,
}

/// Upper bounds (microseconds, inclusive) of the fsync-latency histogram
/// buckets; one implicit overflow bucket follows the last bound.  Shared
/// by [`Wal::fsync_latency`] and the server's `/metrics` rendering.
pub const FSYNC_BUCKET_BOUNDS_US: [u64; 10] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000];

/// Lock-free fsync-latency counters: one bucket per
/// [`FSYNC_BUCKET_BOUNDS_US`] bound plus an overflow bucket, with total
/// count and accumulated microseconds for deriving a mean.
#[derive(Debug, Default)]
struct FsyncLatency {
    buckets: [AtomicU64; FSYNC_BUCKET_BOUNDS_US.len() + 1],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl FsyncLatency {
    fn record(&self, micros: u64) {
        let slot = FSYNC_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(FSYNC_BUCKET_BOUNDS_US.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(micros, Ordering::Relaxed);
    }
}

/// An append-only, fsync'd mutation log.
///
/// All methods take `&self`; appends serialise on an internal mutex, which
/// is the ordering the engine's mutation path already imposes.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    inner: Mutex<WalInner>,
    fsync_latency: FsyncLatency,
}

/// Encodes one frame payload.
fn encode_entry(generation: u64, mutation: &Mutation) -> Vec<u8> {
    let mut payload = Vec::new();
    columnar::put_u64(&mut payload, generation);
    columnar::encode_mutation(mutation, &mut payload);
    payload
}

/// Decodes one frame payload.
pub(crate) fn decode_entry(payload: &[u8]) -> Option<WalEntry> {
    let mut reader = Reader::new(payload);
    let generation = reader.u64().ok()?;
    let mutation = columnar::decode_mutation(&mut reader).ok()?;
    if reader.remaining() != 0 {
        return None;
    }
    Some(WalEntry {
        generation,
        mutation,
    })
}

/// Scans `bytes` (past the header) into intact entries, returning the
/// offset where the intact prefix ends.
fn scan_frames(bytes: &[u8]) -> (Vec<WalEntry>, u64) {
    let mut entries = Vec::new();
    let mut at = 0usize;
    loop {
        let rest = &bytes[at..];
        if rest.len() < 8 {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let stored_crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_FRAME_LEN || rest.len() < 8 + len as usize {
            break;
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != stored_crc {
            break;
        }
        let Some(entry) = decode_entry(payload) else {
            break;
        };
        entries.push(entry);
        at += 8 + len as usize;
    }
    (entries, HEADER_LEN + at as u64)
}

impl Wal {
    /// Opens (or creates) the log at `path`, recovering every intact frame
    /// and truncating any torn tail left by a crash.
    pub fn open(path: &Path) -> Result<(Wal, WalRecovery), PersistError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| PersistError::io("open WAL", path, e))?;
        let disk_len = file
            .metadata()
            .map_err(|e| PersistError::io("stat WAL", path, e))?
            .len();

        if disk_len == 0 {
            // Fresh log: write the header durably before first use.
            file.write_all(&MAGIC)
                .and_then(|()| file.write_all(&VERSION.to_le_bytes()))
                .and_then(|()| file.sync_all())
                .map_err(|e| PersistError::io("initialise WAL", path, e))?;
            if let Some(dir) = path.parent() {
                sync_dir(dir)?;
            }
            let wal = Wal {
                path: path.to_path_buf(),
                inner: Mutex::new(WalInner {
                    file,
                    entries: 0,
                    bytes: HEADER_LEN,
                }),
                fsync_latency: FsyncLatency::default(),
            };
            return Ok((
                wal,
                WalRecovery {
                    entries: Vec::new(),
                    truncated_bytes: 0,
                },
            ));
        }

        let mut bytes = Vec::with_capacity(disk_len as usize);
        file.rewind()
            .and_then(|()| file.read_to_end(&mut bytes))
            .map_err(|e| PersistError::io("read WAL", path, e))?;
        if bytes.len() < HEADER_LEN as usize || bytes[..4] != MAGIC {
            return Err(PersistError::corrupt(path, "bad WAL header"));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != VERSION {
            return Err(PersistError::corrupt(
                path,
                format!("unsupported WAL version {version}"),
            ));
        }

        let (entries, good_len) = scan_frames(&bytes[HEADER_LEN as usize..]);
        let truncated_bytes = disk_len - good_len;
        if truncated_bytes > 0 {
            file.set_len(good_len)
                .and_then(|()| file.sync_all())
                .map_err(|e| PersistError::io("truncate torn WAL tail", path, e))?;
        }
        file.seek(SeekFrom::Start(good_len))
            .map_err(|e| PersistError::io("seek WAL", path, e))?;

        let wal = Wal {
            path: path.to_path_buf(),
            inner: Mutex::new(WalInner {
                file,
                entries: entries.len() as u64,
                bytes: good_len,
            }),
            fsync_latency: FsyncLatency::default(),
        };
        Ok((
            wal,
            WalRecovery {
                entries,
                truncated_bytes,
            },
        ))
    }

    /// Appends one mutation frame and fsyncs it.  Returns only once the
    /// record is durable; the caller (the engine's publish path) must not
    /// expose the new generation before this returns.
    pub fn append(&self, generation: u64, mutation: &Mutation) -> Result<(), PersistError> {
        let payload = encode_entry(generation, mutation);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        // interlock:allow(the write+fsync under the WAL lock IS the durability critical section)
        // lint:allow(a poisoned WAL lock means a writer died mid-append; reusing the file handle could interleave a torn frame with a live one)
        let mut inner = self.inner.lock().expect("WAL lock poisoned");
        let started = Instant::now();
        inner
            .file
            .write_all(&frame)
            .and_then(|()| inner.file.sync_data())
            .map_err(|e| PersistError::io("append to WAL", &self.path, e))?;
        self.fsync_latency
            .record(started.elapsed().as_micros() as u64);
        inner.entries += 1;
        inner.bytes += frame.len() as u64;
        Ok(())
    }

    /// Appends one frame per mutation of a group-committed batch — all
    /// stamped with the same `generation` — with **one** write and **one**
    /// fsync for the whole batch.  The frame format is unchanged
    /// (replayers see `mutations.len()` consecutive frames sharing a
    /// generation), so logs written by this method read back with the same
    /// scanner; only the durability cost is amortised.  Returns only once
    /// every frame is durable.
    pub fn append_batch(&self, generation: u64, mutations: &[Mutation]) -> Result<(), PersistError> {
        if mutations.is_empty() {
            return Ok(());
        }
        let mut frames = Vec::new();
        for mutation in mutations {
            let payload = encode_entry(generation, mutation);
            frames.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frames.extend_from_slice(&crc32(&payload).to_le_bytes());
            frames.extend_from_slice(&payload);
        }

        // interlock:allow(the write+fsync under the WAL lock IS the durability critical section)
        // lint:allow(a poisoned WAL lock means a writer died mid-append; reusing the file handle could interleave a torn frame with a live one)
        let mut inner = self.inner.lock().expect("WAL lock poisoned");
        let started = Instant::now();
        inner
            .file
            .write_all(&frames)
            .and_then(|()| inner.file.sync_data())
            .map_err(|e| PersistError::io("append batch to WAL", &self.path, e))?;
        self.fsync_latency
            .record(started.elapsed().as_micros() as u64);
        inner.entries += mutations.len() as u64;
        inner.bytes += frames.len() as u64;
        Ok(())
    }

    /// Rewrites the log keeping only frames with `generation >
    /// keep_after` (atomically, via a temporary file).  Called after a
    /// snapshot makes the older prefix redundant.
    pub fn compact(&self, keep_after: u64) -> Result<(), PersistError> {
        // interlock:allow(compaction rewrites and atomically replaces the log file; appends must stall until the new inode is live)
        // lint:allow(a poisoned WAL lock means a writer died mid-append; compacting over unknown file state could drop durable frames)
        let mut inner = self.inner.lock().expect("WAL lock poisoned");

        // Re-scan the current file under the lock: the in-memory handle
        // only tracks counters, not the frames themselves.
        let mut bytes = Vec::new();
        inner
            .file
            .rewind()
            .and_then(|()| inner.file.read_to_end(&mut bytes))
            .map_err(|e| PersistError::io("read WAL for compaction", &self.path, e))?;
        let (entries, _) = scan_frames(&bytes[HEADER_LEN as usize..]);

        let tmp = self.path.with_extension("log.tmp");
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let mut kept = 0u64;
        for entry in &entries {
            if entry.generation > keep_after {
                let payload = encode_entry(entry.generation, &entry.mutation);
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(&crc32(&payload).to_le_bytes());
                out.extend_from_slice(&payload);
                kept += 1;
            }
        }
        let mut file =
            File::create(&tmp).map_err(|e| PersistError::io("create compacted WAL", &tmp, e))?;
        file.write_all(&out)
            .and_then(|()| file.sync_all())
            .map_err(|e| PersistError::io("write compacted WAL", &tmp, e))?;
        drop(file);
        fs::rename(&tmp, &self.path)
            .map_err(|e| PersistError::io("publish compacted WAL", &self.path, e))?;
        if let Some(dir) = self.path.parent() {
            sync_dir(dir)?;
        }

        // Reopen the append handle on the new inode.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| PersistError::io("reopen compacted WAL", &self.path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| PersistError::io("seek compacted WAL", &self.path, e))?;
        inner.file = file;
        inner.entries = kept;
        inner.bytes = out.len() as u64;
        Ok(())
    }

    /// Number of frames currently in the log.
    pub fn len(&self) -> u64 {
        // lint:allow(poisoned WAL counters are untrustworthy; propagate the panic rather than report a wrong durable count)
        self.inner.lock().expect("WAL lock poisoned").entries
    }

    /// Whether the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The durable-append latency counters: `(count, total_us, buckets)`,
    /// where `buckets` has one count per [`FSYNC_BUCKET_BOUNDS_US`] bound
    /// plus a trailing overflow bucket.  Each recorded value times one
    /// `write + fsync` critical section (solo or batch — group commit
    /// amortisation shows up as fewer, not faster, fsyncs).
    pub fn fsync_latency(&self) -> (u64, u64, Vec<u64>) {
        (
            self.fsync_latency.count.load(Ordering::Relaxed),
            self.fsync_latency.total_us.load(Ordering::Relaxed),
            self.fsync_latency
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        )
    }

    /// Current file size in bytes (header included).
    pub fn bytes(&self) -> u64 {
        // lint:allow(poisoned WAL counters are untrustworthy; propagate the panic rather than report a wrong durable count)
        self.inner.lock().expect("WAL lock poisoned").bytes
    }

    /// Where the log lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_data::SpatialObject;
    use asrs_data::{AttrValue, Mutation};
    use asrs_geo::Point;

    fn temp_log(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("asrs-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn object(id: u64) -> SpatialObject {
        SpatialObject::new(
            id,
            Point::new(id as f64, -(id as f64)),
            vec![AttrValue::Cat(id as u32 % 3)],
        )
    }

    fn mutations() -> Vec<(u64, Mutation)> {
        vec![
            (1, Mutation::Append { object: object(10) }),
            (2, Mutation::Append { object: object(11) }),
            (3, Mutation::Remove { id: 10 }),
            (4, Mutation::Expire { id: 11 }),
        ]
    }

    #[test]
    fn appends_recover_across_reopen() {
        let path = temp_log("reopen");
        {
            let (wal, recovery) = Wal::open(&path).unwrap();
            assert!(recovery.entries.is_empty());
            for (generation, m) in mutations() {
                wal.append(generation, &m).unwrap();
            }
            assert_eq!(wal.len(), 4);
        }
        let (wal, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(
            recovery
                .entries
                .iter()
                .map(|e| (e.generation, e.mutation.clone()))
                .collect::<Vec<_>>(),
            mutations()
        );
        assert_eq!(wal.len(), 4);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_log("torn");
        {
            let (wal, _) = Wal::open(&path).unwrap();
            for (generation, m) in mutations() {
                wal.append(generation, &m).unwrap();
            }
        }
        // Simulate a crash mid-append: chop bytes off the final frame.
        let full = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);

        let (wal, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.entries.len(), 3, "the torn fourth frame is gone");
        assert!(recovery.truncated_bytes > 0);
        // The log is usable again: the next append lands after the tear.
        wal.append(4, &Mutation::Remove { id: 11 }).unwrap();
        let (_, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.entries.len(), 4);
        assert_eq!(recovery.entries[3].mutation, Mutation::Remove { id: 11 });
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn corrupted_frame_truncates_from_the_damage_onward() {
        let path = temp_log("bitrot");
        {
            let (wal, _) = Wal::open(&path).unwrap();
            for (generation, m) in mutations() {
                wal.append(generation, &m).unwrap();
            }
        }
        // Flip a byte inside the second frame's payload.
        let mut bytes = fs::read(&path).unwrap();
        let second_frame_at = {
            let first_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
            8 + 8 + first_len
        };
        bytes[second_frame_at + 10] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let (_, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.entries.len(), 1, "only the intact prefix survives");
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn compaction_drops_frames_covered_by_a_snapshot() {
        let path = temp_log("compact");
        let (wal, _) = Wal::open(&path).unwrap();
        for (generation, m) in mutations() {
            wal.append(generation, &m).unwrap();
        }
        wal.compact(2).unwrap();
        assert_eq!(wal.len(), 2);
        // The handle still appends correctly after the inode swap.
        wal.append(5, &Mutation::Append { object: object(12) })
            .unwrap();
        drop(wal);
        let (_, recovery) = Wal::open(&path).unwrap();
        let generations: Vec<u64> = recovery.entries.iter().map(|e| e.generation).collect();
        assert_eq!(generations, vec![3, 4, 5]);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn foreign_file_is_rejected_as_corrupt() {
        let path = temp_log("foreign");
        fs::write(&path, b"not a wal at all").unwrap();
        match Wal::open(&path) {
            Err(PersistError::Corrupt { .. }) => {}
            other => panic!("expected corrupt error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }
}
