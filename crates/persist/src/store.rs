//! Orchestration: wiring snapshots and the WAL into an engine's
//! lifecycle.
//!
//! The [`PersistExt`] extension trait turns an ordinary
//! [`EngineBuilder`] into a [`PersistentBuilder`]:
//!
//! ```no_run
//! use asrs_persist::PersistExt;
//! # use asrs_core::AsrsEngine;
//! # use asrs_aggregator::{CompositeAggregator, Selection};
//! # use asrs_data::gen::UniformGenerator;
//! # let ds = UniformGenerator::default().generate(100, 1);
//! # let agg = CompositeAggregator::builder(ds.schema())
//! #     .distribution("category", Selection::All).build().unwrap();
//! let persistent = AsrsEngine::builder(ds, agg)
//!     .build_index(16, 16)
//!     .persist_dir("/var/lib/asrs")
//!     .build()
//!     .unwrap();
//! ```
//!
//! Boot order: load the newest valid snapshot (if any) and restore the
//! engine from it without re-indexing; replay the WAL tail past the
//! snapshot's generation through the ordinary mutation path; only *then*
//! attach the WAL as the engine's durability sink, so replayed mutations
//! are not logged twice.  From that point every mutation is fsync'd to
//! the log before its generation is published (see
//! `asrs_core::DurabilitySink`).
//!
//! Snapshots are taken from an exported [`EngineState`] — an `Arc`-backed
//! view of one immutable generation — so writers are never stalled while
//! the file is produced.  After a successful snapshot the WAL is compacted
//! down to the frames newer than the snapshot and older snapshot files are
//! pruned.  When the log grows past `compaction_threshold` frames, the
//! handle raises a `snapshot_due` flag; the serving layer's background
//! thread polls it and snapshots outside the write path.

use crate::error::PersistError;
use crate::snapshot::{self, SnapshotFile};
use crate::wal::Wal;
use asrs_core::sync::Mutex;
use asrs_core::{AsrsEngine, AsrsError, DurabilitySink, EngineBuilder, EngineState};
use asrs_data::Mutation;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// File name of the write-ahead log inside the persistence directory.
const WAL_FILE: &str = "wal.log";

/// How the engine came back at boot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootReport {
    /// `true` when no usable snapshot existed and the engine was built
    /// from its seed dataset.
    pub cold_start: bool,
    /// Generation of the snapshot that was restored, if any.
    pub snapshot_generation: Option<u64>,
    /// Size in bytes of the restored snapshot, if any.
    pub snapshot_bytes: Option<u64>,
    /// WAL frames replayed on top of the snapshot (or seed).
    pub replayed_entries: u64,
    /// Torn-tail bytes discarded from the WAL (0 on clean shutdown).
    pub wal_truncated_bytes: u64,
    /// The engine generation once boot finished.
    pub boot_generation: u64,
}

/// Result of one snapshot operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotReport {
    /// The generation the snapshot captures.
    pub generation: u64,
    /// Snapshot file size in bytes.
    pub bytes: u64,
    /// WAL frames remaining after the post-snapshot compaction.
    pub wal_entries: u64,
}

/// A point-in-time view of the persistence counters, served under
/// `/metrics`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistStats {
    /// Where the snapshot and log files live.
    pub directory: String,
    /// Generation of the newest on-disk snapshot, if one has been written.
    pub snapshot_generation: Option<u64>,
    /// Size in bytes of the newest snapshot.
    pub snapshot_bytes: Option<u64>,
    /// Snapshots written since this process opened the directory.
    pub snapshots_written: u64,
    /// Frames currently in the write-ahead log.
    pub wal_entries: u64,
    /// Write-ahead log size in bytes.
    pub wal_bytes: u64,
    /// Frames replayed by the most recent boot.
    pub replayed_on_boot: u64,
    /// WAL frames that trigger the `snapshot_due` flag.
    pub compaction_threshold: u64,
    /// Whether the log has outgrown the threshold and a snapshot is
    /// pending.
    pub snapshot_due: bool,
    /// Durable WAL appends (each one `write + fsync` critical section;
    /// a group-committed batch counts once).
    pub fsyncs: u64,
    /// Total microseconds spent in those critical sections.
    pub fsync_total_us: u64,
    /// Latency histogram bucket counts, one per
    /// [`crate::wal::FSYNC_BUCKET_BOUNDS_US`] bound plus a trailing
    /// overflow bucket.
    pub fsync_latency_us: Vec<u64>,
}

#[derive(Debug)]
struct StoreCounters {
    snapshot_generation: Option<u64>,
    snapshot_bytes: Option<u64>,
    snapshots_written: u64,
    replayed_on_boot: u64,
}

/// The live persistence state of one engine: the open WAL, the snapshot
/// directory, and the compaction bookkeeping.
///
/// The handle is deliberately engine-agnostic — it never holds an engine
/// reference (which would create a cycle through the engine's durability
/// sink).  Snapshots are fed an [`EngineState`] exported by the caller.
#[derive(Debug)]
pub struct PersistHandle {
    dir: PathBuf,
    wal: Wal,
    compaction_threshold: u64,
    snapshot_due: AtomicBool,
    counters: Mutex<StoreCounters>,
}

impl PersistHandle {
    /// Writes a snapshot of `state`, compacts the WAL down to frames newer
    /// than it, and prunes older snapshot files.
    ///
    /// `state` should come from [`AsrsEngine::export_state`] (or the
    /// handle equivalent); it is an `Arc`-backed view, so concurrent
    /// queries and mutations proceed untouched while the file is written.
    pub fn snapshot_now(&self, state: &EngineState) -> Result<SnapshotReport, PersistError> {
        let written = snapshot::write_snapshot(&self.dir, state)?;
        self.wal.compact(written.generation)?;
        snapshot::prune_older_than(&self.dir, written.generation)?;
        {
            // Counters are plain data; a poisoned lock (a panicking peer
            // thread) cannot leave them half-updated in a harmful way.
            let mut counters = self
                .counters
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            counters.snapshot_generation = Some(written.generation);
            counters.snapshot_bytes = Some(written.bytes);
            counters.snapshots_written += 1;
        }
        self.snapshot_due.store(false, Ordering::Release);
        Ok(SnapshotReport {
            generation: written.generation,
            bytes: written.bytes,
            wal_entries: self.wal.len(),
        })
    }

    /// Whether the WAL has outgrown the compaction threshold since the
    /// last snapshot.  Cleared by [`PersistHandle::snapshot_now`].
    pub fn snapshot_due(&self) -> bool {
        self.snapshot_due.load(Ordering::Acquire)
    }

    /// Current persistence counters.
    pub fn stats(&self) -> PersistStats {
        // Copy the counters in a tight block so the guard is not held
        // while `Wal::len`/`Wal::bytes` take the WAL lock (keeps
        // `store.counters` a leaf in LOCK_ORDER.md).
        let (snapshot_generation, snapshot_bytes, snapshots_written, replayed_on_boot) = {
            let counters = self
                .counters
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            (
                counters.snapshot_generation,
                counters.snapshot_bytes,
                counters.snapshots_written,
                counters.replayed_on_boot,
            )
        };
        let (fsyncs, fsync_total_us, fsync_latency_us) = self.wal.fsync_latency();
        PersistStats {
            directory: self.dir.display().to_string(),
            snapshot_generation,
            snapshot_bytes,
            snapshots_written,
            wal_entries: self.wal.len(),
            wal_bytes: self.wal.bytes(),
            replayed_on_boot,
            compaction_threshold: self.compaction_threshold,
            snapshot_due: self.snapshot_due.load(Ordering::Acquire),
            fsyncs,
            fsync_total_us,
            fsync_latency_us,
        }
    }

    /// The directory the handle persists into.
    pub fn directory(&self) -> &Path {
        &self.dir
    }
}

impl DurabilitySink for PersistHandle {
    fn log_mutation(&self, generation: u64, mutation: &Mutation) -> Result<(), AsrsError> {
        self.wal
            .append(generation, mutation)
            .map_err(PersistError::into_asrs)?;
        if self.wal.len() >= self.compaction_threshold {
            self.snapshot_due.store(true, Ordering::Release);
        }
        Ok(())
    }

    fn log_batch(&self, generation: u64, mutations: &[Mutation]) -> Result<(), AsrsError> {
        self.wal
            .append_batch(generation, mutations)
            .map_err(PersistError::into_asrs)?;
        if self.wal.len() >= self.compaction_threshold {
            self.snapshot_due.store(true, Ordering::Release);
        }
        Ok(())
    }
}

/// An engine bundled with its persistence handle and boot report.
#[derive(Debug)]
pub struct PersistentEngine {
    engine: AsrsEngine,
    persist: Arc<PersistHandle>,
    boot: BootReport,
}

impl PersistentEngine {
    /// The engine itself.
    pub fn engine(&self) -> &AsrsEngine {
        &self.engine
    }

    /// A cloneable handle to the engine (queries and mutations).
    pub fn handle(&self) -> asrs_core::EngineHandle {
        self.engine.handle()
    }

    /// The persistence handle (snapshots, counters).
    pub fn persist(&self) -> &Arc<PersistHandle> {
        &self.persist
    }

    /// How this engine booted.
    pub fn boot(&self) -> &BootReport {
        &self.boot
    }

    /// Snapshots the engine's current generation.
    pub fn snapshot(&self) -> Result<SnapshotReport, PersistError> {
        self.persist.snapshot_now(&self.engine.export_state())
    }

    /// Splits into the engine and its persistence handle.
    pub fn into_parts(self) -> (AsrsEngine, Arc<PersistHandle>, BootReport) {
        (self.engine, self.persist, self.boot)
    }
}

/// Builder for a crash-safe engine: an [`EngineBuilder`] plus a
/// persistence directory.  Created by [`PersistExt::persist_dir`].
#[derive(Debug)]
pub struct PersistentBuilder {
    builder: EngineBuilder,
    dir: PathBuf,
    compaction_threshold: u64,
    snapshot_on_build: bool,
}

impl PersistentBuilder {
    /// WAL frames that trigger a background snapshot (default 1024).
    /// The flag is polled by the serving layer; libraries embedding the
    /// engine directly should poll [`PersistHandle::snapshot_due`]
    /// themselves or call [`PersistentEngine::snapshot`] at their own
    /// cadence.
    pub fn compaction_threshold(mut self, frames: u64) -> Self {
        self.compaction_threshold = frames.max(1);
        self
    }

    /// Whether `build` writes an initial snapshot when none exists yet
    /// (default `true`).  Disabling trades first-boot latency for
    /// replaying the whole WAL on the next boot.
    pub fn snapshot_on_build(mut self, yes: bool) -> Self {
        self.snapshot_on_build = yes;
        self
    }

    /// Boots the engine: restore from the newest valid snapshot (or build
    /// from the seed dataset when none exists), replay the WAL tail, then
    /// attach the log so subsequent mutations are durable.
    pub fn build(self) -> Result<PersistentEngine, PersistError> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| PersistError::io("create persistence directory", &self.dir, e))?;
        let (wal, recovery) = Wal::open(&self.dir.join(WAL_FILE))?;

        let loaded = snapshot::load_latest(&self.dir)?;
        let (engine, snapshot_file): (AsrsEngine, Option<SnapshotFile>) = match loaded {
            Some((state, file)) => (self.builder.build_restored(state)?, Some(file)),
            None => (self.builder.build()?, None),
        };

        // Replay the tail: frames the snapshot does not cover.  Frames at
        // or below the boot generation are redundant (a crash between
        // snapshot and compaction leaves them behind) and are skipped;
        // past that, generations must be contiguous or the log and
        // snapshot disagree about history.  A group-committed batch is a
        // run of consecutive frames sharing one generation; the run
        // replays as one atomic batch so the recovered engine's generation
        // counter lands exactly where the log says it should.
        let mut replayed = 0u64;
        let wal_path = wal.path().to_path_buf();
        let mut i = 0;
        while i < recovery.entries.len() {
            let generation = recovery.entries[i].generation;
            let mut end = i + 1;
            while end < recovery.entries.len() && recovery.entries[end].generation == generation {
                end += 1;
            }
            let at = engine.generation();
            if generation <= at {
                i = end;
                continue;
            }
            if generation != at + 1 {
                return Err(PersistError::corrupt(
                    &wal_path,
                    format!(
                        "WAL jumps from generation {at} to {generation}; a snapshot or log segment is missing"
                    ),
                ));
            }
            // TTLs are not durable (they are wall-clock relative); an
            // expiry that made it to the log replays as its outcome — the
            // engine applies `Expire` records as plain removals.
            let batch: Vec<Mutation> = recovery.entries[i..end]
                .iter()
                .map(|e| e.mutation.clone())
                .collect();
            let receipts = engine.apply_mutations(&batch).map_err(PersistError::Engine)?;
            debug_assert!(receipts.iter().all(|r| r.generation == generation));
            replayed += (end - i) as u64;
            i = end;
        }

        let boot = BootReport {
            cold_start: snapshot_file.is_none(),
            snapshot_generation: snapshot_file.as_ref().map(|f| f.generation),
            snapshot_bytes: snapshot_file.as_ref().map(|f| f.bytes),
            replayed_entries: replayed,
            wal_truncated_bytes: recovery.truncated_bytes,
            boot_generation: engine.generation(),
        };

        let persist = Arc::new(PersistHandle {
            dir: self.dir,
            wal,
            compaction_threshold: self.compaction_threshold,
            snapshot_due: AtomicBool::new(false),
            counters: Mutex::new(StoreCounters {
                snapshot_generation: boot.snapshot_generation,
                snapshot_bytes: boot.snapshot_bytes,
                snapshots_written: 0,
                replayed_on_boot: replayed,
            }),
        });

        // Re-establish the invariant "everything up to the current
        // generation is in a snapshot or the log": fresh directories get
        // their first snapshot, and a heavily-replayed boot compacts.
        if (self.snapshot_on_build && snapshot_file.is_none())
            || replayed >= self.compaction_threshold
        {
            persist.snapshot_now(&engine.export_state())?;
        }

        engine
            .attach_durability(persist.clone())
            .map_err(PersistError::Engine)?;

        Ok(PersistentEngine {
            engine,
            persist,
            boot,
        })
    }
}

/// Extension trait adding [`persist_dir`](PersistExt::persist_dir) to
/// [`EngineBuilder`].
pub trait PersistExt {
    /// Persists the engine into `dir`: boot restores the newest snapshot
    /// there and replays the write-ahead log; every later mutation is
    /// fsync'd to the log before it is acknowledged.
    fn persist_dir(self, dir: impl Into<PathBuf>) -> PersistentBuilder;
}

impl PersistExt for EngineBuilder {
    fn persist_dir(self, dir: impl Into<PathBuf>) -> PersistentBuilder {
        PersistentBuilder {
            builder: self,
            dir: dir.into(),
            compaction_threshold: 1024,
            snapshot_on_build: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_aggregator::{CompositeAggregator, Selection};
    use asrs_data::gen::UniformGenerator;
    use asrs_data::{AttrValue, SpatialObject};
    use asrs_geo::Point;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("asrs-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn builder(objects: usize, shards: usize) -> EngineBuilder {
        let ds = UniformGenerator::default().generate(objects, 5);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let mut b = AsrsEngine::builder(ds, agg).build_index(10, 10);
        if shards > 0 {
            b = b.shards(shards);
        }
        b
    }

    fn object(id: u64) -> SpatialObject {
        SpatialObject::new(
            id,
            Point::new(40.0 + id as f64 % 7.0, 60.0 - id as f64 % 11.0),
            vec![AttrValue::Cat(id as u32 % 4)],
        )
    }

    #[test]
    fn cold_boot_writes_an_initial_snapshot_and_logs_mutations() {
        let dir = temp_dir("cold");
        let persistent = builder(120, 0).persist_dir(&dir).build().unwrap();
        assert!(persistent.boot().cold_start);
        assert_eq!(persistent.boot().boot_generation, 0);
        let stats = persistent.persist().stats();
        assert_eq!(stats.snapshots_written, 1, "snapshot_on_build default");
        assert_eq!(stats.wal_entries, 0);

        persistent.engine().append(object(500)).unwrap();
        persistent.engine().remove(3).unwrap();
        let stats = persistent.persist().stats();
        assert_eq!(stats.wal_entries, 2);
        assert!(stats.wal_bytes > 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reboot_replays_the_wal_tail() {
        let dir = temp_dir("reboot");
        {
            let p = builder(120, 2).persist_dir(&dir).build().unwrap();
            p.engine().append(object(700)).unwrap();
            p.engine().append(object(701)).unwrap();
            p.engine().remove(700).unwrap();
            assert_eq!(p.engine().generation(), 3);
        }
        let p = builder(120, 2).persist_dir(&dir).build().unwrap();
        assert!(!p.boot().cold_start);
        assert_eq!(p.boot().snapshot_generation, Some(0));
        assert_eq!(p.boot().replayed_entries, 3);
        assert_eq!(p.engine().generation(), 3);
        assert!(p.engine().dataset().contains_id(701));
        assert!(!p.engine().dataset().contains_id(700));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_now_compacts_the_log_and_prunes_old_snapshots() {
        let dir = temp_dir("compact");
        let p = builder(100, 0)
            .persist_dir(&dir)
            .compaction_threshold(3)
            .build()
            .unwrap();
        assert!(!p.persist().snapshot_due());
        p.engine().append(object(800)).unwrap();
        p.engine().append(object(801)).unwrap();
        assert!(!p.persist().snapshot_due());
        p.engine().append(object(802)).unwrap();
        assert!(p.persist().snapshot_due(), "threshold of 3 reached");

        let report = p.snapshot().unwrap();
        assert_eq!(report.generation, 3);
        assert_eq!(report.wal_entries, 0);
        assert!(!p.persist().snapshot_due());
        let stats = p.persist().stats();
        assert_eq!(stats.snapshot_generation, Some(3));
        assert_eq!(stats.snapshots_written, 2);

        // Only the newest snapshot file remains on disk.
        let snaps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
            .collect();
        assert_eq!(snaps.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_past_threshold_triggers_a_boot_snapshot() {
        let dir = temp_dir("bootsnap");
        {
            let p = builder(80, 0).persist_dir(&dir).build().unwrap();
            for id in 900..905 {
                p.engine().append(object(id)).unwrap();
            }
        }
        let p = builder(80, 0)
            .persist_dir(&dir)
            .compaction_threshold(4)
            .build()
            .unwrap();
        assert_eq!(p.boot().replayed_entries, 5);
        let stats = p.persist().stats();
        assert_eq!(stats.wal_entries, 0, "boot compacted the replayed log");
        assert_eq!(stats.snapshot_generation, Some(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_generation_gap_is_reported_as_corruption() {
        let dir = temp_dir("gap");
        {
            let p = builder(60, 0).persist_dir(&dir).build().unwrap();
            p.engine().append(object(950)).unwrap();
        }
        // Delete the snapshot the WAL was built against *and* the first
        // frame's precondition: rebooting from the seed at generation 0
        // with a log claiming generation 1 still lines up, so instead
        // corrupt history by removing the snapshot and appending a frame
        // with a far-future generation.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "snap") {
                std::fs::remove_file(path).unwrap();
            }
        }
        {
            let (wal, _) = Wal::open(&dir.join(WAL_FILE)).unwrap();
            wal.append(9, &Mutation::Remove { id: 950 }).unwrap();
        }
        match builder(60, 0).persist_dir(&dir).build() {
            Err(PersistError::Corrupt { message, .. }) => {
                assert!(message.contains("jumps"), "{message}")
            }
            other => panic!("expected corruption, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
