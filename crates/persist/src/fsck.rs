//! Offline structural verification of a persistence directory — the
//! `fsck` of the ASRS on-disk formats.
//!
//! Everything here is **read-only** and engine-free: no engine is booted,
//! no file is truncated or rewritten (unlike [`Wal::open`](crate::Wal),
//! which repairs torn tails in place).  That makes the checks safe to run
//! against the live directory of a serving process, against a backup, or
//! from the `asrs-fsck` binary in CI.
//!
//! Three layers of verification, mirroring what a real boot would do:
//!
//! 1. **Per-snapshot** ([`check_snapshot_file`]) — fixed framing, magic,
//!    version, payload CRC-32, then a full payload decode through the same
//!    [`decode_payload`](crate::snapshot) the boot path uses, which
//!    enforces column lengths, index base-table shape and shard-position
//!    bounds.  The generation in the file name must match the one in the
//!    payload.
//! 2. **Per-WAL** ([`check_wal_file`]) — header magic/version, then a
//!    frame-by-frame walk distinguishing a *torn tail* (an incomplete
//!    final frame: the expected crash artifact, a warning) from *corrupt
//!    frames* (checksum or decode failure in the middle of the log: real
//!    damage, an error), plus in-log generation contiguity.
//! 3. **Cross-file** ([`check_dir`]) — the directory as a whole: simulate
//!    the boot plan (newest loadable snapshot, replayable WAL suffix) and
//!    flag a WAL that disagrees with snapshot history, exactly as
//!    [`PersistentBuilder::build`](crate::PersistentBuilder) would reject
//!    it.  Stale temporary files and foreign files are warnings.
//!
//! Reports serialize to JSON for machines and summarize for humans.

use crate::crc::crc32;
use crate::error::PersistError;
use crate::{snapshot, wal};
use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// How bad one finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Severity {
    /// Expected artifacts of a crash or interruption; boot recovers from
    /// these silently (torn WAL tail, leftover temporary file).
    Warning,
    /// Structural damage boot either skips over (a corrupt snapshot) or
    /// refuses outright (inconsistent generation history).
    Error,
}

/// What kind of damage a finding describes.  The variant set is the
/// machine-readable contract of the `asrs-fsck` binary; tests assert on
/// these, not on detail strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FsckCategory {
    /// File shorter than its fixed framing.
    Truncated,
    /// The leading magic bytes are not the format's.
    BadMagic,
    /// The format version is one this build cannot read.
    BadVersion,
    /// A stored CRC-32 does not match the recomputed one.
    ChecksumMismatch,
    /// A snapshot shard references an object position outside the main
    /// dataset's columns.
    ShardPositionOutOfBounds,
    /// Bytes remain after the payload fully decoded.
    TrailingBytes,
    /// The payload does not decode as its declared version.
    PayloadDecode,
    /// The payload decoded but the engine-side constructors rejected it
    /// (e.g. an index base table whose length disagrees with its grid).
    StateRejected,
    /// A snapshot's file name claims a different generation than its
    /// payload.
    GenerationMismatch,
    /// An incomplete final WAL frame — the expected crash artifact.
    TornTail,
    /// A complete WAL frame that fails its checksum or does not decode.
    CorruptFrame,
    /// A frame declares a payload beyond the format's size ceiling.
    OversizedFrame,
    /// Generations inside the WAL are not contiguous.
    GenerationGap,
    /// The WAL's replayable suffix does not continue where the newest
    /// loadable snapshot ends.
    GenerationDiscontinuity,
    /// A leftover `*.tmp` file from an interrupted atomic write.
    StaleTempFile,
    /// A file the persistence subsystem does not recognize.
    ForeignFile,
}

/// One problem found in one file (or in the directory as a whole).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FsckFinding {
    /// File the finding is about (file name for per-file findings, the
    /// directory path for cross-file ones).
    pub file: String,
    /// Machine-readable damage category.
    pub category: FsckCategory,
    /// Whether boot recovers from this silently or not.
    pub severity: Severity,
    /// Human-readable description.
    pub detail: String,
}

impl FsckFinding {
    fn new(file: &str, category: FsckCategory, severity: Severity, detail: String) -> Self {
        FsckFinding {
            file: file.to_string(),
            category,
            severity,
            detail,
        }
    }
}

/// Verification result for one snapshot file.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SnapshotCheck {
    /// The file's name.
    pub file: String,
    /// Generation parsed from the file name (`None` for a malformed name).
    pub name_generation: Option<u64>,
    /// Generation stored in the payload, when it decoded.
    pub payload_generation: Option<u64>,
    /// File size in bytes.
    pub bytes: u64,
    /// Everything wrong with the file (empty for a healthy snapshot).
    pub findings: Vec<FsckFinding>,
}

impl SnapshotCheck {
    /// Whether boot's [`load_latest`](crate::load_latest) would restore
    /// from this file.
    pub fn loadable(&self) -> bool {
        !self.findings.iter().any(|f| f.severity == Severity::Error)
    }
}

/// Verification result for the write-ahead log.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WalCheck {
    /// The file's name.
    pub file: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Intact frames, in log order.
    pub frames: u64,
    /// The generation of each intact frame, in log order.
    pub generations: Vec<u64>,
    /// Bytes of torn tail a boot would truncate (0 for a clean shutdown).
    pub torn_tail_bytes: u64,
    /// Everything wrong with the log (empty for a healthy one).
    pub findings: Vec<FsckFinding>,
}

/// Verification result for a whole persistence directory.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FsckReport {
    /// The directory that was checked.
    pub directory: String,
    /// Per-snapshot results, oldest generation first.
    pub snapshots: Vec<SnapshotCheck>,
    /// The WAL's result, `None` when no log exists yet.
    pub wal: Option<WalCheck>,
    /// The generation boot would restore from disk (0 for a cold start).
    pub boot_generation: u64,
    /// `true` when no loadable snapshot exists.
    pub cold_start: bool,
    /// WAL frames boot would replay on top of the restored snapshot.
    pub replayable_frames: u64,
    /// The generation the engine would reach after replay.
    pub final_generation: u64,
    /// Directory-level and cross-file findings.
    pub findings: Vec<FsckFinding>,
    /// Total [`Severity::Error`] findings across every section.
    pub errors: usize,
    /// Total [`Severity::Warning`] findings across every section.
    pub warnings: usize,
}

impl FsckReport {
    /// No findings of any severity.
    pub fn is_clean(&self) -> bool {
        self.errors == 0 && self.warnings == 0
    }

    /// At least one [`Severity::Error`] finding.
    pub fn has_errors(&self) -> bool {
        self.errors > 0
    }

    /// Every finding across every section, for uniform iteration.
    pub fn all_findings(&self) -> Vec<&FsckFinding> {
        self.snapshots
            .iter()
            .flat_map(|s| s.findings.iter())
            .chain(self.wal.iter().flat_map(|w| w.findings.iter()))
            .chain(self.findings.iter())
            .collect()
    }

    /// A short human-readable account, one line per finding.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} snapshot(s), wal {}, boot generation {}{}, {} replayable frame(s) -> generation {}",
            self.directory,
            self.snapshots.len(),
            match &self.wal {
                Some(w) => format!("{} frame(s)", w.frames),
                None => "absent".to_string(),
            },
            self.boot_generation,
            if self.cold_start { " (cold start)" } else { "" },
            self.replayable_frames,
            self.final_generation,
        );
        for finding in self.all_findings() {
            let _ = writeln!(
                out,
                "  {} {}: {:?}: {}",
                match finding.severity {
                    Severity::Error => "ERROR",
                    Severity::Warning => "WARN ",
                },
                finding.file,
                finding.category,
                finding.detail
            );
        }
        if self.is_clean() {
            let _ = writeln!(out, "  clean");
        }
        out
    }
}

fn file_label(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Structurally verifies one snapshot file without booting an engine.
///
/// Only I/O failures are `Err`; structural damage comes back as findings
/// inside the [`SnapshotCheck`].
pub fn check_snapshot_file(path: &Path) -> Result<SnapshotCheck, PersistError> {
    let bytes = fs::read(path).map_err(|e| PersistError::io("read snapshot", path, e))?;
    let file = file_label(path);
    let name_generation = path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(snapshot::parse_generation);
    let mut check = SnapshotCheck {
        file: file.clone(),
        name_generation,
        payload_generation: None,
        bytes: bytes.len() as u64,
        findings: Vec::new(),
    };

    // Framing layers are checked in order; once one fails, the layers
    // beneath it are meaningless, so the walk stops there.
    if bytes.len() < 12 {
        check.findings.push(FsckFinding::new(
            &file,
            FsckCategory::Truncated,
            Severity::Error,
            format!(
                "{} bytes, shorter than the 12-byte fixed framing",
                bytes.len()
            ),
        ));
        return Ok(check);
    }
    if bytes[..4] != snapshot::MAGIC {
        check.findings.push(FsckFinding::new(
            &file,
            FsckCategory::BadMagic,
            Severity::Error,
            format!(
                "magic {:02x?} is not ASNP ({:02x?})",
                &bytes[..4],
                snapshot::MAGIC
            ),
        ));
        return Ok(check);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != snapshot::VERSION {
        check.findings.push(FsckFinding::new(
            &file,
            FsckCategory::BadVersion,
            Severity::Error,
            format!(
                "format version {version}; this build reads version {}",
                snapshot::VERSION
            ),
        ));
        return Ok(check);
    }
    let payload = &bytes[8..bytes.len() - 4];
    let tail = bytes.len() - 4;
    let stored = u32::from_le_bytes([
        bytes[tail],
        bytes[tail + 1],
        bytes[tail + 2],
        bytes[tail + 3],
    ]);
    let computed = crc32(payload);
    if stored != computed {
        check.findings.push(FsckFinding::new(
            &file,
            FsckCategory::ChecksumMismatch,
            Severity::Error,
            format!("payload CRC-32 stored {stored:08x}, computed {computed:08x}"),
        ));
        return Ok(check);
    }

    // The checksum verifies, so the payload is what was written; now the
    // content itself must decode.  This is the exact decoder the boot path
    // runs, so every column-length and shard-position bound it enforces is
    // enforced here.
    match snapshot::decode_payload(payload, path) {
        Ok(state) => {
            check.payload_generation = Some(state.generation);
            if name_generation != Some(state.generation) {
                check.findings.push(FsckFinding::new(
                    &file,
                    FsckCategory::GenerationMismatch,
                    Severity::Error,
                    format!(
                        "file name claims generation {:?}, payload holds {}",
                        name_generation, state.generation
                    ),
                ));
            }
        }
        Err(PersistError::Corrupt { message, .. }) => {
            let category = if message.contains("out of range") {
                FsckCategory::ShardPositionOutOfBounds
            } else if message.contains("trailing payload bytes") {
                FsckCategory::TrailingBytes
            } else {
                FsckCategory::PayloadDecode
            };
            check
                .findings
                .push(FsckFinding::new(&file, category, Severity::Error, message));
        }
        Err(other) => {
            check.findings.push(FsckFinding::new(
                &file,
                FsckCategory::StateRejected,
                Severity::Error,
                other.to_string(),
            ));
        }
    }
    Ok(check)
}

/// Structurally verifies a write-ahead log **without repairing it** —
/// unlike [`Wal::open`](crate::Wal), which truncates torn tails in place,
/// this never writes.
pub fn check_wal_file(path: &Path) -> Result<WalCheck, PersistError> {
    let bytes = fs::read(path).map_err(|e| PersistError::io("read WAL", path, e))?;
    let file = file_label(path);
    let mut check = WalCheck {
        file: file.clone(),
        bytes: bytes.len() as u64,
        frames: 0,
        generations: Vec::new(),
        torn_tail_bytes: 0,
        findings: Vec::new(),
    };

    if bytes.len() < wal::HEADER_LEN as usize {
        check.findings.push(FsckFinding::new(
            &file,
            FsckCategory::Truncated,
            Severity::Error,
            format!("{} bytes, shorter than the 8-byte header", bytes.len()),
        ));
        return Ok(check);
    }
    if bytes[..4] != wal::MAGIC {
        check.findings.push(FsckFinding::new(
            &file,
            FsckCategory::BadMagic,
            Severity::Error,
            format!(
                "magic {:02x?} is not ASWL ({:02x?})",
                &bytes[..4],
                wal::MAGIC
            ),
        ));
        return Ok(check);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != wal::VERSION {
        check.findings.push(FsckFinding::new(
            &file,
            FsckCategory::BadVersion,
            Severity::Error,
            format!(
                "format version {version}; this build reads version {}",
                wal::VERSION
            ),
        ));
        return Ok(check);
    }

    // Frame walk.  The one format-level subtlety: a frame that simply
    // *stops early* (short header or short payload at end-of-file) is a
    // torn tail — the artifact of crashing mid-append, which recovery
    // truncates silently — while a frame that is fully present but wrong
    // (checksum, decode) is damage recovery cannot explain.  The walk
    // stops at the first of either, because nothing after an undamaged
    // frame boundary can be trusted.
    let mut at = wal::HEADER_LEN as usize;
    loop {
        let rest = &bytes[at..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < 8 {
            check.torn_tail_bytes = rest.len() as u64;
            check.findings.push(FsckFinding::new(
                &file,
                FsckCategory::TornTail,
                Severity::Warning,
                format!(
                    "{} dangling byte(s) at offset {at}: a frame header cut short mid-append",
                    rest.len()
                ),
            ));
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let stored_crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > wal::MAX_FRAME_LEN {
            check.findings.push(FsckFinding::new(
                &file,
                FsckCategory::OversizedFrame,
                Severity::Error,
                format!(
                    "frame at offset {at} declares a {len}-byte payload, over the {}-byte ceiling; {} byte(s) unreachable",
                    wal::MAX_FRAME_LEN,
                    rest.len()
                ),
            ));
            break;
        }
        if rest.len() < 8 + len as usize {
            check.torn_tail_bytes = rest.len() as u64;
            check.findings.push(FsckFinding::new(
                &file,
                FsckCategory::TornTail,
                Severity::Warning,
                format!(
                    "incomplete final frame at offset {at}: {} of {} byte(s) present",
                    rest.len(),
                    8 + len as usize
                ),
            ));
            break;
        }
        let payload = &rest[8..8 + len as usize];
        let computed = crc32(payload);
        if computed != stored_crc {
            check.findings.push(FsckFinding::new(
                &file,
                FsckCategory::CorruptFrame,
                Severity::Error,
                format!(
                    "frame at offset {at} fails its checksum (stored {stored_crc:08x}, computed {computed:08x}); {} byte(s) unreachable",
                    rest.len()
                ),
            ));
            break;
        }
        let Some(entry) = wal::decode_entry(payload) else {
            check.findings.push(FsckFinding::new(
                &file,
                FsckCategory::CorruptFrame,
                Severity::Error,
                format!(
                    "frame at offset {at} passes its checksum but its payload does not decode; {} byte(s) unreachable",
                    rest.len()
                ),
            ));
            break;
        };
        if let Some(&previous) = check.generations.last() {
            // Equal generations are a group-committed batch (several
            // frames, one fsync, one published generation); only an
            // actual jump is a gap.
            if entry.generation != previous && entry.generation != previous + 1 {
                check.findings.push(FsckFinding::new(
                    &file,
                    FsckCategory::GenerationGap,
                    Severity::Error,
                    format!(
                        "generation jumps from {previous} to {} at frame {}",
                        entry.generation, check.frames
                    ),
                ));
            }
        }
        check.generations.push(entry.generation);
        check.frames += 1;
        at += 8 + len as usize;
    }
    Ok(check)
}

/// The name of the write-ahead log file, as the store lays it out.
const WAL_FILE: &str = "wal.log";

/// Verifies a whole persistence directory: every snapshot, the WAL, and
/// the cross-file consistency a boot depends on.
///
/// `Err` only for I/O failures (unreadable directory or file); all
/// structural findings live in the report.  A missing directory is an
/// I/O error — fsck on a path that does not exist is a caller mistake,
/// not an empty-but-healthy store.
pub fn check_dir(dir: &Path) -> Result<FsckReport, PersistError> {
    let dir_label = dir.display().to_string();
    let mut snapshots = Vec::new();
    let mut findings = Vec::new();
    let mut wal_check = None;

    let entries =
        fs::read_dir(dir).map_err(|e| PersistError::io("list persistence directory", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io("list persistence directory", dir, e))?;
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == WAL_FILE {
            wal_check = Some(check_wal_file(&path)?);
        } else if snapshot::parse_generation(&name).is_some() {
            snapshots.push(check_snapshot_file(&path)?);
        } else if name.ends_with(".tmp") {
            findings.push(FsckFinding::new(
                &name,
                FsckCategory::StaleTempFile,
                Severity::Warning,
                "leftover temporary file from an interrupted atomic write".to_string(),
            ));
        } else {
            findings.push(FsckFinding::new(
                &name,
                FsckCategory::ForeignFile,
                Severity::Warning,
                "not a snapshot, write-ahead log or temporary file".to_string(),
            ));
        }
    }
    snapshots.sort_by_key(|s| s.name_generation);

    // The boot plan: restore the newest loadable snapshot (damaged ones
    // are skipped, as load_latest skips them), then replay WAL frames past
    // it.  Frames at or below the boot generation are redundant leftovers
    // of a crash between snapshot and compaction; past that the log must
    // continue exactly where the snapshot ends.
    let boot_generation = snapshots
        .iter()
        .filter(|s| s.loadable())
        .filter_map(|s| s.payload_generation)
        .max();
    let cold_start = boot_generation.is_none();
    let boot_generation = boot_generation.unwrap_or(0);

    let mut at = boot_generation;
    let mut replayable = 0u64;
    if let Some(wal) = &wal_check {
        for &generation in &wal.generations {
            if generation <= boot_generation {
                continue;
            }
            // A group-committed batch is a run of consecutive frames
            // sharing one generation; every frame of the run past the
            // boot generation replays into that one generation.
            if generation == at {
                replayable += 1;
                continue;
            }
            if generation != at + 1 {
                findings.push(FsckFinding::new(
                    &wal.file,
                    FsckCategory::GenerationDiscontinuity,
                    Severity::Error,
                    format!(
                        "WAL jumps from generation {at} to {generation}; a snapshot or log segment is missing"
                    ),
                ));
                break;
            }
            at = generation;
            replayable += 1;
        }
    }

    let all = snapshots
        .iter()
        .flat_map(|s| s.findings.iter())
        .chain(wal_check.iter().flat_map(|w| w.findings.iter()))
        .chain(findings.iter());
    let (mut errors, mut warnings) = (0, 0);
    for finding in all {
        match finding.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
    }

    Ok(FsckReport {
        directory: dir_label,
        snapshots,
        wal: wal_check,
        boot_generation,
        cold_start,
        replayable_frames: replayable,
        final_generation: at,
        findings,
        errors,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PersistExt;
    use asrs_aggregator::{CompositeAggregator, Selection};
    use asrs_core::AsrsEngine;
    use asrs_data::gen::UniformGenerator;
    use asrs_data::{AttrValue, Mutation, SpatialObject};
    use asrs_geo::Point;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("asrs-fsck-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn object(id: u64) -> SpatialObject {
        SpatialObject::new(
            id,
            Point::new(30.0 + id as f64 % 13.0, 70.0 - id as f64 % 9.0),
            vec![AttrValue::Cat(id as u32 % 4)],
        )
    }

    fn populated_dir(tag: &str, shards: usize, mutations: u64) -> PathBuf {
        let dir = temp_dir(tag);
        let ds = UniformGenerator::default().generate(150, 3);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let mut builder = AsrsEngine::builder(ds, agg).build_index(8, 8);
        if shards > 0 {
            builder = builder.shards(shards);
        }
        let p = builder.persist_dir(&dir).build().unwrap();
        for id in 0..mutations {
            p.engine().append(object(1000 + id)).unwrap();
        }
        dir
    }

    #[test]
    fn a_healthy_directory_is_clean() {
        for shards in [0usize, 3] {
            let dir = populated_dir(&format!("healthy{shards}"), shards, 4);
            let report = check_dir(&dir).unwrap();
            assert!(report.is_clean(), "{}", report.summary());
            assert!(!report.cold_start);
            assert_eq!(report.boot_generation, 0);
            assert_eq!(report.replayable_frames, 4);
            assert_eq!(report.final_generation, 4);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn a_flipped_snapshot_byte_is_a_checksum_mismatch() {
        let dir = populated_dir("snapcrc", 0, 0);
        let snap = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "snap"))
            .unwrap();
        let mut bytes = fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&snap, &bytes).unwrap();

        let check = check_snapshot_file(&snap).unwrap();
        assert!(!check.loadable());
        assert_eq!(check.findings.len(), 1);
        assert_eq!(check.findings[0].category, FsckCategory::ChecksumMismatch);

        // Directory-level: the only snapshot is unloadable, so boot is a
        // cold start and the report carries the error.
        let report = check_dir(&dir).unwrap();
        assert!(report.has_errors());
        assert!(report.cold_start);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_torn_wal_tail_is_a_warning_not_an_error() {
        let dir = populated_dir("torn", 0, 3);
        let wal_path = dir.join(WAL_FILE);
        let full = fs::metadata(&wal_path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);

        let check = check_wal_file(&wal_path).unwrap();
        assert_eq!(check.frames, 2, "the torn third frame does not count");
        assert!(check.torn_tail_bytes > 0);
        assert_eq!(check.findings.len(), 1);
        assert_eq!(check.findings[0].category, FsckCategory::TornTail);
        assert_eq!(check.findings[0].severity, Severity::Warning);

        let report = check_dir(&dir).unwrap();
        assert!(!report.has_errors());
        assert_eq!(report.warnings, 1);
        assert_eq!(report.replayable_frames, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_mid_log_bitflip_is_a_corrupt_frame() {
        let dir = populated_dir("bitrot", 0, 3);
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&wal_path).unwrap();
        let first_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let second_payload_at = 8 + 8 + first_len + 8;
        bytes[second_payload_at + 4] ^= 0x20;
        fs::write(&wal_path, &bytes).unwrap();

        let check = check_wal_file(&wal_path).unwrap();
        assert_eq!(check.frames, 1, "only the intact prefix counts");
        assert_eq!(check.findings.len(), 1);
        assert_eq!(check.findings[0].category, FsckCategory::CorruptFrame);
        assert_eq!(check.findings[0].severity, Severity::Error);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_committed_batches_are_clean() {
        // Two solo frames, then a run of four frames sharing one generation
        // (a group-committed batch fsync'd in one shot) — fsck must read
        // the run as one replayable generation, not a discontinuity.
        let dir = populated_dir("batch", 0, 2);
        {
            let (wal, _) = crate::Wal::open(&dir.join(WAL_FILE)).unwrap();
            let batch: Vec<Mutation> = (0..4u64)
                .map(|i| Mutation::Append {
                    object: object(2000 + i),
                })
                .collect();
            wal.append_batch(3, &batch).unwrap();
        }
        let report = check_dir(&dir).unwrap();
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(report.replayable_frames, 6, "all six frames replay");
        assert_eq!(
            report.final_generation, 3,
            "the four-frame run folds into one generation"
        );

        let check = check_wal_file(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(check.frames, 6);
        assert!(check.findings.is_empty(), "equal generations are no gap");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_generation_discontinuity_is_flagged_like_boot_would() {
        let dir = populated_dir("gap", 0, 1);
        // Append a far-future frame directly: generation 9 after 1.
        {
            let (wal, _) = crate::Wal::open(&dir.join(WAL_FILE)).unwrap();
            wal.append(9, &Mutation::Remove { id: 1000 }).unwrap();
        }
        let report = check_dir(&dir).unwrap();
        assert!(report.has_errors(), "{}", report.summary());
        let discontinuities: Vec<_> = report
            .all_findings()
            .into_iter()
            .filter(|f| {
                matches!(
                    f.category,
                    FsckCategory::GenerationGap | FsckCategory::GenerationDiscontinuity
                )
            })
            .collect();
        assert!(!discontinuities.is_empty());
        // Replay stops at the jump: only the contiguous frame counts.
        assert_eq!(report.replayable_frames, 1);
        assert_eq!(report.final_generation, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_and_temp_files_are_warnings() {
        let dir = populated_dir("foreign", 0, 0);
        fs::write(dir.join("notes.txt"), b"hello").unwrap();
        fs::write(dir.join("snapshot-00.snap.tmp"), b"half").unwrap();
        let report = check_dir(&dir).unwrap();
        assert!(!report.has_errors());
        assert_eq!(report.warnings, 2);
        let categories: Vec<_> = report.findings.iter().map(|f| f.category).collect();
        assert!(categories.contains(&FsckCategory::ForeignFile));
        assert!(categories.contains(&FsckCategory::StaleTempFile));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_never_modifies_the_directory() {
        let dir = populated_dir("readonly", 2, 2);
        // Tear the WAL tail; fsck must report it but leave it in place.
        let wal_path = dir.join(WAL_FILE);
        let full = fs::metadata(&wal_path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let before = fs::read(&wal_path).unwrap();
        let report = check_dir(&dir).unwrap();
        assert_eq!(report.warnings, 1);
        assert_eq!(fs::read(&wal_path).unwrap(), before, "fsck is read-only");
        let _ = fs::remove_dir_all(&dir);
    }
}
