//! `asrs-lint` — the workspace's dependency-free source lint.
//!
//! Three policies, chosen because each has silently regressed (or could)
//! without a structural gate:
//!
//! 1. **Panic freedom** in the serving stack: non-test code in
//!    `crates/core`, `crates/server` and `crates/persist` may not call
//!    `unwrap` / `expect` / `panic!` / `unreachable!` / `todo!` /
//!    `unimplemented!`.  A call that is genuinely unreachable or whose
//!    failure is unrecoverable-by-design carries a same-line or
//!    preceding-line `// lint:allow(reason)` escape; escapes are counted
//!    against a budget so the allowlist cannot quietly grow.
//! 2. **`#![forbid(unsafe_code)]`** in every first-party crate's entry
//!    point: the whole workspace is safe Rust and stays that way.
//! 3. **Exhaustive error mapping**: every `AsrsError` variant must appear
//!    in the server's `status_for` HTTP mapping, so a new engine error
//!    can never fall through to a default arm with the wrong status.
//! 4. **Lock-order discipline** (via `asrs-interlock`): every `Mutex` /
//!    `RwLock` acquisition in the serving stack must fit the committed
//!    acquisition-order manifest `crates/interlock/LOCK_ORDER.md` — no
//!    order cycles, no guards held across blocking I/O or `publish`
//!    without a budgeted `// interlock:allow(reason)`, no guard scopes
//!    outliving their last use.  `--update-lock-order` regenerates the
//!    manifest after a reviewed protocol change.
//!
//! No external dependencies (std plus the first-party `asrs-interlock`
//! analysis library), so `cargo run -p asrs-lint` works in the most
//! minimal CI image.  Exit code 0 when clean, 1 with findings.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose non-test code must be panic-free (rule 1).
const PANIC_FREE_CRATES: &[&str] = &["crates/core", "crates/server", "crates/persist"];

/// The forbidden call tokens of rule 1.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Ceiling on `lint:allow` escapes across the panic-free crates.  Raising
/// it is a reviewed change to this file, not a drive-by comment.
const ALLOW_BUDGET: usize = 32;

/// First-party crates whose entry point must carry
/// `#![forbid(unsafe_code)]` (rule 2).
const CRATES: &[&str] = &[
    "crates/geo",
    "crates/data",
    "crates/aggregator",
    "crates/core",
    "crates/baseline",
    "crates/persist",
    "crates/audit",
    "crates/interlock",
    "crates/lint",
    "crates/bench",
    "crates/server",
    "crates/suite",
];

#[derive(Debug)]
struct Finding {
    file: PathBuf,
    line: usize,
    message: String,
}

/// One source line split into code (string literals blanked out) and the
/// text of its trailing `//` comment, with block comments removed by the
/// caller's carried state.
fn split_line(line: &str, in_block_comment: &mut bool) -> (String, String) {
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if *in_block_comment {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                *in_block_comment = false;
            }
            continue;
        }
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                // Leave a placeholder so ".expect(" inside a string can
                // never line up across the blank.
                code.push('\u{0}');
            }
            '\'' => {
                // A char literal ('x' or '\x'); lifetimes ('a without a
                // closing quote) pass through untouched.
                let mut lookahead = chars.clone();
                let is_char_literal = match lookahead.next() {
                    Some('\\') => {
                        let _ = lookahead.next();
                        lookahead.next() == Some('\'')
                    }
                    Some(_) => lookahead.next() == Some('\''),
                    None => false,
                };
                if is_char_literal {
                    chars = lookahead;
                    code.push('\u{0}');
                } else {
                    code.push(c);
                }
            }
            '/' if chars.peek() == Some(&'/') => {
                comment = chars.collect::<String>();
                break;
            }
            '/' if chars.peek() == Some(&'*') => {
                chars.next();
                *in_block_comment = true;
            }
            _ => code.push(c),
        }
    }
    (code, comment)
}

fn net_braces(code: &str) -> i64 {
    let mut net = 0;
    for c in code.chars() {
        match c {
            '{' => net += 1,
            '}' => net -= 1,
            _ => {}
        }
    }
    net
}

/// Rule 1 over one file: forbidden calls outside `#[cfg(test)]` scopes,
/// honoring `lint:allow`.  Returns (findings, allows_used).
fn scan_panic_tokens(path: &Path, source: &str) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let mut allows = 0usize;
    let mut in_block_comment = false;
    let mut depth = 0i64;
    // Depth at which a #[cfg(test)] item opened; everything at or below
    // is test code.  Also set when the cfg attribute itself was seen but
    // its item has not opened a brace yet.
    let mut test_scope: Option<i64> = None;
    let mut cfg_test_pending = false;
    let mut previous_allow = false;

    for (number, raw) in source.lines().enumerate() {
        let (code, comment) = split_line(raw, &mut in_block_comment);
        let allow_here = comment.contains("lint:allow(");
        let trimmed = code.trim();

        if test_scope.is_none() && trimmed.contains("#[cfg(test)]") {
            cfg_test_pending = true;
        }
        let opens = code.contains('{');
        if cfg_test_pending && opens && test_scope.is_none() {
            test_scope = Some(depth);
            cfg_test_pending = false;
        }
        let in_test = test_scope.is_some() || cfg_test_pending || trimmed.contains("#[cfg(test)]");

        if !in_test {
            for token in PANIC_TOKENS {
                if !code.contains(token) {
                    continue;
                }
                if allow_here || previous_allow {
                    allows += 1;
                } else {
                    findings.push(Finding {
                        file: path.to_path_buf(),
                        line: number + 1,
                        message: format!(
                            "forbidden call `{}` without a `// lint:allow(reason)` escape",
                            token.trim_matches(|c| c == '.' || c == '(')
                        ),
                    });
                }
            }
        }

        depth += net_braces(&code);
        if let Some(at) = test_scope {
            if depth <= at {
                test_scope = None;
            }
        }
        // An allow on a line of its own covers the next line.
        previous_allow = allow_here && trimmed.is_empty();
    }
    (findings, allows)
}

/// Every `.rs` file under `dir`, recursively.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Rule 3: the variant names of `pub enum AsrsError`.
fn asrs_error_variants(source: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut in_enum = false;
    let mut depth = 0i64;
    let mut in_block_comment = false;
    for raw in source.lines() {
        let (code, _) = split_line(raw, &mut in_block_comment);
        if !in_enum {
            if code.contains("pub enum AsrsError") {
                in_enum = true;
                depth = net_braces(&code);
            }
            continue;
        }
        if depth == 1 {
            let trimmed = code.trim();
            if let Some(first) = trimmed.chars().next() {
                if first.is_ascii_uppercase() {
                    let name: String = trimmed
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric())
                        .collect();
                    if !name.is_empty() {
                        variants.push(name);
                    }
                }
            }
        }
        depth += net_braces(&code);
        if depth <= 0 {
            break;
        }
    }
    variants
}

/// Rule 3: the `AsrsError::…` variants matched inside `fn status_for`.
fn status_for_arms(source: &str) -> Vec<String> {
    let mut arms = Vec::new();
    let mut in_fn = false;
    let mut depth = 0i64;
    let mut in_block_comment = false;
    for raw in source.lines() {
        let (code, _) = split_line(raw, &mut in_block_comment);
        if !in_fn {
            if code.contains("fn status_for") {
                in_fn = true;
                depth = net_braces(&code);
            }
            continue;
        }
        let mut rest = code.as_str();
        while let Some(at) = rest.find("AsrsError::") {
            rest = &rest[at + "AsrsError::".len()..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if !name.is_empty() {
                arms.push(name);
            }
        }
        depth += net_braces(&code);
        if depth <= 0 {
            break;
        }
    }
    arms
}

fn run(root: &Path) -> Result<(Vec<Finding>, String), String> {
    let mut findings = Vec::new();
    let mut summary = String::new();

    // Rule 1: panic freedom.
    let mut total_allows = 0usize;
    let mut scanned = 0usize;
    for krate in PANIC_FREE_CRATES {
        let src = root.join(krate).join("src");
        let mut files = Vec::new();
        rust_files(&src, &mut files).map_err(|e| format!("walking {}: {e}", src.display()))?;
        for file in files {
            let source = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            // The deterministic-schedule checker only compiles under
            // `--features model` and asserts by design; panic freedom
            // is a serving-stack policy, not a test-harness one.
            if source
                .lines()
                .take(60)
                .any(|l| l.trim() == "#![cfg(feature = \"model\")]")
            {
                continue;
            }
            let (mut found, allows) = scan_panic_tokens(&file, &source);
            findings.append(&mut found);
            total_allows += allows;
            scanned += 1;
        }
    }
    let _ = writeln!(
        summary,
        "panic-freedom: {scanned} files scanned, {total_allows}/{ALLOW_BUDGET} allow escapes used"
    );
    if total_allows > ALLOW_BUDGET {
        findings.push(Finding {
            file: root.join("crates/lint/src/main.rs"),
            line: 0,
            message: format!(
                "lint:allow budget exceeded: {total_allows} escapes, budget {ALLOW_BUDGET}"
            ),
        });
    }

    // Rule 2: forbid(unsafe_code) in every crate entry point.
    let mut entries = 0usize;
    for krate in CRATES {
        let dir = root.join(krate).join("src");
        for entry in ["lib.rs", "main.rs"] {
            let path = dir.join(entry);
            if !path.exists() {
                continue;
            }
            entries += 1;
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            if !source.contains("#![forbid(unsafe_code)]") {
                findings.push(Finding {
                    file: path,
                    line: 1,
                    message: "crate entry point lacks #![forbid(unsafe_code)]".to_string(),
                });
            }
        }
    }
    let _ = writeln!(
        summary,
        "unsafe-freedom: {entries} crate entry points checked"
    );

    // Rule 3: exhaustive AsrsError -> HTTP status mapping.
    let error_rs = root.join("crates/core/src/error.rs");
    let server_rs = root.join("crates/server/src/server.rs");
    let variants = asrs_error_variants(
        &std::fs::read_to_string(&error_rs)
            .map_err(|e| format!("reading {}: {e}", error_rs.display()))?,
    );
    let arms = status_for_arms(
        &std::fs::read_to_string(&server_rs)
            .map_err(|e| format!("reading {}: {e}", server_rs.display()))?,
    );
    if variants.is_empty() {
        findings.push(Finding {
            file: error_rs.clone(),
            line: 0,
            message: "could not locate any AsrsError variants (lint parser drifted?)".to_string(),
        });
    }
    for variant in &variants {
        if !arms.iter().any(|a| a == variant) {
            findings.push(Finding {
                file: server_rs.clone(),
                line: 0,
                message: format!(
                    "AsrsError::{variant} is not mapped in status_for; every engine error needs an explicit HTTP status"
                ),
            });
        }
    }
    let _ = writeln!(
        summary,
        "error-mapping: {}/{} AsrsError variants mapped in status_for",
        variants
            .iter()
            .filter(|v| arms.iter().any(|a| &a == v))
            .count(),
        variants.len()
    );

    // Rule 4: lock-order discipline (asrs-interlock).
    let report = asrs_interlock::analyze(root)?;
    for finding in report.findings {
        findings.push(Finding {
            file: finding.file,
            line: finding.line,
            message: format!("[{}] {}", finding.category, finding.message),
        });
    }
    let _ = writeln!(
        summary,
        "lock-order: {} locks, {} sites, {} edges, {}/{} interlock:allow escapes used",
        report.lock_count,
        report.site_count,
        report.edge_count,
        report.allows_used,
        asrs_interlock::ALLOW_BUDGET
    );

    Ok((findings, summary))
}

fn main() -> ExitCode {
    // The binary runs from anywhere inside the workspace: walk up to the
    // directory holding the workspace Cargo.toml.
    let mut root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    while !root.join("crates/core/src/lib.rs").exists() {
        if !root.pop() {
            eprintln!("asrs-lint: not inside the ASRS workspace");
            return ExitCode::from(2);
        }
    }

    if std::env::args().any(|a| a == "--update-lock-order") {
        return match asrs_interlock::update_manifest(&root) {
            Ok(_) => {
                println!(
                    "asrs-lint: wrote {}",
                    root.join(asrs_interlock::MANIFEST_PATH).display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("asrs-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    match run(&root) {
        Ok((findings, summary)) => {
            print!("{summary}");
            if findings.is_empty() {
                println!("asrs-lint: clean");
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    println!("{}:{}: {}", f.file.display(), f.line, f.message);
                }
                println!("asrs-lint: {} finding(s)", findings.len());
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("asrs-lint: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_inside_strings_and_comments_do_not_count() {
        let source = r#"
fn f() {
    let s = "please .unwrap() me";
    // a comment mentioning .unwrap()
    let t = s.len();
}
"#;
        let (findings, allows) = scan_panic_tokens(Path::new("x.rs"), source);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(allows, 0);
    }

    #[test]
    fn real_unwraps_are_flagged_and_allows_are_counted() {
        let source = r#"
fn f(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("msg"); // lint:allow(justified)
    a + b
}
"#;
        let (findings, allows) = scan_panic_tokens(Path::new("x.rs"), source);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
        assert_eq!(allows, 1);
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let source = r#"
fn real() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert_eq!(super::real(), 1);
        let v: Option<u32> = Some(2);
        v.unwrap();
    }
}
"#;
        let (findings, _) = scan_panic_tokens(Path::new("x.rs"), source);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn enum_and_match_parsers_agree_on_a_miniature() {
        let error = r#"
pub enum AsrsError {
    /// doc
    EmptyDataset,
    DeadlineExceeded {
        budget: u64,
    },
    Query(String),
}
"#;
        let server = r#"
pub fn status_for(error: &AsrsError) -> (u16, &'static str) {
    match error {
        AsrsError::DeadlineExceeded { .. } => (408, "deadline-exceeded"),
        AsrsError::EmptyDataset => (400, "empty-dataset"),
        AsrsError::Query(_) => (400, "invalid-query"),
    }
}
"#;
        let variants = asrs_error_variants(error);
        assert_eq!(variants, vec!["EmptyDataset", "DeadlineExceeded", "Query"]);
        let arms = status_for_arms(server);
        for v in &variants {
            assert!(arms.contains(v), "{v} missing from {arms:?}");
        }
    }
}
