//! `asrs-interlock` — static lock-order / deadlock analysis for the
//! generational engine.
//!
//! The engine's concurrency protocol is small but load-bearing: an
//! epoch-swap `RwLock`, a mutation-serializing `Mutex`, sharded query
//! cache locks, the server worker queue and metrics locks, and the WAL
//! critical section.  This crate extracts that protocol *from the
//! source* with the same dependency-free, string/scope-aware scanning
//! style as `asrs-lint`, and checks it:
//!
//! * every `Mutex` / `RwLock` acquisition site in `crates/core`,
//!   `crates/server` and `crates/persist` is found and mapped to a
//!   stable lock identity (the [`LOCK_ALIASES`] table; unaliased locks
//!   get a `crate.file.symbol` identity so new locks surface in review);
//! * guard-nesting inside each function, plus a call-edge
//!   approximation across functions (a call is followed only when the
//!   callee name has exactly one non-test definition in the scanned
//!   crates, or a curated [`CALL_OVERRIDES`] entry disambiguates it),
//!   yields the acquisition-order edge graph;
//! * **(a)** cycles in that graph are reported as potential deadlocks;
//! * **(b)** guards held across blocking operations (`fsync`, socket
//!   or file I/O, channel `recv`, `mutate::publish`) are reported
//!   unless escaped with a budgeted `// interlock:allow(reason)`;
//! * **(c)** named guards whose scope extends past their last use and
//!   across a blocking operation or another acquisition — the shape of
//!   the PR 7 worker-queue bug — are reported as stale scopes
//!   (underscore-named guards like `_mutations_paused` declare an
//!   intentional hold and are exempt);
//! * the committed manifest `crates/interlock/LOCK_ORDER.md` is
//!   regenerated and diffed, so any new lock or edge is an explicit
//!   review event (`cargo run -p asrs-lint -- --update-lock-order`
//!   refreshes it).
//!
//! The dynamic counterpart lives in `asrs_core::sync::model`: a
//! deterministic-schedule explorer that runs the same protocol through
//! every interleaving under `--features model`, with the declared order
//! mirroring this crate's manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose sources participate in the lock graph.
pub const SCANNED_CRATES: &[&str] = &["crates/core", "crates/server", "crates/persist"];

/// Where the committed manifest lives, relative to the workspace root.
pub const MANIFEST_PATH: &str = "crates/interlock/LOCK_ORDER.md";

/// Ceiling on `interlock:allow` escapes.  Raising it is a reviewed
/// change to this file, not a drive-by comment.
pub const ALLOW_BUDGET: usize = 12;

/// Stable lock identities: (path suffix, receiver symbol, identity).
/// A lock acquired through a symbol not listed here gets the automatic
/// identity `crate.file.symbol`, which lands in the manifest and makes
/// the new lock an explicit review event.
pub const LOCK_ALIASES: &[(&str, &str, &str)] = &[
    ("core/src/engine.rs", "current", "engine.epoch"),
    ("core/src/engine.rs", "mutator", "engine.mutator"),
    ("core/src/mutate.rs", "mutator", "engine.mutator"),
    ("core/src/mutate.rs", "commit_queue", "engine.commit_queue"),
    ("core/src/audit.rs", "mutator", "engine.mutator"),
    ("core/src/engine.rs", "slots", "engine.batch_slot"),
    ("core/src/cache.rs", "shard_of", "cache.shard"),
    ("core/src/cache.rs", "s", "cache.shard"),
    ("core/src/cache.rs", "shard", "cache.shard"),
    ("core/src/cache.rs", "inflight", "cache.inflight"),
    ("core/src/cache.rs", "slot", "cache.flight_slot"),
    ("core/src/shard.rs", "slots", "shard.scatter_slot"),
    ("server/src/server.rs", "rx", "server.worker_queue"),
    ("server/src/metrics.rs", "search", "server.metrics"),
    ("persist/src/wal.rs", "inner", "persist.wal"),
    ("persist/src/store.rs", "counters", "store.counters"),
];

/// Call-resolution overrides: (caller path suffix, callee name, target).
/// `Some("name@path suffix")` pins an otherwise ambiguous name to one
/// definition; `None` suppresses resolution entirely.
pub const CALL_OVERRIDES: &[(&str, &str, Option<&str>)] = &[
    // `DurabilitySink::log_mutation` (impl in store.rs) forwards to
    // `Wal::append`; the bare name `append` is ambiguous with the
    // engine/mutate/handle append methods.
    (
        "persist/src/store.rs",
        "append",
        Some("append@crates/persist/src/wal.rs"),
    ),
    // `mutate::publish` calls the attached sink's `log_batch`; the name is
    // ambiguous between the trait default (engine.rs) and the real
    // batched-fsync impl (store.rs) — pin it to the impl so the
    // `engine.mutator → persist.wal` edge stays on the graph.
    (
        "core/src/mutate.rs",
        "log_batch",
        Some("log_batch@crates/persist/src/store.rs"),
    ),
    // `PersistHandle::log_batch` forwards to `Wal::append_batch`; the bare
    // name is ambiguous with the engine/mutate/handle batch-append
    // methods.
    (
        "persist/src/store.rs",
        "append_batch",
        Some("append_batch@crates/persist/src/wal.rs"),
    ),
];

/// Operations a guard must not be held across without a justification
/// (check (b)).  `publish(` is the engine's epoch-swap + WAL write path.
pub const BLOCKING_TOKENS: &[&str] = &[
    "sync_data(",
    "sync_all(",
    ".recv()",
    "recv_timeout(",
    ".accept()",
    "read_exact(",
    "read_to_end(",
    "read_line(",
    "write_all(",
    ".flush()",
    "rename(",
    "File::create(",
    "remove_file(",
    "publish(",
];

/// What a finding is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Check (a): a cycle in the acquisition-order graph.
    OrderCycle,
    /// Check (b): a guard held across a blocking operation.
    BlockingHold,
    /// Check (c): a guard whose scope outlives its last use across a
    /// blocking operation or another acquisition.
    StaleScope,
    /// The committed `LOCK_ORDER.md` does not match the regenerated
    /// graph.
    ManifestDrift,
    /// The `interlock:allow` budget is exceeded, or an allow suppresses
    /// nothing.
    AllowBudget,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::OrderCycle => "lock-order-cycle",
            Category::BlockingHold => "blocking-hold",
            Category::StaleScope => "stale-guard-scope",
            Category::ManifestDrift => "manifest-drift",
            Category::AllowBudget => "allow-budget",
        })
    }
}

/// One reported problem.
#[derive(Debug)]
pub struct Finding {
    /// File the finding is anchored to.
    pub file: PathBuf,
    /// 1-based line (0 for file-level findings).
    pub line: usize,
    /// Which check fired.
    pub category: Category,
    /// Human-readable description.
    pub message: String,
}

/// The result of one analysis run.
#[derive(Debug)]
pub struct Report {
    /// Everything the checks flagged, in file/line order.
    pub findings: Vec<Finding>,
    /// The regenerated manifest text (compare/commit as
    /// [`MANIFEST_PATH`]).
    pub manifest: String,
    /// Distinct lock identities.
    pub lock_count: usize,
    /// Acquisition sites found.
    pub site_count: usize,
    /// Acquisition-order edges.
    pub edge_count: usize,
    /// `interlock:allow` escapes that suppressed at least one finding.
    pub allows_used: usize,
}

// ---------------------------------------------------------------------------
// Source scanning (same string/comment discipline as asrs-lint)
// ---------------------------------------------------------------------------

/// One source line split into code (string/char literals blanked) and
/// its trailing `//` comment, with `/* */` state carried by the caller.
fn split_line(line: &str, in_block_comment: &mut bool) -> (String, String) {
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if *in_block_comment {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                *in_block_comment = false;
            }
            continue;
        }
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                code.push('\u{0}');
            }
            '\'' => {
                let mut lookahead = chars.clone();
                let is_char_literal = match lookahead.next() {
                    Some('\\') => {
                        let _ = lookahead.next();
                        lookahead.next() == Some('\'')
                    }
                    Some(_) => lookahead.next() == Some('\''),
                    None => false,
                };
                if is_char_literal {
                    chars = lookahead;
                    code.push('\u{0}');
                } else {
                    code.push(c);
                }
            }
            '/' if chars.peek() == Some(&'/') => {
                comment = chars.collect::<String>();
                break;
            }
            '/' if chars.peek() == Some(&'*') => {
                chars.next();
                *in_block_comment = true;
            }
            _ => code.push(c),
        }
    }
    (code, comment)
}

fn net_braces(code: &str) -> i64 {
    let mut net = 0;
    for c in code.chars() {
        match c {
            '{' => net += 1,
            '}' => net -= 1,
            _ => {}
        }
    }
    net
}

/// A logical statement: physical lines joined until a `;`, `{`, `}` or
/// `]` boundary, with scope bookkeeping.
#[derive(Debug)]
struct Logical {
    /// 1-based first physical line.
    start: usize,
    /// Joined code text (strings blanked), newlines become spaces.
    text: String,
    depth_before: i64,
    depth_after: i64,
    in_test: bool,
    /// An `interlock:allow(...)` comment on these lines or on the
    /// directly preceding comment-only lines; the extracted reason.
    allow: Option<String>,
}

/// Splits a file into logical statements.
fn logical_lines(source: &str) -> Vec<Logical> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    let mut depth = 0i64;
    let mut test_scope: Option<i64> = None;
    let mut cfg_test_pending = false;
    let mut pending_allow: Option<String> = None;

    let mut buf = String::new();
    let mut buf_start = 0usize;
    let mut buf_depth = 0i64;
    let mut buf_allow: Option<String> = None;

    for (number, raw) in source.lines().enumerate() {
        let (code, comment) = split_line(raw, &mut in_block_comment);
        let allow_here = extract_allow(&comment);
        let trimmed = code.trim();

        if trimmed.is_empty() {
            // Comment-only (or blank) line: a standalone allow carries
            // over to the next logical statement.
            if allow_here.is_some() {
                pending_allow = allow_here;
            } else if !comment.is_empty() || raw.trim().is_empty() {
                // keep any earlier pending allow across doc runs
            }
            continue;
        }

        if test_scope.is_none() && trimmed.contains("#[cfg(test)]") {
            cfg_test_pending = true;
        }
        if cfg_test_pending && code.contains('{') && test_scope.is_none() {
            test_scope = Some(depth);
            cfg_test_pending = false;
        }
        let in_test = test_scope.is_some() || cfg_test_pending;

        if buf.is_empty() {
            buf_start = number + 1;
            buf_depth = depth;
            buf_allow = pending_allow.take();
        }
        if buf_allow.is_none() {
            buf_allow = allow_here;
        } else if allow_here.is_some() {
            // Two allows on one statement: keep the first.
        }
        if !buf.is_empty() {
            buf.push(' ');
        }
        buf.push_str(trimmed);
        depth += net_braces(&code);
        if let Some(at) = test_scope {
            if depth <= at {
                test_scope = None;
            }
        }

        let last = trimmed.chars().last().unwrap_or(' ');
        let attr_end = last == ']' && buf.starts_with('#');
        if matches!(last, ';' | '{' | '}') || attr_end {
            out.push(Logical {
                start: buf_start,
                text: std::mem::take(&mut buf),
                depth_before: buf_depth,
                depth_after: depth,
                in_test,
                allow: buf_allow.take(),
            });
        }
    }
    if !buf.is_empty() {
        out.push(Logical {
            start: buf_start,
            text: buf,
            depth_before: buf_depth,
            depth_after: depth,
            in_test: test_scope.is_some(),
            allow: buf_allow,
        });
    }
    out
}

fn extract_allow(comment: &str) -> Option<String> {
    let at = comment.find("interlock:allow(")?;
    let rest = &comment[at + "interlock:allow(".len()..];
    let end = rest.rfind(')').unwrap_or(rest.len());
    Some(rest[..end].to_string())
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The receiver symbol of a lock call: scanning backwards from the
/// token, skip one balanced `(...)` / `[...]` group, then read the
/// identifier (`self.slots[i].lock()` → `slots`,
/// `self.shard_of(&key).lock()` → `shard_of`).
fn receiver_symbol(text: &str, token_at: usize) -> Option<String> {
    let bytes = text.as_bytes();
    let mut i = token_at;
    loop {
        while i > 0 && (bytes[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        match bytes[i - 1] as char {
            ')' | ']' => {
                let close = bytes[i - 1] as char;
                let open = if close == ')' { '(' } else { '[' };
                let mut depth = 0i64;
                while i > 0 {
                    let c = bytes[i - 1] as char;
                    if c == close {
                        depth += 1;
                    } else if c == open {
                        depth -= 1;
                        if depth == 0 {
                            i -= 1;
                            break;
                        }
                    }
                    i -= 1;
                }
            }
            c if is_ident_char(c) => {
                let end = i;
                while i > 0 && is_ident_char(bytes[i - 1] as char) {
                    i -= 1;
                }
                let symbol = &text[i..end];
                if symbol.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    return None;
                }
                return Some(symbol.to_string());
            }
            _ => return None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockKind {
    Mutex,
    RwLock,
}

#[derive(Debug, Clone)]
struct Acquisition {
    /// Byte offset of the token within the logical text.
    offset: usize,
    kind: LockKind,
    /// `false` for `.read()`.
    write: bool,
    symbol: Option<String>,
}

/// Lock-acquisition tokens within one logical statement.
fn find_acquisitions(text: &str) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for (token, kind, write) in [
        (".lock()", LockKind::Mutex, true),
        (".read()", LockKind::RwLock, false),
        (".write()", LockKind::RwLock, true),
    ] {
        let mut from = 0;
        while let Some(at) = text[from..].find(token) {
            let offset = from + at;
            out.push(Acquisition {
                offset,
                kind,
                write,
                symbol: receiver_symbol(text, offset),
            });
            from = offset + token.len();
        }
    }
    out.sort_by_key(|a| a.offset);
    out
}

/// Call names within one logical statement: identifiers directly
/// followed by `(`, excluding macros, definitions and control keywords.
fn call_names(text: &str) -> Vec<String> {
    // `drop` is std::mem::drop or a Drop impl, never a direct callee.
    const KEYWORDS: &[&str] = &[
        "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "as", "else", "drop",
    ];
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if is_ident_char(c) {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
            let name = &text[start..i];
            let next = bytes.get(i).map(|&b| b as char);
            let prev = start.checked_sub(1).map(|p| bytes[p] as char);
            if next == Some('(')
                && prev != Some('!')
                && !KEYWORDS.contains(&name)
                && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                // Skip `fn name(` definitions and atomic operations
                // (`.load(Ordering::..)` etc. would otherwise resolve
                // against same-named engine methods).
                let before = text[..start].trim_end();
                if !before.ends_with("fn") && !paren_args(text, i).contains("Ordering") {
                    out.push(name.to_string());
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

/// The balanced `(...)` argument slice starting at `open` (which must
/// point at the `(`); the rest of the text if unbalanced.
fn paren_args(text: &str, open: usize) -> &str {
    let bytes = text.as_bytes();
    let mut depth = 0i64;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b as char {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return &text[open..=i];
                }
            }
            _ => {}
        }
    }
    &text[open..]
}

/// The name of a function defined by this logical statement, if it
/// opens a body (`fn name(...) ... {`).
fn fn_definition(text: &str) -> Option<String> {
    if !text.ends_with('{') {
        return None;
    }
    let at = find_word(text, "fn")?;
    let rest = text[at + 2..].trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Position of `word` in `text` with identifier boundaries on both
/// sides.
fn find_word(text: &str, word: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(at) = text[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_char(bytes[start - 1] as char);
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

fn blocking_tokens_in(text: &str) -> Vec<&'static str> {
    BLOCKING_TOKENS
        .iter()
        .copied()
        .filter(|token| {
            let mut from = 0;
            while let Some(at) = text[from..].find(token) {
                let start = from + at;
                // `publish(` must not match the `fn publish(` definition
                // or a path like `republish(`.
                let head = token.trim_start_matches('.');
                let tok_start = start + (token.len() - head.len());
                let bytes = text.as_bytes();
                let before_ok = tok_start == 0 || !is_ident_char(bytes[tok_start - 1] as char);
                let defines = text[..tok_start].trim_end().ends_with("fn");
                if before_ok && !defines {
                    return true;
                }
                from = start + token.len();
            }
            false
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The analysis
// ---------------------------------------------------------------------------

/// Every `.rs` file under `dir`, recursively, sorted.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// A parsed source file.
struct FileScan {
    path: PathBuf,
    rel: String,
    logicals: Vec<Logical>,
}

#[derive(Debug, Default, Clone)]
struct FnEffects {
    /// Lock identities acquired directly in the body.
    acquires: BTreeSet<String>,
    /// A direct blocking token in the body, if any.
    blocking: Option<&'static str>,
    /// Callee names appearing in the body (with the caller's file).
    calls: Vec<String>,
}

#[derive(Debug, Clone)]
enum GuardShape {
    /// `let name = x.lock().expect(...);` — scoped to the enclosing
    /// block (or `drop(name)`).
    Named { name: String },
    /// `if let Ok(g) = x.lock() {` / `match x.lock() {` — scoped to the
    /// block the statement opens.
    Block,
    /// Guard lives only within its own statement.
    Statement,
}

#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    shape: GuardShape,
    /// Index range of logical statements the guard covers (inclusive).
    first: usize,
    last: usize,
    /// Index of the last logical statement using the binding (Named
    /// only).
    last_use: usize,
    /// Reason of an `interlock:allow` attached to the acquisition.
    allow: Option<String>,
    /// Underscore-named guards declare an intentional hold.
    intentional: bool,
    line: usize,
}

/// After the lock token, is the rest of the statement just poison
/// handling (so the binding is the guard itself)?
fn binds_guard(text: &str, token_end: usize) -> bool {
    let mut rest = text[token_end..].trim_start();
    loop {
        if let Some(r) = rest.strip_prefix(';') {
            return r.trim().is_empty();
        }
        let Some(stripped) = rest.strip_prefix('.') else {
            return false;
        };
        let name: String = stripped.chars().take_while(|&c| is_ident_char(c)).collect();
        if !matches!(name.as_str(), "unwrap" | "expect" | "unwrap_or_else") {
            return false;
        }
        let after = &stripped[name.len()..];
        let Some(args_start) = after.strip_prefix('(') else {
            return false;
        };
        // Skip the balanced argument list.
        let mut depth = 1i64;
        let mut consumed = 0;
        for c in args_start.chars() {
            consumed += c.len_utf8();
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if depth != 0 {
            return false;
        }
        rest = args_start[consumed..].trim_start();
    }
}

/// The `let` binding name of a statement, when the statement is a plain
/// `let [mut] name = ...` (not `let Ok(...)`).
fn let_binding(text: &str) -> Option<String> {
    let at = find_word(text, "let")?;
    if at != 0 {
        return None;
    }
    let mut rest = text[at + 3..].trim_start();
    if let Some(r) = rest.strip_prefix("mut ") {
        rest = r.trim_start();
    }
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    let after = rest[name.len()..].trim_start();
    if name.is_empty() || !after.starts_with('=') {
        return None;
    }
    Some(name)
}

/// Whether the `let <name> = match <recv>.lock() { ... }` opened at
/// `idx` hands the mutex guard through to its binding: some arm is a
/// bare `pat => pat` pass-through or recovers a poisoned guard with
/// `into_inner()`.  Arms that map the guard to a derived value mean the
/// binding holds data, not the lock.
fn match_yields_guard(logicals: &[Logical], idx: usize, open_depth: i64) -> bool {
    for later in logicals.iter().skip(idx + 1) {
        if later.depth_before <= open_depth {
            break;
        }
        if later.text.contains("into_inner()") {
            return true;
        }
        // A bare pass-through arm — `Ok(name) => name,` — anywhere in
        // the (joined) arm text: the identifier after `=>` is exactly
        // the one the pattern before it bound.
        let mut rest = later.text.as_str();
        while let Some(at) = rest.find("=>") {
            let pattern = &rest[..at];
            let pattern_tail = pattern.rsplit(',').next().unwrap_or(pattern);
            let after = rest[at + 2..].trim_start();
            let name: String = after.chars().take_while(|&c| is_ident_char(c)).collect();
            let terminated = matches!(
                after[name.len()..].trim_start().chars().next(),
                None | Some(',') | Some('}')
            );
            if !name.is_empty()
                && !matches!(name.as_str(), "return" | "break" | "continue")
                && terminated
                && find_word(pattern_tail, &name).is_some()
            {
                return true;
            }
            rest = &rest[at + 2..];
        }
        if later.depth_after <= open_depth {
            break;
        }
    }
    false
}

struct Analysis<'a> {
    _phantom: std::marker::PhantomData<&'a ()>,
    files: Vec<FileScan>,
    /// `name@rel-path` → effects, for call resolution.
    fns: BTreeMap<String, FnEffects>,
    /// name → definition keys (non-test, body-bearing).
    by_name: BTreeMap<String, Vec<String>>,
}

/// Transitively resolved effects of a callee.
#[derive(Debug, Default, Clone)]
struct Resolved {
    acquires: BTreeSet<String>,
    /// A representative blocking description, if the callee (or
    /// anything it calls) blocks.
    blocking: Option<String>,
}

impl<'a> Analysis<'a> {
    fn lock_identity(&self, file_rel: &str, acq: &Acquisition) -> String {
        if let Some(symbol) = &acq.symbol {
            for (suffix, sym, id) in LOCK_ALIASES {
                if file_rel.ends_with(suffix) && sym == symbol {
                    return (*id).to_string();
                }
            }
            let parts: Vec<&str> = file_rel.split('/').collect();
            let krate = parts
                .iter()
                .position(|p| *p == "crates")
                .and_then(|i| parts.get(i + 1))
                .copied()
                .unwrap_or("unknown");
            let stem = parts
                .last()
                .and_then(|f| f.strip_suffix(".rs"))
                .unwrap_or("unknown");
            format!("{krate}.{stem}.{symbol}")
        } else {
            format!("{file_rel}.anonymous")
        }
    }

    fn resolve_call(&self, caller_rel: &str, name: &str) -> Option<&str> {
        for (suffix, callee, target) in CALL_OVERRIDES {
            if caller_rel.ends_with(suffix) && callee == &name {
                return target.as_deref();
            }
        }
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([single]) => Some(single),
            _ => None,
        }
    }

    /// Transitive effects of `key`, cycle-safe.
    fn effects_of(
        &self,
        key: &str,
        memo: &mut BTreeMap<String, Resolved>,
        stack: &mut Vec<String>,
    ) -> Resolved {
        if let Some(done) = memo.get(key) {
            return done.clone();
        }
        if stack.iter().any(|k| k == key) {
            return Resolved::default();
        }
        let Some(direct) = self.fns.get(key) else {
            return Resolved::default();
        };
        stack.push(key.to_string());
        let mut resolved = Resolved {
            acquires: direct.acquires.clone(),
            blocking: direct
                .blocking
                .map(|t| format!("`{}` in {}", t.trim_matches(|c| c == '.' || c == '('), key)),
        };
        let caller_rel = key.split('@').nth(1).unwrap_or("");
        for call in &direct.calls {
            if let Some(target) = self.resolve_call(caller_rel, call) {
                let target = target.to_string();
                let sub = self.effects_of(&target, memo, stack);
                resolved.acquires.extend(sub.acquires.iter().cloned());
                if resolved.blocking.is_none() {
                    resolved.blocking = sub.blocking.map(|b| format!("{b} via {call}"));
                }
            }
        }
        stack.pop();
        memo.insert(key.to_string(), resolved.clone());
        resolved
    }
}

/// Lock bookkeeping accumulated across files.
#[derive(Default)]
struct Graph {
    /// identity → (kind, site count, files)
    locks: BTreeMap<String, (LockKind, usize, BTreeSet<String>)>,
    /// (from, to) → files contributing the edge
    edges: BTreeMap<(String, String), BTreeSet<String>>,
    /// (lock, file, reason) of used blocking allows
    allows: BTreeSet<(String, String, String)>,
}

/// Runs the full analysis over `root`.
pub fn analyze(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    for krate in SCANNED_CRATES {
        let src = root.join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        rust_files(&src, &mut paths).map_err(|e| format!("walking {}: {e}", src.display()))?;
        for path in paths {
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            // The model scheduler is instrumentation, not protocol: its
            // locks exist to *run* the checker, so it is out of scope
            // for the static pass (the dynamic checker covers it).
            if source
                .lines()
                .take(60)
                .any(|l| l.trim() == "#![cfg(feature = \"model\")]")
            {
                continue;
            }
            let rel_path = rel(root, &path);
            files.push(FileScan {
                path,
                rel: rel_path,
                logicals: logical_lines(&source),
            });
        }
    }

    // Pass 1: the function-effect table.
    let mut analysis = Analysis {
        _phantom: std::marker::PhantomData,
        files,
        fns: BTreeMap::new(),
        by_name: BTreeMap::new(),
    };
    for file in &analysis.files {
        let mut stack: Vec<(String, i64)> = Vec::new();
        for logical in &file.logicals {
            while let Some((_, depth)) = stack.last() {
                if logical.depth_after <= *depth && logical.depth_before <= *depth {
                    stack.pop();
                } else {
                    break;
                }
            }
            if logical.in_test {
                continue;
            }
            if let Some(name) = fn_definition(&logical.text) {
                let key = format!("{name}@{}", file.rel);
                stack.push((key.clone(), logical.depth_before));
                analysis.fns.entry(key.clone()).or_default();
                analysis.by_name.entry(name).or_default().push(key);
                continue;
            }
            let Some((key, _)) = stack.last() else {
                continue;
            };
            let key = key.clone();
            let acquired: Vec<String> = find_acquisitions(&logical.text)
                .iter()
                .map(|acq| analysis.lock_identity(&file.rel, acq))
                .collect();
            let effects = analysis.fns.entry(key).or_default();
            effects.acquires.extend(acquired);
            if effects.blocking.is_none() {
                effects.blocking = blocking_tokens_in(&logical.text).first().copied();
            }
            effects.calls.extend(call_names(&logical.text));
        }
    }

    // Pass 2: guard extents, edges and findings per file.
    let mut graph = Graph::default();
    let mut findings = Vec::new();
    let mut site_count = 0usize;
    let mut used_allows: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut all_allows: Vec<(usize, usize)> = Vec::new();
    let mut memo = BTreeMap::new();

    for (file_idx, file) in analysis.files.iter().enumerate() {
        for (idx, logical) in file.logicals.iter().enumerate() {
            if logical.allow.is_some() && !logical.in_test {
                all_allows.push((file_idx, idx));
            }
        }
        let guards = collect_guards(&analysis, file_idx);
        for guard in &guards {
            site_count += 1;
            let kind = if guard.lock.starts_with("engine.epoch") {
                LockKind::RwLock
            } else {
                LockKind::Mutex
            };
            let entry = graph
                .locks
                .entry(guard.lock.clone())
                .or_insert((kind, 0, BTreeSet::new()));
            entry.1 += 1;
            entry.2.insert(file.rel.clone());
        }
        // Record the real kinds from the acquisition tokens.
        for logical in &file.logicals {
            if logical.in_test {
                continue;
            }
            for acq in find_acquisitions(&logical.text) {
                let id = analysis.lock_identity(&file.rel, &acq);
                if let Some(entry) = graph.locks.get_mut(&id) {
                    if acq.kind == LockKind::RwLock {
                        entry.0 = LockKind::RwLock;
                    }
                }
            }
        }

        analyze_guards(
            &analysis,
            file_idx,
            &guards,
            &mut graph,
            &mut findings,
            &mut used_allows,
            &mut memo,
        );
    }

    // Check (a): cycles over the whole graph.
    findings.extend(find_cycles(&graph, root));

    // Unused allows decay into findings so the escape list cannot rot.
    for (file_idx, idx) in &all_allows {
        if !used_allows.contains(&(*file_idx, *idx)) {
            let file = &analysis.files[*file_idx];
            findings.push(Finding {
                file: file.path.clone(),
                line: file.logicals[*idx].start,
                category: Category::AllowBudget,
                message: "interlock:allow escape suppresses nothing; remove it".to_string(),
            });
        }
    }
    let allows_used = used_allows.len();
    if allows_used > ALLOW_BUDGET {
        findings.push(Finding {
            file: root.join(MANIFEST_PATH),
            line: 0,
            category: Category::AllowBudget,
            message: format!(
                "interlock:allow budget exceeded: {allows_used} escapes, budget {ALLOW_BUDGET}"
            ),
        });
    }

    let manifest = render_manifest(&graph);

    // Manifest drift: only checked inside the real workspace (fixture
    // trees have no crates/interlock).
    let manifest_file = root.join(MANIFEST_PATH);
    if root.join("crates/interlock").is_dir() {
        match std::fs::read_to_string(&manifest_file) {
            Ok(committed) if committed == manifest => {}
            Ok(_) => findings.push(Finding {
                file: manifest_file,
                line: 0,
                category: Category::ManifestDrift,
                message: "lock graph changed; review the diff and regenerate with `cargo run -p asrs-lint -- --update-lock-order`".to_string(),
            }),
            Err(_) => findings.push(Finding {
                file: manifest_file,
                line: 0,
                category: Category::ManifestDrift,
                message: "LOCK_ORDER.md missing; generate it with `cargo run -p asrs-lint -- --update-lock-order`".to_string(),
            }),
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Report {
        findings,
        manifest,
        lock_count: graph.locks.len(),
        site_count,
        edge_count: graph.edges.len(),
        allows_used,
    })
}

/// Guard extents of one file.
fn collect_guards(analysis: &Analysis<'_>, file_idx: usize) -> Vec<Guard> {
    let file = &analysis.files[file_idx];
    let mut guards = Vec::new();
    for (idx, logical) in file.logicals.iter().enumerate() {
        if logical.in_test {
            continue;
        }
        for acq in find_acquisitions(&logical.text) {
            let lock = analysis.lock_identity(&file.rel, &acq);
            let token_len = if acq.write && acq.kind == LockKind::RwLock {
                ".write()".len()
            } else if acq.kind == LockKind::RwLock {
                ".read()".len()
            } else {
                ".lock()".len()
            };
            let opens_block = logical.text.ends_with('{');
            let binding = let_binding(&logical.text);
            let shape = if let (Some(name), false) = (&binding, opens_block) {
                if binds_guard(&logical.text, acq.offset + token_len) {
                    GuardShape::Named { name: name.clone() }
                } else {
                    GuardShape::Statement
                }
            } else if opens_block {
                // `let guard = match recv.lock() { ... }`: when an arm
                // hands the guard through (a bare `pat => pat` arm or a
                // poison-recovering `into_inner()`), the binding IS the
                // guard and outlives the match — a Block extent would end
                // it at the match close and hide every later acquisition
                // (the shape of the cache's in-flight slot protocol).
                // Arms that reduce the guard to a value (e.g.
                // `Ok(guard) => guard.recv()`) stay Block.
                match &binding {
                    Some(name)
                        if find_word(&logical.text, "match").is_some()
                            && match_yields_guard(
                                &file.logicals,
                                idx,
                                logical.depth_before,
                            ) =>
                    {
                        GuardShape::Named { name: name.clone() }
                    }
                    _ => GuardShape::Block,
                }
            } else {
                GuardShape::Statement
            };

            // Extent.
            let (first, last) = match shape {
                GuardShape::Statement => (idx, idx),
                GuardShape::Block | GuardShape::Named { .. } => {
                    let close_depth = match shape {
                        // A block guard dies when the block it opened
                        // closes; a named guard when its enclosing
                        // block closes.
                        GuardShape::Block => logical.depth_before,
                        _ => logical.depth_before - 1,
                    };
                    let mut end = idx;
                    for (j, later) in file.logicals.iter().enumerate().skip(idx + 1) {
                        end = j;
                        if let GuardShape::Named { name } = &shape {
                            // A `drop(guard)` ends the extent only at the
                            // declaration's own nesting depth: inside a
                            // nested branch it precedes an early exit and
                            // the guard stays held on the fallthrough
                            // path.
                            if later.text.contains(&format!("drop({name})"))
                                && later.depth_before <= logical.depth_before
                            {
                                break;
                            }
                        }
                        if later.depth_after <= close_depth {
                            break;
                        }
                    }
                    (idx, end)
                }
            };
            let (last_use, intentional, name) = match &shape {
                GuardShape::Named { name } => {
                    let mut last_use = idx;
                    for j in (idx + 1)..=last {
                        if find_word(&file.logicals[j].text, name).is_some() {
                            last_use = j;
                        }
                    }
                    (last_use, name.starts_with('_'), Some(name.clone()))
                }
                _ => (last, true, None),
            };
            let _ = name;
            guards.push(Guard {
                lock,
                shape,
                first,
                last,
                last_use,
                allow: logical.allow.clone(),
                intentional,
                line: logical.start,
            });
        }
    }
    guards
}

/// Edges + checks (b) and (c) for one file's guards.
#[allow(clippy::too_many_arguments)]
fn analyze_guards(
    analysis: &Analysis<'_>,
    file_idx: usize,
    guards: &[Guard],
    graph: &mut Graph,
    findings: &mut Vec<Finding>,
    used_allows: &mut BTreeSet<(usize, usize)>,
    memo: &mut BTreeMap<String, Resolved>,
) {
    let file = &analysis.files[file_idx];
    for guard in guards {
        let mut flagged_lines: BTreeSet<usize> = BTreeSet::new();
        let mut stale: Vec<String> = Vec::new();
        for j in guard.first..=guard.last {
            let logical = &file.logicals[j];
            let own_statement = j == guard.first;

            // Nested direct acquisitions -> edges.
            for acq in find_acquisitions(&logical.text) {
                if own_statement {
                    continue;
                }
                // A self-edge (re-acquiring the held lock) is recorded
                // too: find_cycles reports it as a self-deadlock.
                let to = analysis.lock_identity(&file.rel, &acq);
                graph
                    .edges
                    .entry((guard.lock.clone(), to))
                    .or_default()
                    .insert(file.rel.clone());
                if j > guard.last_use && !guard.intentional {
                    stale.push(format!("acquires another lock at line {}", logical.start));
                }
            }

            // Callee effects -> edges + transitive blocking.
            let mut transitive_blocking: Option<String> = None;
            for call in call_names(&logical.text) {
                if let Some(target) = analysis.resolve_call(&file.rel, &call) {
                    let target = target.to_string();
                    let mut stack = Vec::new();
                    let resolved = analysis.effects_of(&target, memo, &mut stack);
                    for to in &resolved.acquires {
                        if to != &guard.lock {
                            graph
                                .edges
                                .entry((guard.lock.clone(), to.clone()))
                                .or_default()
                                .insert(file.rel.clone());
                        }
                    }
                    if transitive_blocking.is_none() {
                        transitive_blocking = resolved.blocking.clone();
                    }
                }
            }

            // Check (b)/(c): blocking under the guard.
            let direct = blocking_tokens_in(&logical.text);
            let blocking_desc = direct
                .first()
                .map(|t| format!("`{}`", t.trim_matches(|c| c == '.' || c == '(')))
                .or(transitive_blocking);
            let Some(desc) = blocking_desc else {
                continue;
            };
            if own_statement && direct.is_empty() {
                continue;
            }
            if j > guard.last_use && !guard.intentional {
                stale.push(format!("blocks on {desc} at line {}", logical.start));
                continue;
            }
            if let Some(reason) = &guard.allow {
                used_allows.insert((file_idx, guard.first));
                graph
                    .allows
                    .insert((guard.lock.clone(), file.rel.clone(), reason.clone()));
                continue;
            }
            if let Some(line_reason) = &logical.allow {
                used_allows.insert((file_idx, j));
                graph
                    .allows
                    .insert((guard.lock.clone(), file.rel.clone(), line_reason.clone()));
                continue;
            }
            if flagged_lines.insert(logical.start) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: logical.start,
                    category: Category::BlockingHold,
                    message: format!(
                        "guard on `{}` (line {}) held across blocking {desc}; shrink the guard or justify with `// interlock:allow(reason)`",
                        guard.lock, guard.line
                    ),
                });
            }
        }
        if !stale.is_empty() && guard.allow.is_none() {
            let shape_name = match &guard.shape {
                GuardShape::Named { name } => name.clone(),
                _ => guard.lock.clone(),
            };
            findings.push(Finding {
                file: file.path.clone(),
                line: guard.line,
                category: Category::StaleScope,
                message: format!(
                    "guard `{shape_name}` on `{}` outlives its last use (line {}) and then {}; drop it at last use",
                    guard.lock,
                    file.logicals[guard.last_use].start,
                    stale.join("; ")
                ),
            });
        } else if !stale.is_empty() {
            used_allows.insert((file_idx, guard.first));
        }
    }
}

/// Check (a): cycles in the acquisition-order graph.
fn find_cycles(graph: &Graph, root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in graph.edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for (from, to) in graph.edges.keys() {
        if from == to {
            let cycle = vec![from.clone()];
            if reported.insert(cycle) {
                findings.push(Finding {
                    file: root.join(MANIFEST_PATH),
                    line: 0,
                    category: Category::OrderCycle,
                    message: format!(
                        "lock `{from}` is re-acquired while already held ({}): self-deadlock risk",
                        graph.edges[&(from.clone(), to.clone())]
                            .iter()
                            .cloned()
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
            continue;
        }
        // BFS: path to -> ... -> from closes a cycle through this edge.
        if let Some(path) = bfs_path(&adj, to, from) {
            let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
            // Canonical rotation so each cycle reports once.
            let min_at = cycle
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.cmp(b))
                .map(|(i, _)| i)
                .unwrap_or(0);
            cycle.rotate_left(min_at);
            if reported.insert(cycle.clone()) {
                let mut display = cycle.clone();
                display.push(display[0].clone());
                findings.push(Finding {
                    file: root.join(MANIFEST_PATH),
                    line: 0,
                    category: Category::OrderCycle,
                    message: format!(
                        "acquisition-order cycle: {} (potential deadlock; break the cycle or re-order the acquisitions)",
                        display.join(" -> ")
                    ),
                });
            }
        }
    }
    findings
}

fn bfs_path<'g>(
    adj: &BTreeMap<&'g str, Vec<&'g str>>,
    from: &'g str,
    to: &'g str,
) -> Option<Vec<&'g str>> {
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(vec![from]);
    let mut seen = BTreeSet::new();
    seen.insert(from);
    while let Some(path) = queue.pop_front() {
        let last = *path.last()?;
        if last == to {
            return Some(path);
        }
        for next in adj.get(last).into_iter().flatten() {
            if seen.insert(next) {
                let mut p = path.clone();
                p.push(next);
                queue.push_back(p);
            }
        }
    }
    None
}

/// Renders the committed manifest.
fn render_manifest(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str("# Lock-order manifest\n\n");
    out.push_str(
        "Generated by `cargo run -p asrs-lint -- --update-lock-order`; checked by\n\
         `cargo run -p asrs-lint` (and CI) against the scanned sources.  Any diff\n\
         here is a lock-graph change and deserves the same review as an API\n\
         change.  The dynamic half of this contract is enforced by\n\
         `cargo test -p asrs-core --features model --test model`, whose declared\n\
         order mirrors the edges below.\n\n",
    );
    out.push_str("## Locks\n\n| lock | kind | sites | files |\n|---|---|---|---|\n");
    for (id, (kind, sites, files)) in &graph.locks {
        let kind = match kind {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
        };
        let files = files.iter().cloned().collect::<Vec<_>>().join(", ");
        out.push_str(&format!("| {id} | {kind} | {sites} | {files} |\n"));
    }
    out.push_str(
        "\n## Acquisition-order edges\n\n\
         While holding the lock on the left, the engine may acquire the lock on\n\
         the right.  The graph must stay a DAG.\n\n\
         | held | then acquired | via |\n|---|---|---|\n",
    );
    for ((from, to), files) in &graph.edges {
        let files = files.iter().cloned().collect::<Vec<_>>().join(", ");
        out.push_str(&format!("| {from} | {to} | {files} |\n"));
    }
    out.push_str(
        "\n## Justified blocking holds\n\n\
         Guards deliberately held across blocking operations, each carrying an\n\
         `// interlock:allow(reason)` at the acquisition site.\n\n\
         | lock | file | reason |\n|---|---|---|\n",
    );
    for (lock, file, reason) in &graph.allows {
        out.push_str(&format!("| {lock} | {file} | {reason} |\n"));
    }
    out
}

/// Regenerates and writes [`MANIFEST_PATH`]; returns the manifest text.
pub fn update_manifest(root: &Path) -> Result<String, String> {
    let report = analyze(root)?;
    let path = root.join(MANIFEST_PATH);
    std::fs::write(&path, &report.manifest)
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(report.manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_symbols_resolve_through_calls_and_indexes() {
        let text = "let a = self.slots[i].lock();";
        let at = text.find(".lock()").unwrap();
        assert_eq!(receiver_symbol(text, at).as_deref(), Some("slots"));
        let text = "self.shard_of(&key).lock()";
        let at = text.find(".lock()").unwrap();
        assert_eq!(receiver_symbol(text, at).as_deref(), Some("shard_of"));
        let text = "shared .mutator .lock()";
        let at = text.find(".lock()").unwrap();
        assert_eq!(receiver_symbol(text, at).as_deref(), Some("mutator"));
    }

    #[test]
    fn guard_binding_detection_distinguishes_guards_from_values() {
        // The binding IS the guard: only poison handling follows.
        let text = "let mut inner = self.inner.lock().expect(\u{0});";
        let at = text.find(".lock()").unwrap();
        assert!(binds_guard(text, at + ".lock()".len()));
        // The binding is a clone, not the guard.
        let text = "let mut search = self.search.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();";
        let at = text.find(".lock()").unwrap();
        assert!(!binds_guard(text, at + ".lock()".len()));
    }

    #[test]
    fn logical_lines_join_method_chains() {
        let source = "fn f(&self) -> u64 {\n    self.inner\n        .lock()\n        .expect(\"poisoned\")\n        .entries\n}\n";
        let logicals = logical_lines(source);
        assert_eq!(logicals.len(), 2);
        assert!(logicals[1]
            .text
            .contains(".lock() .expect(\u{0}) .entries }"));
    }

    #[test]
    fn blocking_tokens_skip_definitions() {
        assert!(blocking_tokens_in("publish(shared, &mut state)").contains(&"publish("));
        assert!(blocking_tokens_in("fn publish( shared: &EngineShared,").is_empty());
        assert!(blocking_tokens_in("inner.file.sync_data()").contains(&"sync_data("));
    }

    #[test]
    fn allow_comments_extract_their_reason() {
        assert_eq!(
            extract_allow(" interlock:allow(WAL fsync is the critical section)").as_deref(),
            Some("WAL fsync is the critical section")
        );
        assert_eq!(extract_allow(" plain comment"), None);
    }
}

