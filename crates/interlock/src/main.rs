//! Standalone entry point for the lock-order pass.
//!
//! `cargo run -p asrs-lint` invokes the same analysis as part of the
//! repo's single lint entry point; this binary exists for fixture tests
//! and for running the pass against an arbitrary tree:
//!
//! ```text
//! asrs-interlock [ROOT] [--update-lock-order]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates/core/src/lib.rs").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut update = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--update-lock-order" => update = true,
            "--help" | "-h" => {
                println!("usage: asrs-interlock [ROOT] [--update-lock-order]");
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("asrs-interlock: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(workspace_root) else {
        eprintln!("asrs-interlock: could not locate the workspace root (crates/core/src/lib.rs)");
        return ExitCode::from(2);
    };

    if update {
        return match asrs_interlock::update_manifest(&root) {
            Ok(_) => {
                println!(
                    "asrs-interlock: wrote {}",
                    root.join(asrs_interlock::MANIFEST_PATH).display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("asrs-interlock: {e}");
                ExitCode::from(2)
            }
        };
    }

    match asrs_interlock::analyze(&root) {
        Ok(report) => {
            println!(
                "asrs-interlock: {} locks, {} sites, {} edges, {} allow(s) used (budget {})",
                report.lock_count,
                report.site_count,
                report.edge_count,
                report.allows_used,
                asrs_interlock::ALLOW_BUDGET
            );
            if report.findings.is_empty() {
                println!("asrs-interlock: lock graph clean");
                ExitCode::SUCCESS
            } else {
                for finding in &report.findings {
                    println!(
                        "{}:{}: [{}] {}",
                        finding.file.display(),
                        finding.line,
                        finding.category,
                        finding.message
                    );
                }
                println!("asrs-interlock: {} finding(s)", report.findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("asrs-interlock: {e}");
            ExitCode::from(2)
        }
    }
}
