//! Fixture corpus for the static lock-order pass: each seeded bug tree
//! must be flagged with the right category, and the real workspace must
//! come up clean through the actual `asrs-interlock` binary.

use asrs_interlock::{analyze, Category, Report};
use std::path::{Path, PathBuf};

/// Builds a throwaway workspace skeleton holding one `crates/core`
/// source file, runs the analysis over it, and tears it down.
fn analyze_fixture(test_name: &str, engine_rs: &str) -> Report {
    let root = std::env::temp_dir().join(format!(
        "asrs-interlock-fixture-{}-{test_name}",
        std::process::id()
    ));
    let src = root.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("create fixture tree");
    std::fs::write(src.join("engine.rs"), engine_rs).expect("write fixture");
    let report = analyze(&root).expect("fixture analysis");
    std::fs::remove_dir_all(&root).expect("remove fixture tree");
    report
}

fn categories(report: &Report) -> Vec<Category> {
    report.findings.iter().map(|f| f.category).collect()
}

#[test]
fn seeded_ab_ba_cycle_is_flagged_as_order_cycle() {
    let report = analyze_fixture(
        "ab-ba",
        r#"
pub struct S {
    a: std::sync::Mutex<u64>,
    b: std::sync::Mutex<u64>,
}

impl S {
    pub fn forward(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }

    pub fn backward(&self) {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        drop(ga);
        drop(gb);
    }
}
"#,
    );
    assert!(
        categories(&report).contains(&Category::OrderCycle),
        "expected an order-cycle finding, got {:?}",
        report.findings
    );
    let cycle = report
        .findings
        .iter()
        .find(|f| f.category == Category::OrderCycle)
        .expect("cycle finding");
    assert!(
        cycle.message.contains("core.engine.a") && cycle.message.contains("core.engine.b"),
        "cycle should name both locks: {}",
        cycle.message
    );
}

#[test]
fn seeded_guard_across_fsync_is_flagged_as_blocking_hold() {
    let report = analyze_fixture(
        "fsync",
        r#"
pub struct W {
    inner: std::sync::Mutex<std::fs::File>,
}

impl W {
    pub fn append(&self, frame: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        let mut file = self.inner.lock().unwrap();
        file.write_all(frame)?;
        file.sync_data()?;
        Ok(())
    }
}
"#,
    );
    let blocking: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.category == Category::BlockingHold)
        .collect();
    assert!(
        !blocking.is_empty(),
        "expected blocking-hold findings, got {:?}",
        report.findings
    );
    assert!(
        blocking.iter().any(|f| f.message.contains("sync_data")),
        "the fsync should be named: {blocking:?}"
    );
}

#[test]
fn seeded_stale_guard_scope_is_flagged() {
    // The PR 7 worker-queue shape: the guard's last use is the dequeue,
    // but its scope stretches across serving (blocking I/O) below.
    let report = analyze_fixture(
        "stale-scope",
        r#"
pub struct Q {
    queue: std::sync::Mutex<Vec<u64>>,
}

impl Q {
    pub fn worker(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let mut guard = self.queue.lock().unwrap();
        let job = guard.pop();
        if let Some(job) = job {
            out.write_all(&job.to_le_bytes())?;
        }
        Ok(())
    }
}
"#,
    );
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.category == Category::StaleScope)
        .collect();
    assert!(
        !stale.is_empty(),
        "expected a stale-guard-scope finding, got {:?}",
        report.findings
    );
    assert!(
        stale[0].message.contains("guard `guard`"),
        "should name the binding: {}",
        stale[0].message
    );
}

#[test]
fn allow_escape_suppresses_and_unused_allow_is_flagged() {
    let report = analyze_fixture(
        "allows",
        r#"
pub struct W {
    inner: std::sync::Mutex<std::fs::File>,
}

impl W {
    pub fn append(&self, frame: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        // interlock:allow(the fsync is the critical section)
        let mut file = self.inner.lock().unwrap();
        file.write_all(frame)?;
        file.sync_data()?;
        Ok(())
    }

    pub fn harmless(&self) -> usize {
        // interlock:allow(nothing here actually blocks)
        let file = self.inner.lock().unwrap();
        let _ = &*file;
        0
    }
}
"#,
    );
    assert!(
        !categories(&report).contains(&Category::BlockingHold),
        "the allow must suppress the fsync hold: {:?}",
        report.findings
    );
    let budget: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.category == Category::AllowBudget)
        .collect();
    assert_eq!(
        budget.len(),
        1,
        "the unused allow must be flagged: {:?}",
        report.findings
    );
    assert!(budget[0].message.contains("suppresses nothing"));
    assert_eq!(report.allows_used, 1);
}

/// The workspace root, from this crate's manifest dir.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn real_tree_is_clean_through_the_real_binary() {
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_asrs-interlock"))
        .arg(workspace_root())
        .output()
        .expect("run asrs-interlock");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "the committed tree must pass its own lock-order gate:\n{stdout}"
    );
    assert!(stdout.contains("lock graph clean"), "{stdout}");
}

#[test]
fn committed_manifest_matches_regenerated_graph() {
    let root = workspace_root();
    let report = analyze(&root).expect("analyze workspace");
    let committed = std::fs::read_to_string(root.join(asrs_interlock::MANIFEST_PATH))
        .expect("read committed LOCK_ORDER.md");
    assert_eq!(
        committed, report.manifest,
        "LOCK_ORDER.md is stale; run `cargo run -p asrs-lint -- --update-lock-order`"
    );
}
