//! Deterministic-schedule model checking of the engine's lock protocol.
//!
//! Run with `cargo test -p asrs-core --features model --test model`.
//!
//! These tests drive distilled replicas of the engine's concurrency
//! protocol — the mutator-publish epoch swap, reader snapshot +
//! generation-stamped cache insert, auditor mutation-pause, WAL append
//! under the mutator, the cache's single-flight in-flight-slot handoff,
//! and the server worker queue — through *every*
//! interleaving of their lock operations via
//! [`asrs_core::sync::model::Explorer`].  The declared lock orders here
//! mirror `crates/interlock/LOCK_ORDER.md`; a protocol change that adds
//! an edge must update both.

#![cfg(feature = "model")]

use asrs_core::sync::model::{self, Explorer, ModelViolation, ViolationKind};
use asrs_core::sync::{Mutex, RwLock};
use std::sync::Arc;

/// The engine's published-generation epoch plus its mutation-serializing
/// lock and one generation-stamped cache shard: the skeleton of
/// `EngineShared` + `QueryCache`.
struct ProtocolState {
    /// `engine.epoch` — the published generation (stands in for the
    /// `RwLock<Arc<EngineCore>>` swap).
    epoch: RwLock<u64>,
    /// `engine.mutator` — serializes mutations; holds the count of
    /// mutations applied so far.
    mutator: Mutex<u64>,
    /// `cache.shard` — entries are `(stamped_generation, observed_generation)`.
    shard: Mutex<Vec<(u64, u64)>>,
}

impl ProtocolState {
    fn new() -> Self {
        Self {
            epoch: RwLock::named("engine.epoch", 0),
            mutator: Mutex::named("engine.mutator", 0),
            shard: Mutex::named("cache.shard", Vec::new()),
        }
    }

    /// `AsrsEngine::append` shape: serialize on the mutator, publish the
    /// next generation through the epoch write lock.
    fn mutate(&self) {
        let mut applied = self.mutator.lock().expect("mutator");
        let next = *applied + 1;
        {
            let mut gen = self.epoch.write().expect("epoch");
            model::check(*gen == *applied, || {
                format!(
                    "published generation {} != applied count {}",
                    *gen, *applied
                )
            });
            *gen = next;
        }
        *applied = next;
    }

    /// `AsrsEngine::submit` shape: snapshot the published generation,
    /// then insert a result stamped with that generation.
    fn read_and_cache(&self) {
        let snapshot = *self.epoch.read().expect("epoch");
        let mut shard = self.shard.lock().expect("shard");
        shard.push((snapshot, snapshot));
    }

    /// `audit_shared` shape: pause mutations by holding the mutator,
    /// then verify no cache entry is stamped newer than the published
    /// generation.
    fn audit(&self) {
        let _mutations_paused = self.mutator.lock().expect("mutator");
        let published = *self.epoch.read().expect("epoch");
        let shard = self.shard.lock().expect("shard");
        for &(stamp, _) in shard.iter() {
            model::check(stamp <= published, || {
                format!("cache entry stamped generation {stamp} > published {published}")
            });
        }
    }
}

fn protocol_explorer() -> Explorer {
    Explorer::new()
        .declared_order(&[
            ("engine.mutator", "engine.epoch"),
            ("engine.mutator", "cache.shard"),
            ("engine.mutator", "persist.wal"),
            ("engine.mutator", "engine.commit_queue"),
            ("cache.inflight", "cache.flight_slot"),
            ("cache.inflight", "cache.shard"),
            ("cache.flight_slot", "cache.shard"),
        ])
        .allow_blocking("fsync", "persist.wal")
        .allow_blocking("fsync", "engine.mutator")
}

/// The tentpole assertion: the mutator-publish / reader-snapshot /
/// cache-insert / audit-pause protocol survives *every* schedule — no
/// deadlock, every acquisition edge within the declared manifest order,
/// and no reader's cache stamp ever exceeds the published generation.
#[test]
fn publish_read_cache_audit_protocol_is_schedule_clean() {
    let report = protocol_explorer()
        .explore(|run| {
            let state = Arc::new(ProtocolState::new());
            let s = Arc::clone(&state);
            run.thread("mutator", move || s.mutate());
            let s = Arc::clone(&state);
            run.thread("reader", move || s.read_and_cache());
            let s = Arc::clone(&state);
            run.thread("auditor", move || s.audit());
            run.finally(move || {
                let published = *state.epoch.read().expect("epoch");
                let shard = state.shard.lock().expect("shard");
                for &(stamp, _) in shard.iter() {
                    if stamp > published {
                        return Err(format!(
                            "final cache stamp {stamp} > published generation {published}"
                        ));
                    }
                }
                Ok(())
            });
        })
        .unwrap_or_else(|violation| panic!("{violation}"));
    assert!(
        report.exhausted,
        "exploration should exhaust the schedule space"
    );
    assert!(
        report.schedules > 100,
        "expected a non-trivial schedule space, got {}",
        report.schedules
    );
    for (from, to) in &report.edges {
        assert_eq!(from, "engine.mutator", "unexpected edge {from} -> {to}");
    }
}

/// The group-commit deposit protocol, distilled from
/// `crates/core/src/mutate.rs::commit`: every committer enqueues its
/// ticket under `engine.commit_queue` *alone*, then takes the mutator;
/// whoever wins first drains the queue, publishes **one** generation for
/// the whole batch, and deposits receipts for the tickets it folded in —
/// all before releasing the mutator.  Model invariants: a committer that
/// finds no deposit must find its own ticket in its drain (no lost
/// tickets), every published batch is exactly one epoch bump, and every
/// queue acquisition nests inside the declared
/// `engine.mutator -> engine.commit_queue` edge or happens lock-free.
#[test]
fn group_commit_deposit_protocol_is_schedule_clean() {
    struct Queue {
        pending: Vec<u64>,
        deposits: Vec<u64>,
    }
    struct BatchState {
        epoch: RwLock<u64>,
        mutator: Mutex<u64>,
        queue: Mutex<Queue>,
    }
    impl BatchState {
        fn commit(&self, ticket: u64) {
            {
                let mut q = self.queue.lock().expect("queue");
                q.pending.push(ticket);
            }
            let mut applied = self.mutator.lock().expect("mutator");
            let drained = {
                let mut q = self.queue.lock().expect("queue");
                if let Some(at) = q.deposits.iter().position(|&t| t == ticket) {
                    // A leader folded this mutation into its batch and
                    // deposited the receipt before releasing the mutator.
                    q.deposits.remove(at);
                    return;
                }
                std::mem::take(&mut q.pending)
            };
            model::check(drained.contains(&ticket), || {
                format!("leader drained a batch that lost its own ticket {ticket}")
            });
            {
                let mut gen = self.epoch.write().expect("epoch");
                model::check(*gen <= *applied, || {
                    format!("generation {} ran ahead of applied count {}", *gen, *applied)
                });
                *gen += 1;
            }
            *applied += drained.len() as u64;
            let mut q = self.queue.lock().expect("queue");
            for t in drained {
                if t != ticket {
                    q.deposits.push(t);
                }
            }
        }
    }

    let report = protocol_explorer()
        .explore(|run| {
            let state = Arc::new(BatchState {
                epoch: RwLock::named("engine.epoch", 0),
                mutator: Mutex::named("engine.mutator", 0),
                queue: Mutex::named(
                    "engine.commit_queue",
                    Queue {
                        pending: Vec::new(),
                        deposits: Vec::new(),
                    },
                ),
            });
            for (name, ticket) in [("committer-a", 1u64), ("committer-b", 2u64)] {
                let s = Arc::clone(&state);
                run.thread(name, move || s.commit(ticket));
            }
            run.finally(move || {
                let q = state.queue.lock().expect("queue");
                if !q.pending.is_empty() {
                    return Err(format!("{} tickets never drained", q.pending.len()));
                }
                if !q.deposits.is_empty() {
                    return Err(format!("{} receipts never collected", q.deposits.len()));
                }
                let batches = *state.epoch.read().expect("epoch");
                let applied = *state.mutator.lock().expect("mutator");
                if applied != 2 {
                    return Err(format!("expected 2 applied mutations, got {applied}"));
                }
                if batches == 0 || batches > applied {
                    return Err(format!(
                        "published {batches} generations for {applied} mutations"
                    ));
                }
                Ok(())
            });
        })
        .unwrap_or_else(|violation| panic!("{violation}"));
    assert!(report.exhausted, "schedule space should exhaust");
    assert!(
        report
            .edges
            .iter()
            .any(|(from, to)| from == "engine.mutator" && to == "engine.commit_queue"),
        "the deposit/drain edge must be exercised: {:?}",
        report.edges
    );
    for (from, to) in &report.edges {
        assert_eq!(from, "engine.mutator", "unexpected edge {from} -> {to}");
    }
}

/// The single-flight miss-coalescing protocol, distilled from
/// `crates/core/src/cache.rs::compute_coalesced` / `wait_for_leader`:
/// the first cold caller (the leader) registers an in-flight slot in the
/// table and — before releasing the table — takes the slot; later
/// arrivals (waiters) find the flight in the table, release the table,
/// and block on the slot for the leader's published result.  The
/// load-bearing ordering is exactly the declared
/// `cache.inflight -> cache.flight_slot -> cache.shard` chain: because
/// the leader acquires the slot *while still holding the table*, no
/// waiter can ever observe an unheld empty slot, and because the leader
/// stores into the cache shard *while holding the slot*, the shard is
/// written by the time any waiter shares the result.  A caller that
/// arrives after the leader cleared the flight re-leads and must
/// recompute the identical value.
#[test]
fn single_flight_slot_protocol_is_schedule_clean() {
    struct Flight {
        slot: Mutex<Option<u64>>,
    }
    struct CacheState {
        inflight: Mutex<Option<Arc<Flight>>>,
        shard: Mutex<Option<u64>>,
    }
    impl CacheState {
        fn new() -> Self {
            Self {
                inflight: Mutex::named("cache.inflight", None),
                shard: Mutex::named("cache.shard", None),
            }
        }

        fn submit(&self) {
            let mut table = self.inflight.lock().expect("table");
            if let Some(flight) = table.as_ref() {
                let flight = Arc::clone(flight);
                drop(table);
                // Waiter: the leader took the slot before the table was
                // released, so this acquisition can only succeed once
                // the result is published.
                let slot = flight.slot.lock().expect("slot");
                model::check(slot.is_some(), || {
                    "waiter observed an unheld empty slot: the leader must take the slot before releasing the table".to_string()
                });
                model::check(*slot == Some(42), || {
                    format!("waiter shared a wrong result: {:?}", *slot)
                });
                return;
            }
            // Leader: register the flight, then take its slot while the
            // table is still held.
            let flight = Arc::new(Flight {
                slot: Mutex::named("cache.flight_slot", None),
            });
            *table = Some(Arc::clone(&flight));
            let mut slot = flight.slot.lock().expect("slot");
            drop(table);
            let value = 42; // the deterministic recompute
            {
                let mut shard = self.shard.lock().expect("shard");
                if let Some(cached) = *shard {
                    // A fully completed earlier flight may have cached
                    // already; a re-lead must agree with it.
                    model::check(cached == value, || {
                        format!("re-lead computed {value} != cached {cached}")
                    });
                }
                *shard = Some(value);
            }
            *slot = Some(value);
            drop(slot);
            // ClearFlight: deregister only after the slot is released.
            let mut table = self.inflight.lock().expect("table");
            *table = None;
        }
    }

    let report = protocol_explorer()
        .explore(|run| {
            let state = Arc::new(CacheState::new());
            for name in ["caller-a", "caller-b"] {
                let s = Arc::clone(&state);
                run.thread(name, move || s.submit());
            }
            run.finally(move || {
                match *state.shard.lock().expect("shard") {
                    Some(42) => Ok(()),
                    other => Err(format!("final cache entry {other:?}, expected Some(42)")),
                }
            });
        })
        .unwrap_or_else(|violation| panic!("{violation}"));
    assert!(report.exhausted);
    assert!(
        report.schedules > 10,
        "expected a non-trivial schedule space, got {}",
        report.schedules
    );
    for edge in [
        ("cache.inflight", "cache.flight_slot"),
        ("cache.flight_slot", "cache.shard"),
    ] {
        assert!(
            report
                .edges
                .iter()
                .any(|(from, to)| (from.as_str(), to.as_str()) == edge),
            "the {} -> {} edge must be exercised: {:?}",
            edge.0,
            edge.1,
            report.edges
        );
    }
}

/// The WAL critical section: fsync happens while holding both the
/// mutator and the WAL lock — exactly the holds `LOCK_ORDER.md`
/// allow-lists — and two concurrent appenders still serialize cleanly.
#[test]
fn wal_append_under_mutator_is_schedule_clean() {
    let report = protocol_explorer()
        .explore(|run| {
            let mutator = Arc::new(Mutex::named("engine.mutator", 0u64));
            let wal = Arc::new(Mutex::named("persist.wal", Vec::<u64>::new()));
            for name in ["appender-a", "appender-b"] {
                let mutator = Arc::clone(&mutator);
                let wal = Arc::clone(&wal);
                run.thread(name, move || {
                    let mut applied = mutator.lock().expect("mutator");
                    *applied += 1;
                    let mut wal = wal.lock().expect("wal");
                    wal.push(*applied);
                    model::blocking("fsync");
                });
            }
        })
        .unwrap_or_else(|violation| panic!("{violation}"));
    assert!(report.exhausted);
    assert!(report
        .edges
        .iter()
        .any(|(from, to)| from == "engine.mutator" && to == "persist.wal"));
}

/// PR 7 worker-queue regression, buggy shape: the worker holds the
/// queue guard across serving the request.  The explorer must flag it
/// with the blocking-while-locked category and a replayable trace.
#[test]
fn worker_queue_guard_across_serve_is_caught() {
    let run_once = || -> Box<ModelViolation> {
        Explorer::new()
            .allow_blocking("recv", "server.worker_queue")
            .explore(|run| {
                let queue = Arc::new(Mutex::named("server.worker_queue", vec![1u64, 2]));
                let q = Arc::clone(&queue);
                run.thread("worker", move || {
                    let mut guard = q.lock().expect("queue");
                    model::blocking("recv");
                    let _job = guard.pop();
                    // BUG (the PR 7 shape): the guard is still alive here.
                    model::blocking("serve");
                });
            })
            .expect_err("the stale guard across `serve` must be flagged")
    };
    let violation = run_once();
    assert_eq!(violation.kind, ViolationKind::BlockingWhileLocked);
    assert!(
        violation.message.contains("server.worker_queue"),
        "message should name the held lock: {}",
        violation.message
    );
    let rendered = violation.to_string();
    assert!(
        rendered.contains("schedule trace:"),
        "failure must print the schedule trace:\n{rendered}"
    );
    // Seeded/deterministic: a second exploration reproduces the same
    // schedule and trace.
    let again = run_once();
    assert_eq!(violation.schedule, again.schedule);
    assert_eq!(violation.trace, again.trace);
}

/// PR 7 worker-queue fixed shape: guard dropped at last use, serving
/// happens lock-free; two contending workers explore clean.
#[test]
fn worker_queue_fixed_shape_is_schedule_clean() {
    let report = Explorer::new()
        .allow_blocking("recv", "server.worker_queue")
        .explore(|run| {
            let queue = Arc::new(Mutex::named("server.worker_queue", vec![1u64, 2]));
            for name in ["worker-a", "worker-b"] {
                let q = Arc::clone(&queue);
                run.thread(name, move || {
                    let job = {
                        let mut guard = q.lock().expect("queue");
                        model::blocking("recv");
                        guard.pop()
                    };
                    if job.is_some() {
                        model::blocking("serve");
                    }
                });
            }
        })
        .unwrap_or_else(|violation| panic!("{violation}"));
    assert!(report.exhausted);
}

/// A reader stamping a generation newer than the one it observed is the
/// protocol violation the auditor exists to catch.
#[test]
fn stale_stamp_is_caught_by_auditor() {
    let violation = protocol_explorer()
        .explore(|run| {
            let state = Arc::new(ProtocolState::new());
            let s = Arc::clone(&state);
            run.thread("bad-reader", move || {
                let snapshot = *s.epoch.read().expect("epoch");
                let mut shard = s.shard.lock().expect("shard");
                // BUG: stamps one generation ahead of what it read.
                shard.push((snapshot + 1, snapshot));
            });
            let s = Arc::clone(&state);
            run.thread("auditor", move || s.audit());
        })
        .expect_err("the auditor must catch the stale stamp");
    assert_eq!(violation.kind, ViolationKind::Assertion);
    assert!(
        violation.message.contains("stamped generation"),
        "unexpected message: {}",
        violation.message
    );
}

/// A thread re-acquiring a mutex it already holds can never be granted:
/// the explorer reports it as a deadlock, naming waiter and holder.
#[test]
fn reentrant_lock_is_reported_as_deadlock() {
    let violation = Explorer::new()
        .explore(|run| {
            let lock = Arc::new(Mutex::named("m", ()));
            run.thread("selfish", move || {
                let _outer = lock.lock().expect("outer");
                let _inner = lock.lock().expect("inner");
            });
        })
        .expect_err("self-deadlock must be reported");
    assert_eq!(violation.kind, ViolationKind::Deadlock);
    assert!(
        violation.message.contains("waits for m"),
        "unexpected message: {}",
        violation.message
    );
}

/// Classic AB/BA: the cycle is flagged as soon as both orders have been
/// observed — before the explorer even needs to hit a hung schedule.
#[test]
fn ab_ba_acquisition_cycle_is_flagged() {
    let violation = Explorer::new()
        .explore(|run| {
            let a = Arc::new(Mutex::named("a", ()));
            let b = Arc::new(Mutex::named("b", ()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            run.thread("forward", move || {
                let _a = a.lock().expect("a");
                let _b = b.lock().expect("b");
            });
            run.thread("backward", move || {
                let _b = b2.lock().expect("b");
                let _a = a2.lock().expect("a");
            });
        })
        .expect_err("AB/BA ordering must be flagged");
    assert!(
        matches!(
            violation.kind,
            ViolationKind::OrderCycle | ViolationKind::Deadlock
        ),
        "unexpected kind: {:?}",
        violation.kind
    );
}

/// With a declared order in force, any nesting outside it is an error
/// even when it is cycle-free.
#[test]
fn undeclared_edge_is_flagged() {
    let violation = Explorer::new()
        .declared_order(&[("a", "b")])
        .explore(|run| {
            let a = Arc::new(Mutex::named("a", ()));
            let b = Arc::new(Mutex::named("b", ()));
            run.thread("rebel", move || {
                let _b = b.lock().expect("b");
                let _a = a.lock().expect("a");
            });
        })
        .expect_err("the undeclared b -> a edge must be flagged");
    assert_eq!(violation.kind, ViolationKind::UndeclaredEdge);
    assert!(
        violation.message.contains("b -> a"),
        "unexpected message: {}",
        violation.message
    );
}

/// Outside an exploration the shims behave exactly like `std::sync` —
/// the whole engine test suite runs through them with the feature on.
#[test]
fn shims_pass_through_outside_a_run() {
    let m = Mutex::new(7u64);
    *m.lock().expect("lock") += 1;
    assert_eq!(*m.lock().expect("lock"), 8);
    let rw = RwLock::new(3u64);
    assert_eq!(*rw.read().expect("read"), 3);
    *rw.write().expect("write") = 4;
    assert_eq!(rw.into_inner().expect("into_inner"), 4);
}
