//! The exhaustive arrangement-midpoint backend.
//!
//! The edges of the ASP rectangles partition the plane into an arrangement
//! of axis-aligned cells; every disjoint region of the paper (Lemma 2) is a
//! union of such cells, so evaluating one probe point per arrangement cell
//! visits every disjoint region.  [`NaiveSearch`] does exactly that: it
//! takes the midpoints between consecutive distinct edge coordinates (plus
//! one point outside everything) and evaluates every `(x, y)` combination.
//!
//! The cost is `O(n²)` probe points, each evaluated in `O(n)` — far too
//! slow for production queries, but an unimpeachable ground truth for the
//! engine's faster backends, which is why the engine exposes it as
//! [`Strategy::Naive`](crate::Strategy).

use crate::asp::AspInstance;
use crate::best::BestSet;
use crate::budget::Budget;
use crate::config::SearchConfig;
use crate::error::AsrsError;
use crate::query::AsrsQuery;
use crate::result::SearchResult;
use crate::stats::SearchStats;
use asrs_aggregator::CompositeAggregator;
use asrs_data::Dataset;
use asrs_geo::Point;
use std::time::Instant;

/// The exhaustive ASRS solver.  Intended for small instances (≲ 200
/// objects) and for validating the pruning backends.
pub struct NaiveSearch<'a> {
    dataset: &'a Dataset,
    aggregator: &'a CompositeAggregator,
    config: SearchConfig,
}

impl<'a> NaiveSearch<'a> {
    /// Creates a solver with the default configuration.
    pub fn new(dataset: &'a Dataset, aggregator: &'a CompositeAggregator) -> Self {
        Self::with_config(dataset, aggregator, SearchConfig::default())
    }

    /// Creates a solver with an explicit configuration.  Only the accuracy
    /// settings are consulted (the oracle has no grid or δ to tune).
    pub fn with_config(
        dataset: &'a Dataset,
        aggregator: &'a CompositeAggregator,
        config: SearchConfig,
    ) -> Self {
        Self {
            dataset,
            aggregator,
            config,
        }
    }

    /// Solves the ASRS problem exactly by exhaustive enumeration.
    ///
    /// # Errors
    ///
    /// [`AsrsError::Query`] when the query does not match the aggregator;
    /// [`AsrsError::Config`] when the configuration is invalid.
    pub fn search(&self, query: &AsrsQuery) -> Result<SearchResult, AsrsError> {
        self.search_within(query, None)
    }

    /// Like [`NaiveSearch::search`], with an optional wall-clock budget:
    /// the probe enumeration polls the budget once per probe column and
    /// aborts with [`AsrsError::DeadlineExceeded`] once spent.
    pub fn search_within(
        &self,
        query: &AsrsQuery,
        budget: Option<Budget>,
    ) -> Result<SearchResult, AsrsError> {
        self.run(query, 1, budget)?
            .into_iter()
            .next()
            .ok_or_else(crate::best::no_finite_candidate)
    }

    /// Returns the `k` best candidate regions with pairwise distinct
    /// anchors, best first.
    ///
    /// # Errors
    ///
    /// [`AsrsError::InvalidTopK`] when `k` is zero, plus the same errors as
    /// [`NaiveSearch::search`].
    pub fn search_top_k(
        &self,
        query: &AsrsQuery,
        k: usize,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        self.search_top_k_within(query, k, None)
    }

    /// Like [`NaiveSearch::search_top_k`], with an optional wall-clock
    /// budget (see [`NaiveSearch::search_within`]).
    pub fn search_top_k_within(
        &self,
        query: &AsrsQuery,
        k: usize,
        budget: Option<Budget>,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        if k == 0 {
            return Err(AsrsError::InvalidTopK);
        }
        self.run(query, k, budget)
    }

    fn run(
        &self,
        query: &AsrsQuery,
        k: usize,
        budget: Option<Budget>,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        query.validate(self.aggregator)?;
        self.config.validate()?;
        if let Some(b) = budget {
            b.check()?;
        }
        let started = Instant::now();
        let mut stats = SearchStats::new();
        let asp = AspInstance::build(
            self.dataset,
            query.size,
            self.config.accuracy,
            self.config.accuracy_floor,
        );
        stats.rectangles = asp.rects().len() as u64;

        // Coordinates of all vertical / horizontal edges.
        let mut xs: Vec<f64> = Vec::with_capacity(asp.rects().len() * 2);
        let mut ys: Vec<f64> = Vec::with_capacity(asp.rects().len() * 2);
        for r in asp.rects() {
            xs.push(r.rect.min_x);
            xs.push(r.rect.max_x);
            ys.push(r.rect.min_y);
            ys.push(r.rect.max_y);
        }
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        ys.sort_by(f64::total_cmp);
        ys.dedup();

        // Probe abscissae: midpoints of consecutive distinct coordinates
        // plus a point beyond the last edge (covering the
        // "outside everything" case).
        let probes_axis = |coords: &[f64]| -> Vec<f64> {
            let mut probes = Vec::with_capacity(coords.len() + 1);
            for w in coords.windows(2) {
                probes.push((w[0] + w[1]) / 2.0);
            }
            match coords.last() {
                Some(last) => probes.push(last + 1.0),
                None => probes.push(0.0),
            }
            probes
        };
        let px = probes_axis(&xs);
        let py = probes_axis(&ys);

        let candidates = asp.all_rect_indices();
        let mut best = BestSet::new(k);
        for &x in &px {
            if let Some(b) = budget {
                b.check()?;
            }
            for &y in &py {
                stats.fallback_points += 1;
                let p = Point::new(x, y);
                let objects = asp.objects_covering(&p, &candidates);
                let rep = self
                    .aggregator
                    .aggregate(objects.iter().map(|&i| self.dataset.object(i as usize)));
                let d = self
                    .aggregator
                    .distance(&rep, &query.target, &query.weights, query.metric);
                if d <= best.cutoff() {
                    best.offer(d, p, rep);
                }
            }
        }

        stats.elapsed = started.elapsed();
        Ok(crate::best::best_to_results(best, query.size, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ds_search::DsSearch;
    use asrs_aggregator::{FeatureVector, Selection, Weights};
    use asrs_data::gen::UniformGenerator;
    use asrs_geo::RegionSize;

    #[test]
    fn matches_ds_search_on_small_instances() {
        for seed in 0..4 {
            let ds = UniformGenerator::default().generate(40, seed);
            let agg = CompositeAggregator::builder(ds.schema())
                .distribution("category", Selection::All)
                .build()
                .unwrap();
            let query = AsrsQuery::new(
                RegionSize::new(12.0, 9.0),
                FeatureVector::new(vec![2.0, 1.0, 0.0, 1.0]),
                Weights::uniform(4),
            );
            let naive = NaiveSearch::new(&ds, &agg).search(&query).unwrap();
            let ds_result = DsSearch::new(&ds, &agg).search(&query).unwrap();
            assert!(
                (naive.distance - ds_result.distance).abs() < 1e-9,
                "seed {seed}: naive {} vs DS {}",
                naive.distance,
                ds_result.distance
            );
            assert!(naive.stats.fallback_points > 0);
        }
    }

    #[test]
    fn empty_dataset_reports_the_target_distance() {
        let ds = asrs_data::Dataset::new_unchecked(asrs_data::Schema::empty(), vec![]);
        let agg = CompositeAggregator::builder(ds.schema())
            .count(Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(1.0, 1.0),
            FeatureVector::new(vec![2.0]),
            Weights::uniform(1),
        );
        let result = NaiveSearch::new(&ds, &agg).search(&query).unwrap();
        assert_eq!(result.distance, 2.0);
    }

    #[test]
    fn top_k_is_sorted_with_distinct_anchors() {
        let ds = UniformGenerator::default().generate(30, 7);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(15.0, 15.0),
            FeatureVector::new(vec![1.0, 1.0, 1.0, 1.0]),
            Weights::uniform(4),
        );
        let top = NaiveSearch::new(&ds, &agg).search_top_k(&query, 4).unwrap();
        assert!(!top.is_empty());
        for pair in top.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
            assert_ne!(pair[0].anchor, pair[1].anchor);
        }
    }

    #[test]
    fn validation_errors_propagate() {
        let ds = UniformGenerator::default().generate(10, 1);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let bad = AsrsQuery::new(
            RegionSize::new(1.0, 1.0),
            FeatureVector::new(vec![1.0]),
            Weights::uniform(1),
        );
        assert!(matches!(
            NaiveSearch::new(&ds, &agg).search(&bad),
            Err(AsrsError::Query(_))
        ));
    }
}
