//! The ASRS → ASP reduction (Section 4.1).
//!
//! For every spatial object `o` we generate a rectangle object of size
//! `a × b` whose *top-right* corner sits at `o.ρ`.  Lemma 1 shows that a
//! rectangle covers a location `p` (strictly) iff the corresponding object
//! lies strictly inside the `a × b` region whose bottom-left corner is `p`;
//! Theorem 1 then lets us answer the ASRS query by finding the best point in
//! the reduced instance.

use asrs_data::Dataset;
use asrs_geo::{Accuracy, Point, Rect, RegionSize};

/// A rectangle object of the reduced ASP instance: the geometric rectangle
/// plus the index of the originating spatial object (whose attributes it
/// carries, Definition 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RectObject {
    /// The rectangle of size `a × b` with its top-right corner at the
    /// originating object's location.
    pub rect: Rect,
    /// Index of the originating object in the dataset.
    pub object_idx: u32,
}

impl RectObject {
    /// Returns `true` when the rectangle strictly covers `p` (Lemma 1).
    #[inline]
    pub fn covers(&self, p: &Point) -> bool {
        self.rect.strictly_contains_point(p)
    }
}

/// The reduced ASP instance: the rectangle objects plus the space in which
/// the answer point may lie and the instance's coordinate accuracy.
#[derive(Debug, Clone)]
pub struct AspInstance {
    rects: Vec<RectObject>,
    space: Option<Rect>,
    accuracy: Accuracy,
    size: RegionSize,
}

impl AspInstance {
    /// Builds the ASP instance for `dataset` and query size `size`.
    ///
    /// `accuracy_override` forces a specific (ΔX, ΔY); otherwise the
    /// accuracy is estimated from the rectangle edge coordinates
    /// (Definition 7) with `accuracy_floor` as the smallest admissible
    /// value.
    pub fn build(
        dataset: &Dataset,
        size: RegionSize,
        accuracy_override: Option<Accuracy>,
        accuracy_floor: f64,
    ) -> Self {
        let rects: Vec<RectObject> = dataset
            .objects()
            .enumerate()
            .map(|(idx, o)| RectObject {
                rect: Rect::from_top_right(o.location, size),
                object_idx: idx as u32,
            })
            .collect();
        let space = Rect::mbr_of(rects.iter().map(|r| r.rect));
        let accuracy = match accuracy_override {
            Some(acc) => acc,
            None => {
                let mut xs = Vec::with_capacity(rects.len() * 2);
                let mut ys = Vec::with_capacity(rects.len() * 2);
                for r in &rects {
                    xs.push(r.rect.min_x);
                    xs.push(r.rect.max_x);
                    ys.push(r.rect.min_y);
                    ys.push(r.rect.max_y);
                }
                let floor = Accuracy::new(
                    accuracy_floor.max(f64::MIN_POSITIVE),
                    accuracy_floor.max(f64::MIN_POSITIVE),
                );
                Accuracy::from_edge_coordinates(&xs, &ys, floor)
            }
        };
        Self {
            rects,
            space,
            accuracy,
            size,
        }
    }

    /// Appends one rectangle without refreshing the derived fields.
    ///
    /// Part of the incremental probe-context maintenance in the cache
    /// carry-forward pass: a dataset append puts the object at the end of
    /// iteration order, so pushing its rectangle (with the next object
    /// index) and then calling [`AspInstance::refresh`] reproduces exactly
    /// what [`AspInstance::build`] would construct from the grown dataset.
    pub(crate) fn push_rect(&mut self, rect: RectObject) {
        self.rects.push(rect);
    }

    /// Recomputes the space and accuracy after [`AspInstance::push_rect`]
    /// calls, mirroring [`AspInstance::build`] fold-for-fold: the same MBR
    /// iteration order and the same floor clamping.  `xs`/`ys` must hold
    /// the edge coordinates of every rectangle (duplicates included; order
    /// is irrelevant — the estimator sorts internally).
    pub(crate) fn refresh(
        &mut self,
        accuracy_override: Option<Accuracy>,
        accuracy_floor: f64,
        xs: &[f64],
        ys: &[f64],
    ) {
        self.space = Rect::mbr_of(self.rects.iter().map(|r| r.rect));
        self.accuracy = match accuracy_override {
            Some(acc) => acc,
            None => {
                let floor = Accuracy::new(
                    accuracy_floor.max(f64::MIN_POSITIVE),
                    accuracy_floor.max(f64::MIN_POSITIVE),
                );
                Accuracy::from_edge_coordinates(xs, ys, floor)
            }
        };
    }

    /// The rectangle objects.
    #[inline]
    pub fn rects(&self) -> &[RectObject] {
        &self.rects
    }

    /// The bounding box of all rectangle objects — the space in which a
    /// covered answer point can lie.  `None` for an empty dataset.
    #[inline]
    pub fn space(&self) -> Option<Rect> {
        self.space
    }

    /// The instance's coordinate accuracy (ΔX, ΔY).
    #[inline]
    pub fn accuracy(&self) -> Accuracy {
        self.accuracy
    }

    /// The query region size.
    #[inline]
    pub fn size(&self) -> RegionSize {
        self.size
    }

    /// Indices of the rectangles whose closed extent intersects `area`.
    pub fn rects_intersecting(&self, area: &Rect) -> Vec<u32> {
        self.rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.rect.intersects(area))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// All rectangle indices.
    pub fn all_rect_indices(&self) -> Vec<u32> {
        (0..self.rects.len() as u32).collect()
    }

    /// Indices of the objects whose rectangle strictly covers `p` — by
    /// Lemma 1 these are exactly the objects strictly inside the candidate
    /// region anchored at `p`.
    pub fn objects_covering(&self, p: &Point, candidates: &[u32]) -> Vec<u32> {
        candidates
            .iter()
            .copied()
            .filter(|&i| self.rects[i as usize].covers(p))
            .map(|i| self.rects[i as usize].object_idx)
            .collect()
    }
}

/// Snaps probe points to canonical representatives of their arrangement
/// cell.
///
/// The edges of the ASP rectangles cut the plane into a global arrangement;
/// within one open arrangement cell every point has the same covering set,
/// hence the same representation and distance.  The searches probe such
/// cells at decomposition-dependent points (midpoints of whatever local
/// subdivision they built), so two different decompositions of the same
/// instance report different — equally optimal — anchors for the same cell.
/// Snapping every offered anchor to the *global* edge-interval midpoint
/// makes the reported anchor a function of the arrangement cell alone,
/// which is what lets the sharded scatter-gather executor promise
/// byte-identical answers regardless of the shard count.
///
/// The representatives match the exhaustive oracle's probe grid: interior
/// intervals map to `(eᵢ + eᵢ₊₁) / 2`, everything beyond the last edge to
/// `last + 1.0`, everything before the first edge to `first - 1.0`, and a
/// coordinate lying exactly on an edge is kept as-is (it is its own
/// measure-zero covering class under the strict containment of Lemma 1).
#[derive(Debug)]
pub(crate) struct EdgeSnapper {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl EdgeSnapper {
    /// Collects the sorted, deduplicated edge coordinates of an instance.
    pub(crate) fn from_asp(asp: &AspInstance) -> Self {
        let mut xs = Vec::with_capacity(asp.rects().len() * 2);
        let mut ys = Vec::with_capacity(asp.rects().len() * 2);
        for r in asp.rects() {
            xs.push(r.rect.min_x);
            xs.push(r.rect.max_x);
            ys.push(r.rect.min_y);
            ys.push(r.rect.max_y);
        }
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        ys.sort_by(f64::total_cmp);
        ys.dedup();
        Self { xs, ys }
    }

    /// Builds a snapper from edge-coordinate arrays already sorted by
    /// `total_cmp` (duplicates allowed) — the incrementally maintained
    /// arrays of the carry-probe cache.  Same multiset, same sort order,
    /// same dedup as [`EdgeSnapper::from_asp`], hence bit-identical edges.
    pub(crate) fn from_sorted_edges(xs: &[f64], ys: &[f64]) -> Self {
        let mut xs = xs.to_vec();
        xs.dedup();
        let mut ys = ys.to_vec();
        ys.dedup();
        Self { xs, ys }
    }

    /// Bitwise equality of the edge arrays: the debug-build check that an
    /// incrementally maintained snapper matches a fresh build.
    #[cfg(debug_assertions)]
    pub(crate) fn bits_eq(&self, other: &Self) -> bool {
        let eq = |a: &[f64], b: &[f64]| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        };
        eq(&self.xs, &other.xs) && eq(&self.ys, &other.ys)
    }

    /// The canonical representative of the arrangement cell containing `p`.
    pub(crate) fn snap(&self, p: Point) -> Point {
        Point::new(
            Self::snap_axis(&self.xs, p.x),
            Self::snap_axis(&self.ys, p.y),
        )
    }

    fn snap_axis(edges: &[f64], v: f64) -> f64 {
        if edges.is_empty() {
            return v;
        }
        let i = edges.partition_point(|e| *e < v);
        if i < edges.len() && edges[i] == v {
            return v;
        }
        if i == 0 {
            edges[0] - 1.0
        } else if i == edges.len() {
            edges[edges.len() - 1] + 1.0
        } else {
            (edges[i - 1] + edges[i]) / 2.0
        }
    }

    /// Canonical representatives of every arrangement x-interval meeting
    /// the open range `(lo, hi)`, ascending (see [`EdgeSnapper::axis_reps`]).
    pub(crate) fn x_reps_within(&self, lo: f64, hi: f64) -> Vec<f64> {
        Self::axis_reps(&self.xs, lo, hi)
    }

    /// Canonical representatives of every arrangement y-interval meeting
    /// the open range `(lo, hi)`, ascending.
    pub(crate) fn y_reps_within(&self, lo: f64, hi: f64) -> Vec<f64> {
        Self::axis_reps(&self.ys, lo, hi)
    }

    /// Canonical representatives of the edge intervals intersecting the
    /// open range `(lo, hi)`.
    ///
    /// A search evaluates whole uniform-covering *windows* at one probe
    /// point, but a window generically spans several arrangement intervals
    /// (edges of rectangles far outside the window still cut the global
    /// arrangement).  Those intervals are distinct — equally good —
    /// candidates; enumerating each interval's representative is what lets
    /// a window evaluation offer all of them, keeping the candidate set
    /// identical across decompositions.
    fn axis_reps(edges: &[f64], lo: f64, hi: f64) -> Vec<f64> {
        if hi <= lo {
            return vec![Self::snap_axis(edges, (lo + hi) / 2.0)];
        }
        let a = edges.partition_point(|e| *e <= lo);
        let b = edges.partition_point(|e| *e < hi);
        let mut reps = Vec::with_capacity(b - a + 1);
        let mut prev = lo;
        for &edge in &edges[a..b] {
            reps.push(Self::snap_axis(edges, (prev + edge) / 2.0));
            prev = edge;
        }
        reps.push(Self::snap_axis(edges, (prev + hi) / 2.0));
        // Fragments of one interval (a range boundary inside the interval)
        // snap to the same representative.
        reps.dedup();
        reps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_data::{DatasetBuilder, Schema};

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new(Schema::empty());
        b.push(2.0, 2.0, vec![]);
        b.push(5.0, 4.0, vec![]);
        b.push(9.0, 1.0, vec![]);
        b.build().unwrap()
    }

    #[test]
    fn rectangles_have_top_right_corner_on_objects() {
        let ds = dataset();
        let size = RegionSize::new(2.0, 1.0);
        let asp = AspInstance::build(&ds, size, None, 1e-12);
        assert_eq!(asp.rects().len(), 3);
        for (r, o) in asp.rects().iter().zip(ds.objects()) {
            assert_eq!(r.rect.top_right(), o.location);
            assert!((r.rect.width() - 2.0).abs() < 1e-12);
            assert!((r.rect.height() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lemma_1_cover_iff_object_inside_region() {
        // A rectangle covers p iff the object lies strictly inside the
        // region with bottom-left corner p.
        let ds = dataset();
        let size = RegionSize::new(3.0, 3.0);
        let asp = AspInstance::build(&ds, size, None, 1e-12);
        let candidates = asp.all_rect_indices();
        let probes = [
            Point::new(1.5, 1.5),
            Point::new(4.0, 2.0),
            Point::new(6.5, 0.5),
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.9),
        ];
        for p in probes {
            let covered = asp.objects_covering(&p, &candidates);
            let region = Rect::from_bottom_left(p, size);
            let inside: Vec<u32> = ds
                .objects()
                .enumerate()
                .filter(|(_, o)| region.strictly_contains_point(&o.location))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(covered, inside, "mismatch at probe {p}");
        }
    }

    #[test]
    fn space_is_union_of_rectangles() {
        let ds = dataset();
        let asp = AspInstance::build(&ds, RegionSize::new(2.0, 2.0), None, 1e-12);
        let space = asp.space().unwrap();
        assert_eq!(space, Rect::new(0.0, -1.0, 9.0, 4.0));
    }

    #[test]
    fn empty_dataset_has_no_space() {
        let ds = Dataset::new_unchecked(Schema::empty(), vec![]);
        let asp = AspInstance::build(&ds, RegionSize::new(1.0, 1.0), None, 1e-12);
        assert!(asp.space().is_none());
        assert!(asp.rects().is_empty());
    }

    #[test]
    fn accuracy_is_estimated_from_edges() {
        let ds = dataset();
        // Objects at x = 2, 5, 9 and a = 2 give edge xs {0,2,3,5,7,9}; the
        // minimum gap is 1 (between 2 and 3).
        let asp = AspInstance::build(&ds, RegionSize::new(2.0, 2.0), None, 1e-12);
        assert!((asp.accuracy().dx - 1.0).abs() < 1e-12);
        // Override wins.
        let asp = AspInstance::build(
            &ds,
            RegionSize::new(2.0, 2.0),
            Some(Accuracy::new(0.5, 0.5)),
            1e-12,
        );
        assert_eq!(asp.accuracy(), Accuracy::new(0.5, 0.5));
    }

    #[test]
    fn snapper_maps_arrangement_cells_to_one_representative() {
        let ds = dataset();
        let asp = AspInstance::build(&ds, RegionSize::new(2.0, 1.0), None, 1e-12);
        let snapper = EdgeSnapper::from_asp(&asp);
        // Two probes inside the same global edge interval snap to the same
        // midpoint; snapping is idempotent.
        // x-edges include {0, 2, 3, 5, 7, 9}; 2.1 and 2.9 share (2, 3).
        let a = snapper.snap(Point::new(2.1, 1.4));
        let b = snapper.snap(Point::new(2.9, 1.6));
        assert_eq!(a.x, b.x);
        assert_eq!(a.x, 2.5);
        assert_eq!(snapper.snap(a), a, "snapping is idempotent");
        // Beyond the last edge mirrors the oracle's outside probe.
        let out = snapper.snap(Point::new(100.0, 100.0));
        assert_eq!(out.x, 9.0 + 1.0);
        // Before the first edge.
        let below = snapper.snap(Point::new(-50.0, 0.5));
        assert_eq!(below.x, 0.0 - 1.0);
        // A coordinate exactly on an edge is its own class.
        assert_eq!(snapper.snap(Point::new(3.0, 1.4)).x, 3.0);
    }

    #[test]
    fn rects_intersecting_filters_by_area() {
        let ds = dataset();
        let asp = AspInstance::build(&ds, RegionSize::new(1.0, 1.0), None, 1e-12);
        let area = Rect::new(1.0, 1.0, 2.5, 2.5);
        let hits = asp.rects_intersecting(&area);
        assert_eq!(hits, vec![0]);
        let everything = asp.rects_intersecting(&asp.space().unwrap());
        assert_eq!(everything.len(), 3);
    }
}
