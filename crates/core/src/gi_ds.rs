//! The GI-DS algorithm (Algorithm 2, Section 5).
//!
//! GI-DS exploits the locality of the ASRS problem: the representation of a
//! candidate region is determined only by the objects inside it.  A
//! query-independent grid index is consulted to compute, for every index
//! cell, a lower bound on the distance of all candidate regions whose
//! bottom-left corner lies in the cell (Section 5.3).  Index cells are then
//! searched best-first with DS-Search until the remaining cells cannot beat
//! the best distance found so far.

use crate::asp::AspInstance;
use crate::best::BestSet;
use crate::budget::Budget;
use crate::config::SearchConfig;
use crate::ds_search::DsSearch;
use crate::error::AsrsError;
use crate::grid_index::GridIndex;
use crate::query::AsrsQuery;
use crate::result::SearchResult;
use crate::stats::SearchStats;
use asrs_aggregator::CompositeAggregator;
use asrs_data::Dataset;
use asrs_geo::Rect;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// The grid-index-accelerated DS-Search solver.
pub struct GiDsSearch<'a> {
    dataset: &'a Dataset,
    aggregator: &'a CompositeAggregator,
    index: &'a GridIndex,
    config: SearchConfig,
}

struct CellEntry {
    lb: f64,
    col: usize,
    row: usize,
}

impl PartialEq for CellEntry {
    fn eq(&self, other: &Self) -> bool {
        self.lb == other.lb
    }
}

impl Eq for CellEntry {}

impl PartialOrd for CellEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CellEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.lb.partial_cmp(&self.lb).unwrap_or(Ordering::Equal)
    }
}

impl<'a> GiDsSearch<'a> {
    /// Creates a solver using a pre-built grid index.
    pub fn new(
        dataset: &'a Dataset,
        aggregator: &'a CompositeAggregator,
        index: &'a GridIndex,
    ) -> Self {
        Self::with_config(dataset, aggregator, index, SearchConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(
        dataset: &'a Dataset,
        aggregator: &'a CompositeAggregator,
        index: &'a GridIndex,
        config: SearchConfig,
    ) -> Self {
        Self {
            dataset,
            aggregator,
            index,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Solves the ASRS problem exactly (or with the δ configured in
    /// [`SearchConfig::delta`]).
    ///
    /// # Errors
    ///
    /// [`AsrsError::Query`] when the query does not match the aggregator;
    /// [`AsrsError::Config`] when the configuration is invalid.
    pub fn search(&self, query: &AsrsQuery) -> Result<SearchResult, AsrsError> {
        self.search_within(query, None)
    }

    /// Like [`GiDsSearch::search`], with an optional wall-clock budget:
    /// the budget is polled at every opened index cell and every sub-space
    /// of the inner DS-Search, and the search aborts with
    /// [`AsrsError::DeadlineExceeded`] once spent.
    pub fn search_within(
        &self,
        query: &AsrsQuery,
        budget: Option<Budget>,
    ) -> Result<SearchResult, AsrsError> {
        self.run(query, self.config.clone(), 1, budget)?
            .into_iter()
            .next()
            .ok_or_else(crate::best::no_finite_candidate)
    }

    /// Solves the (1+δ)-approximate ASRS problem (Section 6): the returned
    /// region's distance is at most `(1 + delta)` times the optimum.
    ///
    /// # Errors
    ///
    /// [`AsrsError::Config`] when `delta` is negative or not finite, plus
    /// the same errors as [`GiDsSearch::search`].
    pub fn search_approx(&self, query: &AsrsQuery, delta: f64) -> Result<SearchResult, AsrsError> {
        let config = self.config.clone().with_delta(delta)?;
        self.run(query, config, 1, None)?
            .into_iter()
            .next()
            .ok_or_else(crate::best::no_finite_candidate)
    }

    /// Returns the `k` best candidate regions with pairwise distinct
    /// anchors, best first (see [`DsSearch::search_top_k`]).
    ///
    /// # Errors
    ///
    /// [`AsrsError::InvalidTopK`] when `k` is zero, plus the same errors as
    /// [`GiDsSearch::search`].
    pub fn search_top_k(
        &self,
        query: &AsrsQuery,
        k: usize,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        self.search_top_k_within(query, k, None)
    }

    /// Like [`GiDsSearch::search_top_k`], with an optional wall-clock
    /// budget (see [`GiDsSearch::search_within`]).
    pub fn search_top_k_within(
        &self,
        query: &AsrsQuery,
        k: usize,
        budget: Option<Budget>,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        if k == 0 {
            return Err(AsrsError::InvalidTopK);
        }
        self.run(query, self.config.clone(), k, budget)
    }

    fn run(
        &self,
        query: &AsrsQuery,
        config: SearchConfig,
        k: usize,
        budget: Option<Budget>,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        query.validate(self.aggregator)?;
        config.validate()?;
        if let Some(b) = budget {
            b.check()?;
        }
        let started = Instant::now();
        let mut stats = SearchStats::new();
        let asp = AspInstance::build(
            self.dataset,
            query.size,
            config.accuracy,
            config.accuracy_floor,
        );
        stats.rectangles = asp.rects().len() as u64;
        let inner = DsSearch::with_config(self.dataset, self.aggregator, config.clone());
        let mut best = BestSet::new(k);
        inner.seed_empty_region(&asp, query, &mut best);
        let spec = self.index.spec();
        stats.index_cells_total = spec.num_cells() as u64;

        if let Some(space) = asp.space() {
            // 1. Candidate regions whose bottom-left corner lies outside the
            //    indexed area (the margin left of / below the dataset's
            //    bounding box introduced by the ASP reduction) are searched
            //    unconditionally; the margin is at most one query width tall
            //    or wide, so this is cheap.
            for margin in margin_spaces(&space, spec.space()) {
                let candidates = inner.contributing(&asp, asp.rects_intersecting(&margin));
                inner.search_space(
                    &asp,
                    query,
                    margin,
                    candidates,
                    &mut best,
                    &mut stats,
                    budget.as_ref(),
                )?;
            }

            // 2. Rank index cells by their lower bound.
            let mut heap: BinaryHeap<CellEntry> = BinaryHeap::new();
            let eps_x = 1e-9 * (spec.cell_width() + query.size.width);
            let eps_y = 1e-9 * (spec.cell_height() + query.size.height);
            for row in 0..spec.rows() {
                for col in 0..spec.cols() {
                    let cell = spec.cell_rect(col, row);
                    if !cell.intersects(&space) {
                        continue;
                    }
                    // Bounded region: covered by every candidate region
                    // anchored in the cell; bounding region: covers every
                    // such candidate (Definition 9).  Shrink / expand by a
                    // hair so boundary objects never flip the wrong way.
                    let bounded = Rect::new(
                        cell.max_x + eps_x,
                        cell.max_y + eps_y,
                        (cell.min_x + query.size.width - eps_x).max(cell.max_x + eps_x),
                        (cell.min_y + query.size.height - eps_y).max(cell.max_y + eps_y),
                    );
                    let bounding = Rect::new(
                        cell.min_x - eps_x,
                        cell.min_y - eps_y,
                        cell.max_x + query.size.width + eps_x,
                        cell.max_y + query.size.height + eps_y,
                    );
                    let lower = if bounded.width() > 2.0 * eps_x && bounded.height() > 2.0 * eps_y {
                        self.index.stats_of_cells_contained(&bounded)
                    } else {
                        vec![0.0; self.aggregator.stats_dim()]
                    };
                    let upper = self.index.stats_of_cells_overlapping(&bounding);
                    let lb = self.aggregator.lower_bound_distance(
                        &query.target,
                        &lower,
                        &upper,
                        &query.weights,
                        query.metric,
                    );
                    heap.push(CellEntry { lb, col, row });
                }
            }

            // 3. Search cells best-first until no cell can improve the
            //    result (or improve it by more than the (1+δ) factor).
            while let Some(entry) = heap.pop() {
                if let Some(b) = budget {
                    b.check()?;
                }
                if entry.lb >= best.cutoff() / config.prune_factor() {
                    break;
                }
                stats.index_cells_searched += 1;
                let cell_space = spec.cell_rect(entry.col, entry.row);
                let candidates = inner.contributing(&asp, asp.rects_intersecting(&cell_space));
                inner.search_space(
                    &asp,
                    query,
                    cell_space,
                    candidates,
                    &mut best,
                    &mut stats,
                    budget.as_ref(),
                )?;
            }
        }

        stats.elapsed = started.elapsed();
        Ok(crate::best::best_to_results(best, query.size, stats))
    }
}

/// The parts of the ASP search space not covered by the index grid: an
/// L-shaped margin to the left of and below the indexed area.
fn margin_spaces(asp_space: &Rect, index_space: &Rect) -> Vec<Rect> {
    let mut out = Vec::new();
    if asp_space.min_x < index_space.min_x {
        out.push(Rect::new(
            asp_space.min_x,
            asp_space.min_y,
            index_space.min_x,
            asp_space.max_y,
        ));
    }
    if asp_space.min_y < index_space.min_y {
        out.push(Rect::new(
            index_space.min_x.max(asp_space.min_x),
            asp_space.min_y,
            asp_space.max_x,
            index_space.min_y,
        ));
    }
    out.retain(|r| r.width() > 0.0 && r.height() > 0.0 && r.intersects(asp_space));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_aggregator::{FeatureVector, Selection, Weights};
    use asrs_data::gen::{TweetGenerator, UniformGenerator};
    use asrs_geo::RegionSize;

    #[test]
    fn margin_spaces_cover_the_reduction_offset() {
        let asp_space = Rect::new(-2.0, -3.0, 10.0, 10.0);
        let index_space = Rect::new(0.0, 0.0, 10.0, 10.0);
        let margins = margin_spaces(&asp_space, &index_space);
        assert_eq!(margins.len(), 2);
        // Together with the index space, the margins cover the ASP space.
        let covered_area: f64 = margins.iter().map(|m| m.area()).sum::<f64>() + index_space.area();
        assert!((covered_area - asp_space.area()).abs() < 1e-9);
    }

    #[test]
    fn margin_spaces_empty_when_index_covers_everything() {
        let space = Rect::new(0.0, 0.0, 5.0, 5.0);
        assert!(margin_spaces(&space, &Rect::new(-1.0, -1.0, 6.0, 6.0)).is_empty());
    }

    #[test]
    fn gi_ds_matches_ds_search_exactly() {
        let ds = UniformGenerator::default().generate(600, 77);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let index = GridIndex::build(&ds, &agg, 24, 24).unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(9.0, 7.0),
            FeatureVector::new(vec![4.0, 2.0, 1.0, 3.0]),
            Weights::uniform(4),
        );
        let plain = DsSearch::new(&ds, &agg).search(&query).unwrap();
        let indexed = GiDsSearch::new(&ds, &agg, &index).search(&query).unwrap();
        assert!(
            (plain.distance - indexed.distance).abs() < 1e-9,
            "DS {} vs GI-DS {}",
            plain.distance,
            indexed.distance
        );
    }

    #[test]
    fn gi_ds_prunes_most_index_cells() {
        let ds = TweetGenerator::compact(8).generate(2000, 3);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("day_of_week", Selection::All)
            .build()
            .unwrap();
        let index = GridIndex::build(&ds, &agg, 32, 32).unwrap();
        // A weekend-heavy target, as in the paper's composite aggregator F1.
        let query = AsrsQuery::new(
            RegionSize::new(60.0, 60.0),
            FeatureVector::new(vec![0.0, 0.0, 0.0, 0.0, 0.0, 40.0, 40.0]),
            Weights::new(vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.5, 0.5]),
        );
        let result = GiDsSearch::new(&ds, &agg, &index).search(&query).unwrap();
        let ratio = result.stats.index_search_ratio().unwrap();
        assert!(
            ratio < 0.6,
            "expected pruning, searched {:.0}%",
            ratio * 100.0
        );
        assert!(result.stats.index_cells_total >= 1024);
    }

    #[test]
    fn approximate_search_respects_guarantee_and_prunes_more() {
        let ds = UniformGenerator::default().generate(800, 11);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let index = GridIndex::build(&ds, &agg, 32, 32).unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(10.0, 10.0),
            FeatureVector::new(vec![6.0, 6.0, 6.0, 6.0]),
            Weights::uniform(4),
        );
        let solver = GiDsSearch::new(&ds, &agg, &index);
        let exact = solver.search(&query).unwrap();
        for delta in [0.1, 0.2, 0.4] {
            let approx = solver.search_approx(&query, delta).unwrap();
            assert!(
                approx.distance <= (1.0 + delta) * exact.distance + 1e-9,
                "δ={delta}: {} vs optimal {}",
                approx.distance,
                exact.distance
            );
            assert!(
                approx.stats.index_cells_searched <= exact.stats.index_cells_searched,
                "approximation must not search more cells"
            );
        }
    }

    #[test]
    fn result_representation_is_consistent_with_the_region() {
        let ds = UniformGenerator::default().generate(400, 21);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let index = GridIndex::build(&ds, &agg, 16, 16).unwrap();
        let example = Rect::new(5.0, 60.0, 30.0, 80.0);
        let query = AsrsQuery::from_example_region(&ds, &agg, &example).unwrap();
        let result = GiDsSearch::new(&ds, &agg, &index).search(&query).unwrap();
        let rep = agg.aggregate_region(&ds, &result.region);
        let d = agg.distance(&rep, &query.target, &query.weights, query.metric);
        assert!((d - result.distance).abs() < 1e-9);
        assert!(result.distance <= 1e-9, "the example region itself matches");
    }
}
