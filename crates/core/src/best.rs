//! The intermediate-result container shared by every search backend.
//!
//! DS-Search's pseudo-code tracks a single best-so-far candidate `d_opt`.
//! [`BestSet`] generalises that to the *k* best candidates with pairwise
//! distinct anchors, which is what `search_top_k` needs: with capacity 1 it
//! behaves exactly like the scalar tracker (its [`BestSet::cutoff`] is the
//! current best distance), with capacity k the cutoff is the k-th best
//! distance, which keeps every pruning rule of the paper sound — a
//! sub-space or index cell may be dropped only when it cannot contribute
//! any of the k best anchors.

use crate::asp::EdgeSnapper;
use crate::error::AsrsError;
use crate::result::SearchResult;
use crate::stats::SearchStats;
use asrs_aggregator::FeatureVector;
use asrs_geo::{Point, Rect, RegionSize};
use std::sync::Arc;

/// The error a search reports when it retained no candidate at all: every
/// offered distance — the empty-region seed's included — was non-finite.
/// Reachable only with a pathological aggregator/metric combination (e.g.
/// an L2 distance overflowing to ∞ on a ~1e200 target), and reported as a
/// value rather than the panic the old `.expect("the empty-region
/// candidate guarantees one result")` call sites produced.
pub(crate) fn no_finite_candidate() -> AsrsError {
    AsrsError::Internal {
        message: "search retained no candidate: every offered distance was non-finite".to_string(),
    }
}

/// One retained candidate: an ASP answer point with its distance and
/// aggregate representation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BestEntry {
    pub distance: f64,
    pub anchor: Point,
    pub representation: FeatureVector,
}

/// The `k` best candidates seen so far, ordered by ascending distance,
/// with pairwise distinct anchor points.
///
/// Ties are broken deterministically: entries with equal distances are
/// ordered by anchor `(y, x)`, and a full set replaces its worst entry
/// whenever a new candidate precedes it under that total order.  The final
/// contents therefore do not depend on the order in which equally-good
/// candidates were discovered, which is what makes batch and top-k answers
/// reproducible across runs and thread schedules.
#[derive(Debug, Clone)]
pub(crate) struct BestSet {
    capacity: usize,
    entries: Vec<BestEntry>,
    /// Candidates rejected because their distance was not finite; surfaced
    /// as [`SearchStats::non_finite_candidates`](crate::SearchStats).
    non_finite_rejected: u64,
    /// When set, every offered anchor is snapped to the canonical
    /// representative of its arrangement cell first (see [`EdgeSnapper`]),
    /// so the retained anchors — and the tie-break among them — no longer
    /// depend on which decomposition of the space produced the probes.
    /// This is the determinism contract of the sharded executor.
    snapper: Option<Arc<EdgeSnapper>>,
}

/// Strict "precedes" under the total order (distance, anchor.y, anchor.x).
/// Distances are finite because [`BestSet::offer`] rejects non-finite ones
/// at the insertion boundary, so `total_cmp` ties exactly with `==` on the
/// values that reach the set.
fn precedes(d_a: f64, a: &Point, d_b: f64, b: &Point) -> bool {
    d_a.total_cmp(&d_b)
        .then(a.y.total_cmp(&b.y))
        .then(a.x.total_cmp(&b.x))
        .is_lt()
}

impl BestSet {
    pub fn new(capacity: usize) -> Self {
        debug_assert!(capacity >= 1);
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
            non_finite_rejected: 0,
            snapper: None,
        }
    }

    /// A set that snaps every offered anchor to its arrangement-cell
    /// representative (decomposition-independent anchors; see
    /// [`EdgeSnapper`]).
    pub fn with_snapper(capacity: usize, snapper: Arc<EdgeSnapper>) -> Self {
        let mut set = Self::new(capacity);
        set.snapper = Some(snapper);
        set
    }

    /// Number of candidates rejected for a non-finite distance.
    pub fn non_finite_rejected(&self) -> u64 {
        self.non_finite_rejected
    }

    /// The pruning threshold: no candidate with a distance at or above the
    /// cutoff can improve the set.
    #[inline]
    pub fn cutoff(&self) -> f64 {
        if self.entries.len() < self.capacity {
            f64::INFINITY
        } else {
            self.entries
                .last()
                .map(|e| e.distance)
                .unwrap_or(f64::INFINITY)
        }
    }

    /// Offers a candidate; it is inserted when it improves the set — a
    /// better distance than the current worst, an equal distance with an
    /// anchor that precedes the worst's, or a better distance for an
    /// already-retained anchor.
    ///
    /// A non-finite distance (NaN/∞ from a pathological aggregator) would
    /// silently corrupt the `(distance, anchor.y, anchor.x)` total order —
    /// `total_cmp` sorts NaN *above* ∞, so a NaN entry could pin the cutoff
    /// at a value every real candidate "fails" to beat.  Such candidates
    /// are rejected here, at the single insertion boundary shared by every
    /// backend, and counted (see [`BestSet::non_finite_rejected`]).
    pub fn offer(&mut self, distance: f64, anchor: Point, representation: FeatureVector) {
        if !distance.is_finite() {
            self.non_finite_rejected += 1;
            return;
        }
        let anchor = match &self.snapper {
            Some(snapper) => snapper.snap(anchor),
            None => anchor,
        };
        self.offer_at(distance, anchor, representation);
    }

    /// Offers one candidate per arrangement cell of a uniform-covering
    /// region.
    ///
    /// The searches evaluate whole windows (clean cells, resolve-window
    /// fragments) whose covering — hence distance and representation — is
    /// constant, but which generically span several *global* arrangement
    /// cells: distinct, equally good candidates.  Without a snapper the
    /// region is represented by its centre probe, exactly as before.  With
    /// a snapper every arrangement cell inside the region is offered, so
    /// the retained candidates do not depend on how the space was carved
    /// into windows — the decomposition-independence the sharded executor
    /// relies on.  A full set skips the enumeration when even the region's
    /// minimal representative (all share `distance`; the order is
    /// `(distance, y, x)`) cannot improve it.
    pub fn offer_region(&mut self, distance: f64, region: &Rect, representation: FeatureVector) {
        let Some(snapper) = self.snapper.clone() else {
            self.offer(distance, region.center(), representation);
            return;
        };
        if !distance.is_finite() {
            self.non_finite_rejected += 1;
            return;
        }
        let xs = snapper.x_reps_within(region.min_x, region.max_x);
        let ys = snapper.y_reps_within(region.min_y, region.max_y);
        if self.entries.len() >= self.capacity {
            let y0 = *ys
                .first()
                // lint:allow(axis_reps always yields >= 1 representative for a non-degenerate range; an empty list is a snapper bug worth a loud stop)
                .expect("axis_reps yields at least one representative");
            let x0 = *xs
                .first()
                // lint:allow(axis_reps always yields >= 1 representative for a non-degenerate range; an empty list is a snapper bug worth a loud stop)
                .expect("axis_reps yields at least one representative");
            // lint:allow(entries.len() >= capacity >= 1 inside this branch, so last() cannot be None)
            let worst = self.entries.last().expect("capacity >= 1");
            // Equal anchors always carry equal distances (a cell's
            // covering determines both), so a region that cannot precede
            // the worst entry cannot change the set at all.
            if !precedes(distance, &Point::new(x0, y0), worst.distance, &worst.anchor) {
                return;
            }
        }
        for &y in &ys {
            for &x in &xs {
                self.offer_at(distance, Point::new(x, y), representation.clone());
            }
        }
    }

    /// The insertion core shared by [`BestSet::offer`] (which snaps first
    /// when a snapper is attached) and [`BestSet::offer_region`] (whose
    /// representatives are canonical already).
    fn offer_at(&mut self, distance: f64, anchor: Point, representation: FeatureVector) {
        if let Some(existing) = self.entries.iter().position(|e| e.anchor == anchor) {
            if distance < self.entries[existing].distance {
                self.entries.remove(existing);
            } else {
                return;
            }
        } else if self.entries.len() >= self.capacity {
            // lint:allow(entries.len() >= capacity >= 1 inside this branch, so last() cannot be None)
            let worst = self.entries.last().expect("capacity >= 1");
            if !precedes(distance, &anchor, worst.distance, &worst.anchor) {
                return;
            }
        }
        let at = self
            .entries
            .partition_point(|e| precedes(e.distance, &e.anchor, distance, &anchor));
        self.entries.insert(
            at,
            BestEntry {
                distance,
                anchor,
                representation,
            },
        );
        self.entries.truncate(self.capacity);
    }

    /// The single best entry.  Panics when the set is empty; every search
    /// seeds the set with the empty-region candidate before offering more.
    #[cfg(test)]
    pub fn best(&self) -> &BestEntry {
        &self.entries[0]
    }

    /// All retained entries, best first.
    pub fn into_entries(self) -> Vec<BestEntry> {
        self.entries
    }
}

/// Converts a finished [`BestSet`] into search results, best first.  The
/// search statistics describe the whole run, so each result carries a copy.
pub(crate) fn best_to_results(
    best: BestSet,
    size: RegionSize,
    mut stats: SearchStats,
) -> Vec<SearchResult> {
    stats.non_finite_candidates += best.non_finite_rejected();
    best.into_entries()
        .into_iter()
        .map(|e| {
            SearchResult::new(
                e.anchor,
                Rect::from_bottom_left(e.anchor, size),
                e.distance,
                e.representation,
                stats.clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer(set: &mut BestSet, d: f64, x: f64) {
        set.offer(d, Point::new(x, 0.0), FeatureVector::new(vec![d]));
    }

    #[test]
    fn capacity_one_behaves_like_a_scalar_tracker() {
        let mut set = BestSet::new(1);
        assert_eq!(set.cutoff(), f64::INFINITY);
        offer(&mut set, 5.0, 1.0);
        assert_eq!(set.cutoff(), 5.0);
        offer(&mut set, 7.0, 2.0); // worse: rejected
        assert_eq!(set.best().distance, 5.0);
        offer(&mut set, 2.0, 3.0);
        assert_eq!(set.best().distance, 2.0);
        assert_eq!(set.cutoff(), 2.0);
    }

    #[test]
    fn keeps_the_k_best_in_order() {
        let mut set = BestSet::new(3);
        for (d, x) in [(4.0, 1.0), (1.0, 2.0), (3.0, 3.0), (2.0, 4.0), (5.0, 5.0)] {
            offer(&mut set, d, x);
        }
        let distances: Vec<f64> = set.into_entries().iter().map(|e| e.distance).collect();
        assert_eq!(distances, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn cutoff_is_the_kth_distance_once_full() {
        let mut set = BestSet::new(2);
        assert_eq!(set.cutoff(), f64::INFINITY);
        offer(&mut set, 4.0, 1.0);
        assert_eq!(set.cutoff(), f64::INFINITY);
        offer(&mut set, 6.0, 2.0);
        assert_eq!(set.cutoff(), 6.0);
        offer(&mut set, 1.0, 3.0);
        assert_eq!(set.cutoff(), 4.0);
    }

    #[test]
    fn duplicate_anchors_keep_the_better_distance() {
        let mut set = BestSet::new(3);
        offer(&mut set, 4.0, 1.0);
        offer(&mut set, 2.0, 1.0); // same anchor, better: replaces
        assert_eq!(set.into_entries().len(), 1);

        let mut set = BestSet::new(3);
        offer(&mut set, 2.0, 1.0);
        offer(&mut set, 4.0, 1.0); // same anchor, worse: ignored
        let entries = set.into_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].distance, 2.0);
    }

    #[test]
    fn equal_distances_with_distinct_anchors_all_fit() {
        let mut set = BestSet::new(3);
        offer(&mut set, 1.0, 1.0);
        offer(&mut set, 1.0, 2.0);
        offer(&mut set, 1.0, 3.0);
        assert_eq!(set.into_entries().len(), 3);
    }

    #[test]
    fn non_finite_distances_are_rejected_and_counted() {
        // Regression test: a NaN distance used to be inserted and, because
        // total_cmp orders NaN above +inf, could corrupt the top-k order
        // and freeze the pruning cutoff.  It must be skipped instead.
        let mut set = BestSet::new(2);
        offer(&mut set, 3.0, 1.0);
        offer(&mut set, f64::NAN, 2.0);
        offer(&mut set, f64::INFINITY, 3.0);
        offer(&mut set, f64::NEG_INFINITY, 4.0);
        offer(&mut set, 1.0, 5.0);
        assert_eq!(set.non_finite_rejected(), 3);
        assert_eq!(set.cutoff(), 3.0, "cutoff must ignore rejected entries");
        let entries = set.into_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].distance, 1.0);
        assert_eq!(entries[1].distance, 3.0);
        assert!(entries.iter().all(|e| e.distance.is_finite()));
    }

    #[test]
    fn rejected_candidates_surface_in_search_stats() {
        let mut set = BestSet::new(1);
        offer(&mut set, f64::NAN, 1.0);
        offer(&mut set, 2.0, 2.0);
        let results = best_to_results(set, RegionSize::new(1.0, 1.0), SearchStats::new());
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].stats.non_finite_candidates, 1);
    }

    #[test]
    fn tie_breaking_is_independent_of_offer_order() {
        // Six candidates, two of them tied at the capacity boundary: every
        // permutation of the offer order must retain the same entries in
        // the same order (ties broken by anchor).
        let candidates = [
            (2.0, 5.0),
            (1.0, 9.0),
            (2.0, 1.0),
            (3.0, 4.0),
            (2.0, 3.0),
            (0.5, 7.0),
        ];
        let mut reference: Option<Vec<(f64, f64)>> = None;
        for rotation in 0..candidates.len() {
            let mut set = BestSet::new(3);
            for i in 0..candidates.len() {
                let (d, x) = candidates[(i + rotation) % candidates.len()];
                offer(&mut set, d, x);
            }
            let got: Vec<(f64, f64)> = set
                .into_entries()
                .iter()
                .map(|e| (e.distance, e.anchor.x))
                .collect();
            match &reference {
                None => reference = Some(got),
                Some(expected) => assert_eq!(&got, expected, "rotation {rotation}"),
            }
        }
        // The retained set is the 3 smallest under (distance, y, x):
        // 0.5, 1.0, then the tie at 2.0 won by the smaller x.
        assert_eq!(reference.unwrap(), vec![(0.5, 7.0), (1.0, 9.0), (2.0, 1.0)]);
    }
}
