//! Per-request execution budgets (deadlines).
//!
//! A [`Budget`] is a wall-clock allowance attached to a single query
//! submission.  The search backends poll it at their coarse-grained
//! progress points — every sub-space popped by DS-Search, every index cell
//! opened by GI-DS, every probe column of the naive oracle — and abort with
//! [`AsrsError::DeadlineExceeded`] once the allowance is spent.  Polling at
//! those points keeps the overhead to one `Instant::now()` per unit of real
//! work while still bounding how far a pathological discretize–split
//! recursion can overrun its deadline.

use crate::error::AsrsError;
use std::time::{Duration, Instant};

/// A wall-clock execution budget for one request.
///
/// Budgets are created at submission time ([`Budget::new`] starts the clock
/// immediately) and passed by value — the type is `Copy` — down the search
/// recursion.  They deliberately do not serialize: a deadline is an
/// execution-side concept, while the serializable
/// [`QueryRequest`](crate::QueryRequest) carries the *allowance* in
/// milliseconds and the engine converts it into a running budget when the
/// request is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    deadline: Instant,
    allotted: Duration,
}

impl Budget {
    /// Starts a budget of `allotted` wall-clock time, counting from now.
    pub fn new(allotted: Duration) -> Self {
        Self {
            // Saturate far in the future on overflow rather than panicking
            // for absurd allowances.
            deadline: Instant::now()
                .checked_add(allotted)
                .unwrap_or_else(|| Instant::now() + Duration::from_secs(86_400)),
            allotted,
        }
    }

    /// The total allowance this budget started with.
    pub fn allotted(&self) -> Duration {
        self.allotted
    }

    /// Whether the budget is already spent.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.deadline
    }

    /// Time left before the deadline (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_duration_since(Instant::now())
    }

    /// Returns [`AsrsError::DeadlineExceeded`] once the budget is spent.
    ///
    /// This is the polling point the search backends call at every unit of
    /// coarse-grained work.
    #[inline]
    pub fn check(&self) -> Result<(), AsrsError> {
        if self.expired() {
            Err(AsrsError::DeadlineExceeded {
                budget: self.allotted,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_budget_passes_checks() {
        let b = Budget::new(Duration::from_secs(60));
        assert!(!b.expired());
        assert!(b.check().is_ok());
        assert!(b.remaining() > Duration::from_secs(59));
        assert_eq!(b.allotted(), Duration::from_secs(60));
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let b = Budget::new(Duration::ZERO);
        assert!(b.expired());
        assert_eq!(b.remaining(), Duration::ZERO);
        assert_eq!(
            b.check(),
            Err(AsrsError::DeadlineExceeded {
                budget: Duration::ZERO
            })
        );
    }
}
