//! Search results.

use crate::SearchStats;
use asrs_aggregator::FeatureVector;
use asrs_geo::{Point, Rect};
use serde::{Deserialize, Serialize};

/// The answer to an ASRS query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// The most similar region of size `a × b` found by the search.
    pub region: Rect,
    /// The ASP answer point — the bottom-left corner of [`SearchResult::region`]
    /// (Theorem 1).
    pub anchor: Point,
    /// The weighted distance between the region's aggregate representation
    /// and the query representation.
    pub distance: f64,
    /// The aggregate representation of the returned region.
    pub representation: FeatureVector,
    /// Instrumentation collected during the search.
    pub stats: SearchStats,
}

impl SearchResult {
    /// Creates a result.  Used by the built-in search algorithms and by
    /// external [`SearchAlgorithm`](crate::SearchAlgorithm) backends that
    /// adapt their native answer types to the engine's result shape.
    pub fn new(
        anchor: Point,
        region: Rect,
        distance: f64,
        representation: FeatureVector,
        stats: SearchStats,
    ) -> Self {
        Self {
            region,
            anchor,
            distance,
            representation,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_holds_its_fields() {
        let r = SearchResult::new(
            Point::new(1.0, 2.0),
            Rect::new(1.0, 2.0, 3.0, 4.0),
            0.5,
            FeatureVector::new(vec![1.0]),
            SearchStats::default(),
        );
        assert_eq!(r.anchor, Point::new(1.0, 2.0));
        assert_eq!(r.region.bottom_left(), r.anchor);
        assert_eq!(r.distance, 0.5);
        assert_eq!(r.representation.as_slice(), &[1.0]);
    }
}
