//! Deterministic-schedule model checking for the engine's lock protocol.
//!
//! This module only compiles under `--features model`.  It provides
//! API-compatible [`Mutex`] / [`RwLock`] wrappers whose acquire and
//! release operations are *yield points*: when a lock operation happens
//! on a thread registered with an active [`Explorer`] run, the thread
//! parks and a controller decides which thread proceeds next.  The
//! explorer then enumerates **every** interleaving of those yield points
//! (bounded by [`Explorer::max_schedules`] / [`Explorer::max_steps`]),
//! checking each schedule for:
//!
//! * **deadlock** — no parked thread's pending operation can be granted;
//! * **lock-order cycles** — an acquisition edge `A → B` observed in any
//!   schedule while `B → A` was observed earlier (same run or a previous
//!   one) is a potential deadlock even if no explored schedule hung;
//! * **undeclared edges** — when a declared order
//!   ([`Explorer::declared_order`], generated from the committed
//!   `crates/interlock/LOCK_ORDER.md` manifest) is provided, any edge
//!   between *named* locks outside the declaration fails the run;
//! * **blocking while holding a lock** — [`blocking`] marks a blocking
//!   region (I/O, `recv`, serving a request); entering one while holding
//!   a lock not allow-listed via [`Explorer::allow_blocking`] is the
//!   dynamic form of the interlock pass's guard-across-blocking check —
//!   the exact shape of the PR 7 worker-queue bug;
//! * **in-thread assertions** — [`check`] failures abort the run and
//!   report the full schedule trace.
//!
//! Any violation aborts the exploration and is reported with the
//! deterministic schedule trace that produced it, so a failure is
//! replayable by construction.  Code running on threads *not* registered
//! with an active run (the rest of the test suite under
//! `--features model`) passes straight through to `std::sync`.
//!
//! The runner is cooperative, not preemptive: only lock operations and
//! explicit [`blocking`] calls are yield points, which is exactly the
//! granularity the static interlock pass reasons at — the two layers
//! verify the same protocol contract.

#![cfg(feature = "model")]
// The wrapper types mirror `std::sync`; their std-shaped methods
// (`new`, `lock`, `read`, `write`, `into_inner`) keep std's semantics
// and are not re-documented here.
#![allow(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, LockResult, PoisonError, Weak};

type StdMutex<T> = std::sync::Mutex<T>;

/// Thread identifier inside one run (spawn order).
type Tid = usize;

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct ThreadCtx {
    run: Arc<RunShared>,
    /// `None` on the controller thread (it may create locks but its own
    /// operations pass through).
    tid: Option<Tid>,
}

/// Silent unwind token: a thread being torn down after a violation (or a
/// run abort) unwinds with this payload via `resume_unwind`, which skips
/// the panic hook — no stderr noise for schedules the explorer kills on
/// purpose.
struct AbortToken;

/// Silent unwind token carrying a failed [`check`] message.
struct CheckFailed(String);

/// What kind of rule a schedule broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// No parked thread's pending lock operation could be granted.
    Deadlock,
    /// Acquisition edges `A → B` and `B → A` were both observed.
    OrderCycle,
    /// An edge between named locks is missing from the declared order.
    UndeclaredEdge,
    /// A blocking region was entered while holding a non-allow-listed
    /// lock.
    BlockingWhileLocked,
    /// An in-thread [`check`] failed.
    Assertion,
    /// A model thread panicked.
    ThreadPanic,
    /// The per-schedule step bound was exceeded (livelock guard).
    BoundExceeded,
    /// The [`Run::finally`] cross-schedule invariant failed.
    FinalCheck,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::OrderCycle => "lock-order cycle",
            ViolationKind::UndeclaredEdge => "undeclared lock-order edge",
            ViolationKind::BlockingWhileLocked => "blocking while holding a lock",
            ViolationKind::Assertion => "assertion failed",
            ViolationKind::ThreadPanic => "thread panicked",
            ViolationKind::BoundExceeded => "schedule bound exceeded",
            ViolationKind::FinalCheck => "final check failed",
        };
        f.write_str(name)
    }
}

/// A schedule that broke a rule, with the deterministic trace that
/// reproduces it.
#[derive(Debug)]
pub struct ModelViolation {
    pub kind: ViolationKind,
    pub message: String,
    /// Granted yield points, in schedule order, up to the violation.
    pub trace: Vec<String>,
    /// 1-based index of the schedule within the exploration.
    pub schedule: usize,
}

impl fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} (schedule {})",
            self.kind, self.message, self.schedule
        )?;
        writeln!(f, "schedule trace:")?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

impl std::error::Error for ModelViolation {}

/// Summary of a completed (violation-free) exploration.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// Whether every schedule within the bound was explored (`false`
    /// when [`Explorer::max_schedules`] cut the search short).
    pub exhausted: bool,
    /// Deepest schedule in yield points.
    pub max_depth: usize,
    /// Every acquisition-order edge observed across all schedules,
    /// sorted; the dynamic counterpart of the interlock manifest.
    pub edges: Vec<(String, String)>,
}

enum Status {
    /// Parked (waiting to be granted its pending action) or starting up.
    Waiting,
    /// Currently executing between yield points.
    Running,
    Finished,
}

struct ThreadState {
    name: String,
    status: Status,
    /// Held locks as (lock id, write-mode), acquisition order.
    held: Vec<(usize, bool)>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum LockKind {
    Mutex,
    RwLock,
}

struct LockState {
    name: String,
    kind: LockKind,
    writer: Option<Tid>,
    readers: Vec<Tid>,
}

#[derive(Clone)]
enum Action {
    Acquire { lock: usize, write: bool },
    Release { lock: usize, write: bool },
    Blocking(String),
}

enum Turn {
    Controller,
    Thread(Tid),
}

struct Sched {
    turn: Turn,
    aborted: bool,
    threads: Vec<ThreadState>,
    locks: Vec<LockState>,
    pending: Vec<Option<Action>>,
    trace: Vec<String>,
}

struct RunShared {
    sched: StdMutex<Sched>,
    cv: Condvar,
}

impl RunShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Collects the threads (and an optional final invariant) of one
/// schedule; handed to the scenario closure by [`Explorer::explore`].
#[derive(Default)]
pub struct Run {
    threads: Vec<(String, Box<dyn FnOnce() + Send>)>,
    finally: Option<Box<dyn FnOnce() -> Result<(), String>>>,
}

impl Run {
    /// Registers one model thread.  Threads are scheduled in
    /// registration order; names appear in schedule traces.
    pub fn thread<F: FnOnce() + Send + 'static>(&mut self, name: &str, f: F) {
        self.threads.push((name.to_string(), Box::new(f)));
    }

    /// Registers an invariant evaluated by the controller after all
    /// threads of a schedule finished; `Err` aborts the exploration with
    /// a [`ViolationKind::FinalCheck`].
    pub fn finally<F: FnOnce() -> Result<(), String> + 'static>(&mut self, f: F) {
        self.finally = Some(Box::new(f));
    }
}

/// In-thread model assertion: a failure aborts the schedule silently and
/// surfaces as a [`ViolationKind::Assertion`] with the full trace.
pub fn check(condition: bool, message: impl FnOnce() -> String) {
    if !condition {
        resume_unwind(Box::new(CheckFailed(message())));
    }
}

/// Marks a blocking region (I/O, `recv`, serving a response) as a yield
/// point.  Entering one while holding any lock not allow-listed via
/// [`Explorer::allow_blocking`] is a violation — the dynamic analog of
/// the interlock pass's guard-across-blocking check.  A no-op outside an
/// active run.
pub fn blocking(label: &str) {
    let Some(ctx) = current_model_ctx() else {
        return;
    };
    if !yield_act(&ctx, Action::Blocking(label.to_string())) {
        resume_unwind(Box::new(AbortToken));
    }
}

fn current_model_ctx() -> Option<ThreadCtx> {
    CTX.with(|c| c.borrow().clone())
        .filter(|ctx| ctx.tid.is_some())
}

/// Parks the current model thread with `action` pending and waits to be
/// granted.  Returns `false` when the run was aborted instead.
fn yield_act(ctx: &ThreadCtx, action: Action) -> bool {
    let tid = ctx.tid.expect("yield_act on a non-model thread");
    let mut s = ctx.run.lock();
    if s.aborted {
        return false;
    }
    s.pending[tid] = Some(action);
    s.threads[tid].status = Status::Waiting;
    // Hand the turn back only if this thread holds it.  A thread
    // announcing its `Start` has never been granted the turn; blindly
    // writing `Controller` here could stomp a grant the controller just
    // made to another thread and wedge the handshake.
    if matches!(s.turn, Turn::Thread(t) if t == tid) {
        s.turn = Turn::Controller;
    }
    ctx.run.cv.notify_all();
    loop {
        if s.aborted {
            return false;
        }
        if matches!(s.turn, Turn::Thread(t) if t == tid) {
            break;
        }
        s = ctx.run.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
    }
    s.threads[tid].status = Status::Running;
    true
}

/// Registration of a model-managed lock with the run that created it.
struct Registration {
    run: Weak<RunShared>,
    id: usize,
}

impl Registration {
    /// The run + current thread id when this lock op must be scheduled:
    /// the lock belongs to an alive run and the current thread is one of
    /// that run's model threads.  Everything else passes through.
    fn managed(&self) -> Option<(ThreadCtx, usize)> {
        let run = self.run.upgrade()?;
        let ctx = current_model_ctx()?;
        if !Arc::ptr_eq(&ctx.run, &run) {
            return None;
        }
        Some((ctx, self.id))
    }
}

fn register_lock(kind: LockKind, name: Option<&str>) -> Option<Registration> {
    let ctx = CTX.with(|c| c.borrow().clone())?;
    let mut s = ctx.run.lock();
    let id = s.locks.len();
    let name = name.map(str::to_string).unwrap_or_else(|| {
        format!(
            "#{}-{id}",
            if kind == LockKind::Mutex {
                "mutex"
            } else {
                "rwlock"
            }
        )
    });
    s.locks.push(LockState {
        name,
        kind,
        writer: None,
        readers: Vec::new(),
    });
    Some(Registration {
        run: Arc::downgrade(&ctx.run),
        id,
    })
}

/// Announces an acquisition and parks until granted; aborts the thread
/// silently when the run was killed.
fn scheduled_acquire(ctx: &ThreadCtx, id: usize, write: bool) {
    if !yield_act(ctx, Action::Acquire { lock: id, write }) {
        resume_unwind(Box::new(AbortToken));
    }
}

/// Announces a release and parks until granted.  Never unwinds (it runs
/// from guard drops, possibly during an abort unwind): on abort it
/// simply returns and the real guard drops.
fn scheduled_release(reg: &ReleaseOnDrop) {
    let ctx = ThreadCtx {
        run: Arc::clone(&reg.run),
        tid: Some(reg.tid),
    };
    let _ = yield_act(
        &ctx,
        Action::Release {
            lock: reg.id,
            write: reg.write,
        },
    );
}

/// Drop payload carried by guards of managed acquisitions.
struct ReleaseOnDrop {
    run: Arc<RunShared>,
    tid: Tid,
    id: usize,
    write: bool,
}

impl Drop for ReleaseOnDrop {
    fn drop(&mut self) {
        scheduled_release(self);
    }
}

fn release_payload(ctx: &ThreadCtx, id: usize, write: bool) -> ReleaseOnDrop {
    ReleaseOnDrop {
        run: Arc::clone(&ctx.run),
        tid: ctx.tid.expect("managed acquire on a non-model thread"),
        id,
        write,
    }
}

// ---------------------------------------------------------------------------
// The lock wrappers
// ---------------------------------------------------------------------------

/// Model-aware drop-in for `std::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    reg: Option<Registration>,
    inner: StdMutex<T>,
}

/// Guard of [`Mutex::lock`]; releasing it is a scheduler yield point
/// inside a model run.
pub struct MutexGuard<'a, T: ?Sized> {
    // Declaration order is load-bearing: the scheduler must grant the
    // release *before* the real lock frees, so `release` drops first.
    _release: Option<ReleaseOnDrop>,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            reg: register_lock(LockKind::Mutex, None),
            inner: StdMutex::new(value),
        }
    }

    /// A mutex with a stable name in traces, manifests and declared
    /// orders (model builds only; production code uses [`Mutex::new`]
    /// and gets an auto-generated name).
    pub fn named(name: &str, value: T) -> Self {
        Self {
            reg: register_lock(LockKind::Mutex, Some(name)),
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let managed = self.reg.as_ref().and_then(Registration::managed);
        let release = managed.map(|(ctx, id)| {
            scheduled_acquire(&ctx, id, true);
            release_payload(&ctx, id, true)
        });
        match self.inner.lock() {
            Ok(inner) => Ok(MutexGuard {
                _release: release,
                inner,
            }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                _release: release,
                inner: poisoned.into_inner(),
            })),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Model-aware drop-in for `std::sync::RwLock`.
pub struct RwLock<T: ?Sized> {
    reg: Option<Registration>,
    inner: std::sync::RwLock<T>,
}

/// Guard of [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    _release: Option<ReleaseOnDrop>,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Guard of [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    _release: Option<ReleaseOnDrop>,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            reg: register_lock(LockKind::RwLock, None),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// A named rwlock (see [`Mutex::named`]).
    pub fn named(name: &str, value: T) -> Self {
        Self {
            reg: register_lock(LockKind::RwLock, Some(name)),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let managed = self.reg.as_ref().and_then(Registration::managed);
        let release = managed.map(|(ctx, id)| {
            scheduled_acquire(&ctx, id, false);
            release_payload(&ctx, id, false)
        });
        match self.inner.read() {
            Ok(inner) => Ok(RwLockReadGuard {
                _release: release,
                inner,
            }),
            Err(poisoned) => Err(PoisonError::new(RwLockReadGuard {
                _release: release,
                inner: poisoned.into_inner(),
            })),
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let managed = self.reg.as_ref().and_then(Registration::managed);
        let release = managed.map(|(ctx, id)| {
            scheduled_acquire(&ctx, id, true);
            release_payload(&ctx, id, true)
        });
        match self.inner.write() {
            Ok(inner) => Ok(RwLockWriteGuard {
                _release: release,
                inner,
            }),
            Err(poisoned) => Err(PoisonError::new(RwLockWriteGuard {
                _release: release,
                inner: poisoned.into_inner(),
            })),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

/// Bounded-exhaustive schedule explorer.
///
/// ```ignore
/// let report = Explorer::new()
///     .declared_order(&[("engine.mutator", "engine.epoch")])
///     .explore(|run| {
///         let state = Arc::new(Protocol::new());
///         let s = Arc::clone(&state);
///         run.thread("mutator", move || s.mutate());
///         let s = Arc::clone(&state);
///         run.thread("reader", move || s.read());
///     })?;
/// assert!(report.exhausted);
/// ```
pub struct Explorer {
    max_schedules: usize,
    max_steps: usize,
    declared: Option<BTreeMap<String, Vec<String>>>,
    blocking_allowed: Vec<(String, String)>,
}

impl Default for Explorer {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome the controller reports for one schedule.
struct RunOutcome {
    /// Number of enabled threads at every decision point.
    branching: Vec<usize>,
    violation: Option<ModelViolation>,
}

impl Explorer {
    pub fn new() -> Self {
        Self {
            max_schedules: 200_000,
            max_steps: 10_000,
            declared: None,
            blocking_allowed: Vec::new(),
        }
    }

    /// Caps the number of schedules; exceeding it ends the exploration
    /// with `exhausted: false` instead of an error.
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n.max(1);
        self
    }

    /// Caps yield points per schedule (livelock guard).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n.max(1);
        self
    }

    /// Declares the allowed acquisition-order edges between *named*
    /// locks (generate them from `crates/interlock/LOCK_ORDER.md`).  Any
    /// observed edge between named locks outside this set is a
    /// violation; edges involving auto-named (`#mutex-N`) locks are
    /// exempt but still feed cycle detection.
    pub fn declared_order(mut self, edges: &[(&str, &str)]) -> Self {
        let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (from, to) in edges {
            map.entry((*from).to_string())
                .or_default()
                .push((*to).to_string());
        }
        self.declared = Some(map);
        self
    }

    /// Allows holding `lock` across [`blocking`] regions labelled
    /// `label` (the model analog of `// interlock:allow`).
    pub fn allow_blocking(mut self, label: &str, lock: &str) -> Self {
        self.blocking_allowed
            .push((label.to_string(), lock.to_string()));
        self
    }

    /// Runs `scenario` under every schedule within the bounds.  The
    /// scenario is re-invoked per schedule and must be deterministic:
    /// build fresh state, register threads via [`Run::thread`], assert
    /// protocol invariants via [`check`] / [`Run::finally`].
    pub fn explore<S: Fn(&mut Run)>(
        &self,
        scenario: S,
    ) -> Result<ModelReport, Box<ModelViolation>> {
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        let mut max_depth = 0usize;
        // Acquisition edges observed across every schedule so far:
        // (from, to) -> human-readable first-sighting description.
        let mut edges: BTreeMap<(String, String), String> = BTreeMap::new();
        loop {
            if schedules >= self.max_schedules {
                return Ok(ModelReport {
                    schedules,
                    exhausted: false,
                    max_depth,
                    edges: edges.into_keys().collect(),
                });
            }
            schedules += 1;
            let outcome = self.run_schedule(&scenario, &prefix, schedules, &mut edges);
            if let Some(violation) = outcome.violation {
                return Err(Box::new(violation));
            }
            max_depth = max_depth.max(outcome.branching.len());
            // Depth-first advance: bump the deepest decision that still
            // has an unexplored alternative, truncate the rest.
            let taken: Vec<usize> = (0..outcome.branching.len())
                .map(|i| prefix.get(i).copied().unwrap_or(0))
                .collect();
            let mut advanced = false;
            for i in (0..taken.len()).rev() {
                if taken[i] + 1 < outcome.branching[i] {
                    prefix = taken[..=i].to_vec();
                    prefix[i] += 1;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return Ok(ModelReport {
                    schedules,
                    exhausted: true,
                    max_depth,
                    edges: edges.into_keys().collect(),
                });
            }
        }
    }

    /// Executes one schedule following `prefix` (choice 0 beyond it).
    fn run_schedule<S: Fn(&mut Run)>(
        &self,
        scenario: &S,
        prefix: &[usize],
        schedule: usize,
        edges: &mut BTreeMap<(String, String), String>,
    ) -> RunOutcome {
        let shared = Arc::new(RunShared {
            sched: StdMutex::new(Sched {
                turn: Turn::Controller,
                aborted: false,
                threads: Vec::new(),
                locks: Vec::new(),
                pending: Vec::new(),
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
        });

        // The controller registers itself so locks created inside the
        // scenario closure attach to this run; its tid stays `None` so
        // its own lock operations pass through.
        CTX.with(|c| {
            *c.borrow_mut() = Some(ThreadCtx {
                run: Arc::clone(&shared),
                tid: None,
            });
        });
        let mut run = Run::default();
        scenario(&mut run);

        {
            let mut s = shared.lock();
            for (name, _) in &run.threads {
                s.threads.push(ThreadState {
                    name: name.clone(),
                    status: Status::Waiting,
                    held: Vec::new(),
                });
                s.pending.push(None);
            }
        }

        let mut handles = Vec::with_capacity(run.threads.len());
        for (tid, (name, body)) in run.threads.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("model-{name}"))
                    .spawn(move || {
                        CTX.with(|c| {
                            *c.borrow_mut() = Some(ThreadCtx {
                                run: Arc::clone(&shared),
                                tid: Some(tid),
                            });
                        });
                        // No start-up yield: the thread runs free until
                        // its first lock operation parks it.  Start
                        // orderings are behaviorally identical prefixes,
                        // so scheduling them would only multiply the
                        // tree with duplicate schedules.
                        let outcome = catch_unwind(AssertUnwindSafe(body));
                        let mut s = shared.lock();
                        s.threads[tid].status = Status::Finished;
                        s.pending[tid] = None;
                        if let Err(payload) = outcome {
                            if payload.downcast_ref::<AbortToken>().is_none() {
                                let (kind, message) = match payload.downcast_ref::<CheckFailed>() {
                                    Some(failed) => (ViolationKind::Assertion, failed.0.clone()),
                                    None => {
                                        (ViolationKind::ThreadPanic, panic_text(payload.as_ref()))
                                    }
                                };
                                if !s.aborted {
                                    let name = s.threads[tid].name.clone();
                                    abort_with(
                                        &mut s,
                                        kind,
                                        format!("{name}: {message}"),
                                        schedule,
                                    );
                                }
                            }
                        }
                        // Same stomp guard as in `yield_act`: only a
                        // thread that holds the turn hands it back.
                        if matches!(s.turn, Turn::Thread(t) if t == tid) {
                            s.turn = Turn::Controller;
                        }
                        drop(s);
                        shared.cv.notify_all();
                    })
                    .expect("spawn model thread"),
            );
        }

        let outcome = self.drive(&shared, prefix, schedule, edges, run.finally);
        CTX.with(|c| *c.borrow_mut() = None);
        for handle in handles {
            let _ = handle.join();
        }
        outcome
    }

    /// The controller: grants one enabled pending action per decision
    /// point until all threads finish, a rule breaks, or the step bound
    /// trips.
    fn drive(
        &self,
        shared: &Arc<RunShared>,
        prefix: &[usize],
        schedule: usize,
        edges: &mut BTreeMap<(String, String), String>,
        finally: Option<Box<dyn FnOnce() -> Result<(), String>>>,
    ) -> RunOutcome {
        let mut branching = Vec::new();
        let mut s = shared.lock();
        loop {
            // Wait until it is the controller's turn *and* every
            // unfinished thread has parked with a pending action (at run
            // start threads are still announcing themselves).
            loop {
                let ready = matches!(s.turn, Turn::Controller)
                    && s.pending
                        .iter()
                        .zip(&s.threads)
                        .all(|(p, t)| p.is_some() || matches!(t.status, Status::Finished));
                if ready {
                    break;
                }
                s = shared.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
            }
            if let Some(mut violation) = s.take_violation() {
                violation.schedule = schedule;
                drop(s);
                shared.cv.notify_all();
                return RunOutcome {
                    branching,
                    violation: Some(violation),
                };
            }
            if s.threads
                .iter()
                .all(|t| matches!(t.status, Status::Finished))
            {
                drop(s);
                let violation = finally.and_then(|f| {
                    f().err().map(|message| ModelViolation {
                        kind: ViolationKind::FinalCheck,
                        message,
                        trace: shared.lock().trace.clone(),
                        schedule,
                    })
                });
                return RunOutcome {
                    branching,
                    violation,
                };
            }

            let enabled: Vec<Tid> = (0..s.threads.len())
                .filter(|&tid| {
                    s.pending[tid]
                        .as_ref()
                        .is_some_and(|action| s.enabled(action))
                })
                .collect();
            if enabled.is_empty() {
                let violation = self.deadlock_violation(&mut s, schedule);
                s.aborted = true;
                drop(s);
                shared.cv.notify_all();
                return RunOutcome {
                    branching,
                    violation: Some(violation),
                };
            }
            if branching.len() >= self.max_steps {
                let violation = abort_with(
                    &mut s,
                    ViolationKind::BoundExceeded,
                    format!("schedule exceeded {} yield points", self.max_steps),
                    schedule,
                );
                drop(s);
                shared.cv.notify_all();
                return RunOutcome {
                    branching,
                    violation: Some(violation),
                };
            }

            let choice = prefix.get(branching.len()).copied().unwrap_or(0);
            branching.push(enabled.len());
            let tid = enabled[choice.min(enabled.len() - 1)];
            let action = s.pending[tid]
                .take()
                .expect("granted thread has a pending action");
            if let Some(violation) = self.apply(&mut s, tid, &action, schedule, edges) {
                s.aborted = true;
                drop(s);
                shared.cv.notify_all();
                return RunOutcome {
                    branching,
                    violation: Some(violation),
                };
            }
            s.turn = Turn::Thread(tid);
            shared.cv.notify_all();
            // Loop re-waits for the controller's turn.
        }
    }

    /// Applies a granted action to the model lock state and runs the
    /// discipline checks.
    fn apply(
        &self,
        s: &mut Sched,
        tid: Tid,
        action: &Action,
        schedule: usize,
        edges: &mut BTreeMap<(String, String), String>,
    ) -> Option<ModelViolation> {
        let thread = s.threads[tid].name.clone();
        match action {
            Action::Blocking(label) => {
                s.trace.push(format!("{thread}: blocking({label})"));
                let offending: Vec<String> = s.threads[tid]
                    .held
                    .iter()
                    .map(|&(id, _)| s.locks[id].name.clone())
                    .filter(|name| {
                        !self
                            .blocking_allowed
                            .iter()
                            .any(|(l, n)| l == label && n == name)
                    })
                    .collect();
                if offending.is_empty() {
                    None
                } else {
                    Some(violation_from(
                        s,
                        ViolationKind::BlockingWhileLocked,
                        format!(
                            "{thread} entered blocking region `{label}` holding [{}]",
                            offending.join(", ")
                        ),
                        schedule,
                    ))
                }
            }
            Action::Acquire { lock, write } => {
                let name = s.locks[*lock].name.clone();
                let mode = if *write { "acquire" } else { "acquire-read" };
                s.trace.push(format!("{thread}: {mode}({name})"));
                let held_before: Vec<usize> =
                    s.threads[tid].held.iter().map(|&(id, _)| id).collect();
                if *write {
                    s.locks[*lock].writer = Some(tid);
                } else {
                    s.locks[*lock].readers.push(tid);
                }
                s.threads[tid].held.push((*lock, *write));
                for held in held_before {
                    if held == *lock {
                        continue;
                    }
                    let from = s.locks[held].name.clone();
                    let edge = (from.clone(), name.clone());
                    if !edges.contains_key(&edge) {
                        // A path name -> ... -> from in the accumulated
                        // graph plus this new from -> name edge closes a
                        // cycle: both orders are reachable.
                        if let Some(path) = find_path(edges, &name, &from) {
                            return Some(violation_from(
                                s,
                                ViolationKind::OrderCycle,
                                format!(
                                    "{thread} acquires {name} while holding {from}, but the \
                                     reverse order {} was already observed",
                                    path.join(" -> ")
                                ),
                                schedule,
                            ));
                        }
                        if let Some(declared) = &self.declared {
                            let named = !from.starts_with('#') && !name.starts_with('#');
                            let ok = declared
                                .get(&from)
                                .is_some_and(|tos| tos.iter().any(|t| t == &name));
                            if named && !ok {
                                return Some(violation_from(
                                    s,
                                    ViolationKind::UndeclaredEdge,
                                    format!(
                                        "{thread} acquires {name} while holding {from}: edge \
                                         `{from} -> {name}` is not in the declared lock order \
                                         (regenerate LOCK_ORDER.md if this nesting is intended)"
                                    ),
                                    schedule,
                                ));
                            }
                        }
                        edges.insert(edge, format!("{thread} in schedule {schedule}"));
                    }
                }
                None
            }
            Action::Release { lock, write } => {
                let name = s.locks[*lock].name.clone();
                s.trace.push(format!("{thread}: release({name})"));
                if *write {
                    s.locks[*lock].writer = None;
                } else if let Some(at) = s.locks[*lock].readers.iter().position(|&r| r == tid) {
                    s.locks[*lock].readers.remove(at);
                }
                if let Some(at) = s.threads[tid]
                    .held
                    .iter()
                    .rposition(|&(id, w)| id == *lock && w == *write)
                {
                    s.threads[tid].held.remove(at);
                }
                None
            }
        }
    }

    fn deadlock_violation(&self, s: &mut Sched, schedule: usize) -> ModelViolation {
        let mut waiting = Vec::new();
        for (tid, thread) in s.threads.iter().enumerate() {
            if let Some(Action::Acquire { lock, write }) = &s.pending[tid] {
                let holder = holders(s, *lock);
                waiting.push(format!(
                    "{} waits for {}{} held by [{}]",
                    thread.name,
                    s.locks[*lock].name,
                    if *write { "" } else { " (read)" },
                    holder.join(", ")
                ));
            }
        }
        violation_from(
            s,
            ViolationKind::Deadlock,
            format!("no schedulable thread: {}", waiting.join("; ")),
            schedule,
        )
    }
}

fn holders(s: &Sched, lock: usize) -> Vec<String> {
    let state = &s.locks[lock];
    let mut out = Vec::new();
    if let Some(w) = state.writer {
        out.push(s.threads[w].name.clone());
    }
    for &r in &state.readers {
        out.push(s.threads[r].name.clone());
    }
    out
}

fn violation_from(
    s: &Sched,
    kind: ViolationKind,
    message: String,
    schedule: usize,
) -> ModelViolation {
    ModelViolation {
        kind,
        message,
        trace: s.trace.clone(),
        schedule,
    }
}

/// Records a violation raised from a model thread (panic/assert paths)
/// and aborts the run.
fn abort_with(
    s: &mut Sched,
    kind: ViolationKind,
    message: String,
    schedule: usize,
) -> ModelViolation {
    s.aborted = true;
    let violation = violation_from(s, kind, message, schedule);
    s.stash_violation(&violation);
    violation
}

impl Sched {
    fn enabled(&self, action: &Action) -> bool {
        match action {
            Action::Release { .. } | Action::Blocking(_) => true,
            Action::Acquire { lock, write } => {
                let state = &self.locks[*lock];
                match (state.kind, write) {
                    (_, true) => state.writer.is_none() && state.readers.is_empty(),
                    (_, false) => state.writer.is_none(),
                }
            }
        }
    }

    /// Thread-raised violations travel through the trace buffer (the
    /// thread cannot return one to the controller directly): stashed as
    /// a sentinel trace entry, recovered by the controller.
    fn stash_violation(&mut self, violation: &ModelViolation) {
        self.trace
            .push(format!("\u{0}{}\u{0}{}", violation.kind, violation.message));
    }

    fn take_violation(&mut self) -> Option<ModelViolation> {
        let at = self.trace.iter().position(|l| l.starts_with('\u{0}'))?;
        let line = self.trace.remove(at);
        let mut parts = line.trim_start_matches('\u{0}').splitn(2, '\u{0}');
        let kind_text = parts.next().unwrap_or_default().to_string();
        let message = parts.next().unwrap_or_default().to_string();
        let kind = match kind_text.as_str() {
            "assertion failed" => ViolationKind::Assertion,
            _ => ViolationKind::ThreadPanic,
        };
        Some(ModelViolation {
            kind,
            message,
            trace: self.trace.clone(),
            schedule: 0,
        })
    }
}

/// BFS path `from -> ... -> to` through the accumulated edge graph.
fn find_path(
    edges: &BTreeMap<(String, String), String>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(vec![from.to_string()]);
    let mut seen = std::collections::BTreeSet::new();
    seen.insert(from.to_string());
    while let Some(path) = queue.pop_front() {
        let last = path.last().cloned().unwrap_or_default();
        if last == to {
            return Some(path);
        }
        for (a, b) in edges.keys() {
            if a == &last && seen.insert(b.clone()) {
                let mut next = path.clone();
                next.push(b.clone());
                queue.push_back(next);
            }
        }
    }
    None
}

fn panic_text(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
