//! [`EngineHandle`]: cheap, cloneable, thread-safe access to an engine.

use crate::cache::CacheStats;
use crate::engine::{EngineCore, EngineShared};
use crate::error::AsrsError;
use crate::mutate::{MutationReceipt, MutationStats};
use crate::planner::{EngineStatistics, ExecutionPlan};
use crate::query::AsrsQuery;
use crate::request::{QueryRequest, QueryResponse};
use crate::result::SearchResult;
use asrs_aggregator::CompositeAggregator;
use asrs_data::{Dataset, MutationLog, SpatialObject};
use asrs_geo::Rect;
use std::sync::Arc;
use std::time::Duration;

/// A cheap `Clone + Send + Sync` handle to an [`AsrsEngine`](crate::AsrsEngine).
///
/// The handle shares the engine's generational state behind an [`Arc`], so
/// cloning costs one reference-count increment and every clone can
/// [`submit`](EngineHandle::submit) — and mutate, via
/// [`append`](EngineHandle::append) / [`remove`](EngineHandle::remove) —
/// concurrently from its own thread.  Queries snapshot the generation
/// current at submission and are never disturbed by concurrent mutations;
/// mutations serialize among themselves on `engine.mutator` (the handle
/// itself takes no locks — every acquisition it triggers is listed in
/// `crates/interlock/LOCK_ORDER.md`, and the protocol is exhaustively
/// schedule-checked by `cargo test -p asrs-core --features model`).
/// This is the serving topology the ROADMAP's multi-user north star
/// needs:
///
/// ```
/// use asrs_core::{AsrsEngine, QueryRequest};
/// use asrs_aggregator::{CompositeAggregator, Selection};
/// use asrs_data::gen::UniformGenerator;
/// use asrs_geo::Rect;
///
/// let dataset = UniformGenerator::default().generate(300, 7);
/// let aggregator = CompositeAggregator::builder(dataset.schema())
///     .distribution("category", Selection::All)
///     .build()
///     .unwrap();
/// let engine = AsrsEngine::builder(dataset, aggregator)
///     .build_index(16, 16)
///     .build()
///     .unwrap();
///
/// let handle = engine.handle();
/// let query = handle
///     .query_from_example(&Rect::new(10.0, 10.0, 25.0, 25.0))
///     .unwrap();
/// let workers: Vec<_> = (0..4)
///     .map(|_| {
///         let handle = handle.clone();
///         let query = query.clone();
///         std::thread::spawn(move || {
///             handle.submit(&QueryRequest::similar(query)).unwrap()
///         })
///     })
///     .collect();
/// for worker in workers {
///     let response = worker.join().unwrap();
///     assert!(response.best().unwrap().distance <= 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct EngineHandle {
    shared: Arc<EngineShared>,
}

impl EngineHandle {
    pub(crate) fn new(shared: Arc<EngineShared>) -> Self {
        Self { shared }
    }

    /// Snapshots the current generation's core.
    fn core(&self) -> Arc<EngineCore> {
        self.shared.load()
    }

    /// Plans and executes a declarative [`QueryRequest`] (see
    /// [`AsrsEngine::submit`](crate::AsrsEngine::submit)).
    pub fn submit(&self, request: &QueryRequest) -> Result<QueryResponse, AsrsError> {
        self.core().submit(request)
    }

    /// Plans `request` without executing it (see
    /// [`AsrsEngine::plan`](crate::AsrsEngine::plan)).
    pub fn plan(&self, request: &QueryRequest) -> Result<ExecutionPlan, AsrsError> {
        self.core().plan(request)
    }

    /// Answers a batch with one `Result` per query (see
    /// [`AsrsEngine::search_batch_results`](crate::AsrsEngine::search_batch_results)).
    pub fn search_batch_results(
        &self,
        queries: &[AsrsQuery],
    ) -> Result<Vec<Result<SearchResult, AsrsError>>, AsrsError> {
        self.core().batch_results(queries)
    }

    /// The current generation number (see
    /// [`AsrsEngine::generation`](crate::AsrsEngine::generation)).
    pub fn generation(&self) -> u64 {
        self.core().generation
    }

    /// Appends an object, producing a new generation (see
    /// [`AsrsEngine::append`](crate::AsrsEngine::append)).
    pub fn append(&self, object: SpatialObject) -> Result<MutationReceipt, AsrsError> {
        crate::mutate::append(&self.shared, object, None)
    }

    /// Appends an object that expires after `ttl` (see
    /// [`AsrsEngine::append_with_ttl`](crate::AsrsEngine::append_with_ttl)).
    pub fn append_with_ttl(
        &self,
        object: SpatialObject,
        ttl: Duration,
    ) -> Result<MutationReceipt, AsrsError> {
        crate::mutate::append(&self.shared, object, Some(ttl))
    }

    /// Removes the object with id `id` (see
    /// [`AsrsEngine::remove`](crate::AsrsEngine::remove)).
    pub fn remove(&self, id: u64) -> Result<MutationReceipt, AsrsError> {
        crate::mutate::remove(&self.shared, id)
    }

    /// Appends a whole payload as one atomic commit — one generation, one
    /// WAL fsync, one receipt per object (see
    /// [`AsrsEngine::append_batch`](crate::AsrsEngine::append_batch)).
    pub fn append_batch(
        &self,
        items: Vec<(SpatialObject, Option<Duration>)>,
    ) -> Result<Vec<MutationReceipt>, AsrsError> {
        crate::mutate::append_batch(&self.shared, items)
    }

    /// Expires every TTL'd object whose deadline has passed (see
    /// [`AsrsEngine::sweep_expired`](crate::AsrsEngine::sweep_expired)).
    pub fn sweep_expired(&self) -> Result<Vec<MutationReceipt>, AsrsError> {
        crate::mutate::sweep_expired(&self.shared)
    }

    /// A snapshot of the bounded mutation log.
    pub fn mutation_log(&self) -> MutationLog {
        crate::mutate::log_snapshot(&self.shared)
    }

    /// Mutation counters for observability (served by `/metrics`).
    pub fn mutation_stats(&self) -> MutationStats {
        crate::mutate::stats_snapshot(&self.shared)
    }

    /// Counters of the shared query-result cache, or `None` when the
    /// engine was built without one (see
    /// [`EngineBuilder::cache_capacity`](crate::EngineBuilder::cache_capacity)).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.core().cache_stats()
    }

    /// Runs the deep invariant audit over the current generation (see
    /// [`AsrsEngine::audit`](crate::AsrsEngine::audit)).  The server's
    /// `GET /audit` endpoint serves this report.
    pub fn audit(&self) -> crate::AuditReport {
        crate::audit::audit_shared(&self.shared)
    }

    /// The current generation's dataset (the returned [`Arc`] pins that
    /// generation's snapshot).
    pub fn dataset(&self) -> Arc<Dataset> {
        Arc::clone(&self.core().dataset)
    }

    /// The shared composite aggregator.
    pub fn aggregator(&self) -> Arc<CompositeAggregator> {
        Arc::clone(&self.core().aggregator)
    }

    /// The current generation's dataset/index statistics.
    pub fn statistics(&self) -> EngineStatistics {
        self.core().statistics.clone()
    }

    /// Number of shards of a sharded engine, `0` for a single engine.
    pub fn shard_count(&self) -> usize {
        self.core().shards.as_ref().map_or(0, |s| s.len())
    }

    /// Per-shard scattered-execution counts, in shard order (`None` for a
    /// single engine).  The server's `/metrics` endpoint serves these.
    pub fn shard_request_counts(&self) -> Option<Vec<u64>> {
        self.core().shards.as_ref().map(|s| s.request_counts())
    }

    /// Per-shard planner statistics, in shard order (`None` for a single
    /// engine).
    pub fn shard_statistics(&self) -> Option<Vec<EngineStatistics>> {
        self.core().shards.as_ref().map(|s| s.statistics())
    }

    /// Captures a point-in-time [`EngineState`](crate::EngineState) of the
    /// current generation (see
    /// [`AsrsEngine::export_state`](crate::AsrsEngine::export_state)) —
    /// a handful of `Arc` clones, so background snapshotting never stalls
    /// the serving path.
    pub fn export_state(&self) -> crate::EngineState {
        crate::engine::export_state(&self.shared)
    }

    /// Builds a query-by-example from a real region of the current
    /// generation's dataset.
    pub fn query_from_example(&self, example: &Rect) -> Result<AsrsQuery, AsrsError> {
        let core = self.core();
        Ok(AsrsQuery::from_example_region(
            &core.dataset,
            &core.aggregator,
            example,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AsrsEngine;
    use crate::request::QueryOutcome;
    use asrs_aggregator::Selection;
    use asrs_data::gen::UniformGenerator;

    fn engine() -> AsrsEngine {
        let ds = UniformGenerator::default().generate(250, 9);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        AsrsEngine::builder(ds, agg)
            .build_index(16, 16)
            .build()
            .unwrap()
    }

    #[test]
    fn handle_is_cheap_to_clone_and_thread_safe() {
        fn assert_handle_bounds<T: Clone + Send + Sync + 'static>() {}
        assert_handle_bounds::<EngineHandle>();

        let engine = engine();
        let handle = engine.handle();
        let query = handle
            .query_from_example(&Rect::new(5.0, 5.0, 20.0, 20.0))
            .unwrap();
        let results: Vec<_> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let handle = handle.clone();
                    let query = query.clone();
                    scope.spawn(move || handle.submit(&QueryRequest::similar(query)).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        // Concurrent submissions over the shared core agree exactly.
        for response in &results {
            assert_eq!(response.backend, results[0].backend);
            match (&response.outcome, &results[0].outcome) {
                (QueryOutcome::Best(a), QueryOutcome::Best(b)) => {
                    assert_eq!(a.anchor, b.anchor);
                    assert_eq!(a.distance, b.distance);
                }
                _ => panic!("similar requests produce Best outcomes"),
            }
        }
    }

    #[test]
    fn handle_outlives_the_engine() {
        let handle = engine().handle();
        // The engine was dropped above; the Arc keeps the shared state
        // alive.
        assert_eq!(handle.dataset().len(), 250);
        assert!(handle.statistics().index.is_some());
        let query = handle
            .query_from_example(&Rect::new(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        assert!(handle.submit(&QueryRequest::similar(query)).is_ok());
    }

    #[test]
    fn mutations_through_a_handle_are_visible_to_every_clone() {
        let engine = engine();
        let writer = engine.handle();
        let reader = engine.handle();
        assert_eq!(reader.generation(), 0);
        let id = writer.dataset().next_id();
        let template = writer.dataset().object(0).clone();
        let receipt = writer
            .append(asrs_data::SpatialObject::new(
                id,
                asrs_geo::Point::new(50.0, 50.0),
                template.values.clone(),
            ))
            .unwrap();
        assert_eq!(receipt.generation, 1);
        assert_eq!(reader.generation(), 1, "clones see the new generation");
        assert_eq!(engine.generation(), 1, "the engine facade does too");
        assert_eq!(reader.dataset().len(), 251);
        assert!(reader.mutation_stats().appends == 1);
    }
}
