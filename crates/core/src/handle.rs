//! [`EngineHandle`]: cheap, cloneable, thread-safe access to an engine.

use crate::cache::CacheStats;
use crate::engine::EngineCore;
use crate::error::AsrsError;
use crate::planner::{EngineStatistics, ExecutionPlan};
use crate::query::AsrsQuery;
use crate::request::{QueryRequest, QueryResponse};
use crate::result::SearchResult;
use asrs_aggregator::CompositeAggregator;
use asrs_data::Dataset;
use asrs_geo::Rect;
use std::sync::Arc;

/// A cheap `Clone + Send + Sync` handle to an [`AsrsEngine`](crate::AsrsEngine).
///
/// The handle shares the engine's immutable core (dataset, aggregator,
/// index, configuration, planner) behind an [`Arc`], so cloning costs one
/// reference-count increment and every clone can
/// [`submit`](EngineHandle::submit) concurrently from its own thread — the
/// serving topology the ROADMAP's multi-user north star needs:
///
/// ```
/// use asrs_core::{AsrsEngine, QueryRequest};
/// use asrs_aggregator::{CompositeAggregator, Selection};
/// use asrs_data::gen::UniformGenerator;
/// use asrs_geo::Rect;
///
/// let dataset = UniformGenerator::default().generate(300, 7);
/// let aggregator = CompositeAggregator::builder(dataset.schema())
///     .distribution("category", Selection::All)
///     .build()
///     .unwrap();
/// let engine = AsrsEngine::builder(dataset, aggregator)
///     .build_index(16, 16)
///     .build()
///     .unwrap();
///
/// let handle = engine.handle();
/// let query = handle
///     .query_from_example(&Rect::new(10.0, 10.0, 25.0, 25.0))
///     .unwrap();
/// let workers: Vec<_> = (0..4)
///     .map(|_| {
///         let handle = handle.clone();
///         let query = query.clone();
///         std::thread::spawn(move || {
///             handle.submit(&QueryRequest::similar(query)).unwrap()
///         })
///     })
///     .collect();
/// for worker in workers {
///     let response = worker.join().unwrap();
///     assert!(response.best().unwrap().distance <= 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct EngineHandle {
    core: Arc<EngineCore>,
}

impl EngineHandle {
    pub(crate) fn new(core: Arc<EngineCore>) -> Self {
        Self { core }
    }

    /// Plans and executes a declarative [`QueryRequest`] (see
    /// [`AsrsEngine::submit`](crate::AsrsEngine::submit)).
    pub fn submit(&self, request: &QueryRequest) -> Result<QueryResponse, AsrsError> {
        self.core.submit(request)
    }

    /// Plans `request` without executing it (see
    /// [`AsrsEngine::plan`](crate::AsrsEngine::plan)).
    pub fn plan(&self, request: &QueryRequest) -> Result<ExecutionPlan, AsrsError> {
        self.core.plan(request)
    }

    /// Answers a batch with one `Result` per query (see
    /// [`AsrsEngine::search_batch_results`](crate::AsrsEngine::search_batch_results)).
    pub fn search_batch_results(
        &self,
        queries: &[AsrsQuery],
    ) -> Result<Vec<Result<SearchResult, AsrsError>>, AsrsError> {
        self.core.batch_results(queries)
    }

    /// Counters of the shared query-result cache, or `None` when the
    /// engine was built without one (see
    /// [`EngineBuilder::cache_capacity`](crate::EngineBuilder::cache_capacity)).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.core.cache_stats()
    }

    /// The shared dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.core.dataset
    }

    /// The shared composite aggregator.
    pub fn aggregator(&self) -> &CompositeAggregator {
        &self.core.aggregator
    }

    /// The dataset/index statistics the planner decides from.
    pub fn statistics(&self) -> &EngineStatistics {
        &self.core.statistics
    }

    /// Number of shards of a sharded engine, `0` for a single engine.
    pub fn shard_count(&self) -> usize {
        self.core.shards.as_ref().map_or(0, |s| s.len())
    }

    /// Per-shard scattered-execution counts, in shard order (`None` for a
    /// single engine).  The server's `/metrics` endpoint serves these.
    pub fn shard_request_counts(&self) -> Option<Vec<u64>> {
        self.core.shards.as_ref().map(|s| s.request_counts())
    }

    /// Per-shard planner statistics, in shard order (`None` for a single
    /// engine).
    pub fn shard_statistics(&self) -> Option<Vec<EngineStatistics>> {
        self.core.shards.as_ref().map(|s| s.statistics())
    }

    /// Builds a query-by-example from a real region of the shared dataset.
    pub fn query_from_example(&self, example: &Rect) -> Result<AsrsQuery, AsrsError> {
        Ok(AsrsQuery::from_example_region(
            &self.core.dataset,
            &self.core.aggregator,
            example,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AsrsEngine;
    use crate::request::QueryOutcome;
    use asrs_aggregator::Selection;
    use asrs_data::gen::UniformGenerator;

    fn engine() -> AsrsEngine {
        let ds = UniformGenerator::default().generate(250, 9);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        AsrsEngine::builder(ds, agg)
            .build_index(16, 16)
            .build()
            .unwrap()
    }

    #[test]
    fn handle_is_cheap_to_clone_and_thread_safe() {
        fn assert_handle_bounds<T: Clone + Send + Sync + 'static>() {}
        assert_handle_bounds::<EngineHandle>();

        let engine = engine();
        let handle = engine.handle();
        let query = handle
            .query_from_example(&Rect::new(5.0, 5.0, 20.0, 20.0))
            .unwrap();
        let results: Vec<_> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let handle = handle.clone();
                    let query = query.clone();
                    scope.spawn(move || handle.submit(&QueryRequest::similar(query)).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        // Concurrent submissions over the shared core agree exactly.
        for response in &results {
            assert_eq!(response.backend, results[0].backend);
            match (&response.outcome, &results[0].outcome) {
                (QueryOutcome::Best(a), QueryOutcome::Best(b)) => {
                    assert_eq!(a.anchor, b.anchor);
                    assert_eq!(a.distance, b.distance);
                }
                _ => panic!("similar requests produce Best outcomes"),
            }
        }
    }

    #[test]
    fn handle_outlives_the_engine() {
        let handle = engine().handle();
        // The engine was dropped above; the Arc keeps the core alive.
        assert_eq!(handle.dataset().len(), 250);
        assert!(handle.statistics().index.is_some());
        let query = handle
            .query_from_example(&Rect::new(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        assert!(handle.submit(&QueryRequest::similar(query)).is_ok());
    }
}
