//! The drop condition (Definition 8, Theorem 2).
//!
//! Once the cells of a discretisation grid are smaller than half of the
//! coordinate accuracy in both dimensions, every disjoint region of the
//! rectangle arrangement that lies inside the space is guaranteed to
//! contain at least one clean cell, so the space never needs to be split
//! again.

use asrs_geo::{Accuracy, GridSpec};

/// Returns `true` when the grid satisfies the drop condition:
/// `2 · w_c < ΔX` and `2 · h_c < ΔY`.
pub(crate) fn satisfies_drop_condition(grid: &GridSpec, accuracy: &Accuracy) -> bool {
    2.0 * grid.cell_width() < accuracy.dx && 2.0 * grid.cell_height() < accuracy.dy
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_geo::Rect;

    #[test]
    fn small_cells_satisfy_the_condition() {
        // 10x10 grid over a 1x1 space: cells are 0.1 wide/tall.
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 1.0, 1.0), 10, 10);
        assert!(satisfies_drop_condition(&grid, &Accuracy::new(0.3, 0.3)));
        assert!(!satisfies_drop_condition(&grid, &Accuracy::new(0.2, 0.3)));
        assert!(!satisfies_drop_condition(&grid, &Accuracy::new(0.3, 0.05)));
    }

    #[test]
    fn boundary_is_strict() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 1.0, 1.0), 10, 10);
        // 2 * 0.1 = 0.2 is NOT strictly less than 0.2.
        assert!(!satisfies_drop_condition(&grid, &Accuracy::new(0.2, 0.2)));
        assert!(satisfies_drop_condition(
            &grid,
            &Accuracy::new(0.2000001, 0.2000001)
        ));
    }

    #[test]
    fn paper_example_10_shape() {
        // Example 10: after one split the left sub-space, re-discretised
        // with a 10x10 grid, has cells small enough relative to the edge
        // gaps that it need not be split again.  Model that situation with a
        // sub-space a fifth of the original width.
        let original = GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 10, 10);
        let sub = GridSpec::new(Rect::new(0.0, 0.0, 2.0, 2.0), 10, 10);
        let acc = Accuracy::new(0.5, 0.5);
        assert!(!satisfies_drop_condition(&original, &acc));
        assert!(satisfies_drop_condition(&sub, &acc));
    }
}
