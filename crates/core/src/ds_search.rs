//! The DS-Search algorithm (Algorithm 1, Sections 4.2–4.6).

use crate::asp::AspInstance;
use crate::best::BestSet;
use crate::budget::Budget;
use crate::config::SearchConfig;
use crate::discretize::{discretize, DirtyCell};
use crate::drop_condition::satisfies_drop_condition;
use crate::error::AsrsError;
use crate::query::AsrsQuery;
use crate::result::SearchResult;
use crate::split::split;
use crate::stats::SearchStats;
use asrs_aggregator::CompositeAggregator;
use asrs_data::Dataset;
use asrs_geo::{GridSpec, Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// The exact DS-Search solver for the ASRS problem.
///
/// DS-Search reduces ASRS to ASP (one rectangle per object, Section 4.1) and
/// then repeatedly *discretizes* the space into clean and dirty cells and
/// *splits* the sub-space spanned by the surviving dirty cells.  Clean cells
/// are evaluated exactly; dirty cells are pruned with the Equation-1 lower
/// bound; a space whose cells are smaller than half the coordinate accuracy
/// satisfies the *drop condition* and needs no further splitting
/// (Theorem 2).
///
/// Two deviations from the paper's pseudo-code, both conservative:
///
/// * When a space satisfies the drop condition (or exceeds
///   [`SearchConfig::max_depth`]) but still has unpruned dirty cells, the
///   remaining candidate positions inside those cells are enumerated
///   exactly instead of being discarded.  Because cells are then narrower
///   than the minimum edge gap, at most one vertical and one horizontal
///   rectangle edge can cross a cell, so the enumeration evaluates at most
///   four points per cell.  This closes the corner case where the optimal
///   disjoint region only intersects the dropped space in a sliver.
/// * The heap is also cut off at `d_opt / (1 + δ)`, which specialises to
///   the paper's `d_opt` cutoff for the exact setting `δ = 0`.
///
/// Prefer driving searches through [`AsrsEngine`](crate::AsrsEngine); the
/// solver remains public as the engine's DS-Search backend and for direct
/// low-level use.
pub struct DsSearch<'a> {
    dataset: &'a Dataset,
    aggregator: &'a CompositeAggregator,
    config: SearchConfig,
    /// Canonical-tie mode: pruning comparisons become strict (`>` instead
    /// of `>=`), so every candidate tied with the final cutoff is probed,
    /// and anchors are snapped to arrangement-cell representatives (see
    /// [`EdgeSnapper`](crate::asp::EdgeSnapper)).  Together these make the
    /// reported answer a pure function of the instance — independent of how
    /// the search space was decomposed — which is the invariant the sharded
    /// scatter-gather executor builds on.  Slower than the default mode
    /// (equal-bound cells are resolved instead of pruned), so the
    /// single-engine fast paths leave it off.
    canonical: bool,
}

struct HeapEntry {
    lb: f64,
    depth: u32,
    space: Rect,
    candidates: Vec<u32>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.lb == other.lb
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse the comparison to pop the
        // smallest lower bound first.
        other.lb.partial_cmp(&self.lb).unwrap_or(Ordering::Equal)
    }
}

impl<'a> DsSearch<'a> {
    /// Creates a solver with the default configuration (30 × 30 grid,
    /// exact search).
    pub fn new(dataset: &'a Dataset, aggregator: &'a CompositeAggregator) -> Self {
        Self::with_config(dataset, aggregator, SearchConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(
        dataset: &'a Dataset,
        aggregator: &'a CompositeAggregator,
        config: SearchConfig,
    ) -> Self {
        Self {
            dataset,
            aggregator,
            config,
            canonical: false,
        }
    }

    /// Enables canonical-tie mode (see the `canonical` field): strict
    /// pruning plus arrangement-snapped anchors, making the answer
    /// independent of the space decomposition at the cost of resolving
    /// equal-bound cells the fast path would prune.
    pub(crate) fn canonical_ties(mut self) -> Self {
        self.canonical = true;
        self
    }

    /// Whether a lower bound disqualifies a cell/space at `threshold`:
    /// ties survive in canonical mode so every equally-optimal candidate is
    /// probed.
    #[inline]
    fn prunes(&self, lb: f64, threshold: f64) -> bool {
        if self.canonical {
            lb > threshold
        } else {
            lb >= threshold
        }
    }

    /// The dataset being searched.
    pub fn dataset(&self) -> &Dataset {
        self.dataset
    }

    /// The composite aggregator.
    pub fn aggregator(&self) -> &CompositeAggregator {
        self.aggregator
    }

    /// The configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Solves the ASRS problem for `query`.
    ///
    /// # Errors
    ///
    /// [`AsrsError::Query`] when the query does not match the aggregator
    /// (see [`AsrsQuery::validate`]); [`AsrsError::Config`] when the
    /// configuration is invalid.
    pub fn search(&self, query: &AsrsQuery) -> Result<SearchResult, AsrsError> {
        self.search_within(query, None)
    }

    /// Like [`DsSearch::search`], with an optional wall-clock budget: the
    /// discretize–split recursion polls the budget at every sub-space it
    /// processes and aborts with [`AsrsError::DeadlineExceeded`] once the
    /// budget is spent.
    pub fn search_within(
        &self,
        query: &AsrsQuery,
        budget: Option<Budget>,
    ) -> Result<SearchResult, AsrsError> {
        self.run(query, 1, budget)?
            .into_iter()
            .next()
            .ok_or_else(crate::best::no_finite_candidate)
    }

    /// Returns the `k` best candidate regions with pairwise distinct
    /// anchors, best first.  Fewer than `k` results are returned when the
    /// instance has fewer distinct candidates.
    ///
    /// # Errors
    ///
    /// [`AsrsError::InvalidTopK`] when `k` is zero, plus the same errors as
    /// [`DsSearch::search`].
    pub fn search_top_k(
        &self,
        query: &AsrsQuery,
        k: usize,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        self.search_top_k_within(query, k, None)
    }

    /// Like [`DsSearch::search_top_k`], with an optional wall-clock budget
    /// (see [`DsSearch::search_within`]).
    pub fn search_top_k_within(
        &self,
        query: &AsrsQuery,
        k: usize,
        budget: Option<Budget>,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        if k == 0 {
            return Err(AsrsError::InvalidTopK);
        }
        self.run(query, k, budget)
    }

    fn run(
        &self,
        query: &AsrsQuery,
        k: usize,
        budget: Option<Budget>,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        query.validate(self.aggregator)?;
        self.config.validate()?;
        if let Some(b) = budget {
            b.check()?;
        }
        let started = Instant::now();
        let mut stats = SearchStats::new();
        let asp = AspInstance::build(
            self.dataset,
            query.size,
            self.config.accuracy,
            self.config.accuracy_floor,
        );
        stats.rectangles = asp.rects().len() as u64;
        let mut best = if self.canonical {
            BestSet::with_snapper(
                k,
                std::sync::Arc::new(crate::asp::EdgeSnapper::from_asp(&asp)),
            )
        } else {
            BestSet::new(k)
        };
        self.seed_empty_region(&asp, query, &mut best);
        if let Some(space) = asp.space() {
            let candidates = self.contributing(&asp, asp.all_rect_indices());
            self.search_space(
                &asp,
                query,
                space,
                candidates,
                &mut best,
                &mut stats,
                budget.as_ref(),
            )?;
        }
        stats.elapsed = started.elapsed();
        Ok(crate::best::best_to_results(best, query.size, stats))
    }

    /// Offers the candidate corresponding to an empty region placed outside
    /// every rectangle.  It initialises the intermediate result so that the
    /// search is correct even when the most similar region contains no
    /// object at all (e.g. a query representation of all zeros).
    pub(crate) fn seed_empty_region(
        &self,
        asp: &AspInstance,
        query: &AsrsQuery,
        best: &mut BestSet,
    ) {
        let anchor = match asp.space() {
            Some(space) => Point::new(
                space.max_x + query.size.width,
                space.max_y + query.size.height,
            ),
            None => Point::origin(),
        };
        let zero_stats = vec![0.0; self.aggregator.stats_dim()];
        let representation = self.aggregator.stats_to_features(&zero_stats);
        let distance =
            self.aggregator
                .distance(&representation, &query.target, &query.weights, query.metric);
        best.offer(distance, anchor, representation);
    }

    /// Drops candidate rectangles whose object no selection of the
    /// aggregator accepts: they cannot change any representation, and
    /// carrying them through the discretize–split recursion makes the
    /// class-constrained variants quadratically slower.
    pub(crate) fn contributing(&self, asp: &AspInstance, candidates: Vec<u32>) -> Vec<u32> {
        candidates
            .into_iter()
            .filter(|&i| {
                let object_idx = asp.rects()[i as usize].object_idx as usize;
                self.aggregator.contributes(self.dataset.object(object_idx))
            })
            .collect()
    }

    /// Runs the discretize–split loop of Algorithm 1 over `space`, updating
    /// `best` and `stats` in place.  Used directly by [`DsSearch::search`]
    /// and per index cell by GI-DS.  The optional `budget` is polled at
    /// every popped sub-space; an expired budget aborts the loop with
    /// [`AsrsError::DeadlineExceeded`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn search_space(
        &self,
        asp: &AspInstance,
        query: &AsrsQuery,
        space: Rect,
        candidates: Vec<u32>,
        best: &mut BestSet,
        stats: &mut SearchStats,
        budget: Option<&Budget>,
    ) -> Result<(), AsrsError> {
        let prune_factor = self.config.prune_factor();
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        heap.push(HeapEntry {
            lb: 0.0,
            depth: 0,
            space,
            candidates,
        });
        stats.heap_pushes += 1;

        while let Some(entry) = heap.pop() {
            if let Some(b) = budget {
                b.check()?;
            }
            if self.prunes(entry.lb, best.cutoff() / prune_factor) {
                break;
            }
            stats.spaces_processed += 1;
            let outcome = discretize(
                &entry.space,
                self.config.ncols,
                self.config.nrows,
                asp,
                &entry.candidates,
                self.dataset,
                self.aggregator,
                query,
                best,
                prune_factor,
                self.canonical,
            );
            stats.cells_examined += outcome.clean_cells + outcome.dirty_cells;
            stats.clean_cells += outcome.clean_cells;
            stats.dirty_cells += outcome.dirty_cells;
            stats.dirty_cells_pruned += outcome.pruned_dirty;
            if outcome.retained_dirty.is_empty() {
                continue;
            }
            // Dirty cells crossed by only a handful of rectangle edges are
            // resolved exactly on the spot: the arrangement inside such a
            // cell has at most a few pieces, so enumerating one probe point
            // per piece is cheaper than splitting the cell again and again.
            // This also guarantees termination for aggregators whose
            // real-valued lower bounds can stay strictly below the optimum
            // along the optimal region's boundary.
            let dropped = satisfies_drop_condition(&outcome.grid, &asp.accuracy());
            let resolve_all = dropped
                || entry.depth >= self.config.max_depth
                || stats.spaces_processed >= self.config.max_spaces;
            if resolve_all {
                stats.drops += 1;
            }
            let mut to_split: Vec<DirtyCell> = Vec::new();
            let mut to_resolve: Vec<DirtyCell> = Vec::new();
            for cell in outcome.retained_dirty {
                if resolve_all || cell.partials <= self.config.resolve_crossing_threshold {
                    to_resolve.push(cell);
                } else {
                    to_split.push(cell);
                }
            }
            if !to_resolve.is_empty() {
                self.resolve_cells_exactly(
                    asp,
                    query,
                    &outcome.grid,
                    &to_resolve,
                    &entry.candidates,
                    best,
                    stats,
                    budget,
                )?;
            }
            if to_split.is_empty() {
                continue;
            }
            stats.splits += 1;
            for part in split(&outcome.grid, &to_split) {
                if self.prunes(part.lb, best.cutoff() / prune_factor) {
                    continue;
                }
                let sub_candidates: Vec<u32> = entry
                    .candidates
                    .iter()
                    .copied()
                    .filter(|&i| asp.rects()[i as usize].rect.intersects(&part.space))
                    .collect();
                stats.heap_pushes += 1;
                heap.push(HeapEntry {
                    lb: part.lb,
                    depth: entry.depth + 1,
                    space: part.space,
                    candidates: sub_candidates,
                });
            }
        }
        Ok(())
    }

    /// Exact per-cell resolution: enumerates one probe point per
    /// arrangement piece inside the cell and evaluates it directly.  Used
    /// for dirty cells crossed by few rectangle edges and for every
    /// surviving dirty cell of a dropped or depth-capped space.
    #[allow(clippy::too_many_arguments)]
    fn resolve_cells_exactly(
        &self,
        asp: &AspInstance,
        query: &AsrsQuery,
        grid: &GridSpec,
        cells: &[DirtyCell],
        candidates: &[u32],
        best: &mut BestSet,
        stats: &mut SearchStats,
        budget: Option<&Budget>,
    ) -> Result<(), AsrsError> {
        let dims = self.aggregator.stats_dim();
        // Compensated (Kahan–Neumaier) accumulators: probe statistics sum
        // float attribute values, and the compensation keeps each slot at
        // the correctly rounded total, so the reported representation of a
        // candidate does not depend on the order the covering rectangles
        // happened to be accumulated in (which varies with the search-space
        // decomposition).
        let mut base_acc = asrs_aggregator::StatsAccumulator::new(dims);
        let mut probe_acc = asrs_aggregator::StatsAccumulator::new(dims);
        let mut probe_stats = vec![0.0; dims];
        for cell in cells {
            if let Some(b) = budget {
                b.check()?;
            }
            if self.prunes(cell.lb, best.cutoff() / self.config.prune_factor()) {
                continue;
            }
            let rect = grid.cell_rect(cell.col, cell.row);
            // Partition the candidates into rectangles fully covering the
            // cell (their contribution is shared by every probe) and
            // rectangles merely crossing it (checked per probe).
            base_acc.reset();
            let mut partial: Vec<u32> = Vec::new();
            let mut xs = vec![rect.min_x, rect.max_x];
            let mut ys = vec![rect.min_y, rect.max_y];
            for &idx in candidates {
                let r = &asp.rects()[idx as usize];
                if !r.rect.interiors_intersect(&rect) {
                    continue;
                }
                if r.rect.contains_rect(&rect) {
                    self.aggregator.accumulate_object_into(
                        self.dataset.object(r.object_idx as usize),
                        &mut base_acc,
                    );
                } else {
                    partial.push(idx);
                    for x in [r.rect.min_x, r.rect.max_x] {
                        if x > rect.min_x && x < rect.max_x {
                            xs.push(x);
                        }
                    }
                    for y in [r.rect.min_y, r.rect.max_y] {
                        if y > rect.min_y && y < rect.max_y {
                            ys.push(y);
                        }
                    }
                }
            }
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
            xs.dedup();
            ys.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
            ys.dedup();
            for wx in xs.windows(2) {
                for wy in ys.windows(2) {
                    let probe = Point::new((wx[0] + wx[1]) / 2.0, (wy[0] + wy[1]) / 2.0);
                    stats.fallback_points += 1;
                    probe_acc.clone_from_accumulator(&base_acc);
                    for &idx in &partial {
                        let r = &asp.rects()[idx as usize];
                        if r.covers(&probe) {
                            self.aggregator.accumulate_object_into(
                                self.dataset.object(r.object_idx as usize),
                                &mut probe_acc,
                            );
                        }
                    }
                    probe_acc.finish_into(&mut probe_stats);
                    let representation = self.aggregator.stats_to_features(&probe_stats);
                    let distance = self.aggregator.distance(
                        &representation,
                        &query.target,
                        &query.weights,
                        query.metric,
                    );
                    // `<=` rather than `<`: equal-distance candidates still
                    // reach the set so its anchor tie-breaking stays
                    // discovery-order independent.  The window's covering
                    // is uniform, so in canonical mode the whole window is
                    // offered (one candidate per arrangement cell in it).
                    if distance <= best.cutoff() {
                        best.offer_region(
                            distance,
                            &Rect::new(wx[0], wy[0], wx[1], wy[1]),
                            representation,
                        );
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_aggregator::{CompositeAggregator, FeatureVector, Selection, Weights};
    use asrs_data::gen::UniformGenerator;
    use asrs_data::{AttrValue, AttributeDef, AttributeKind, DatasetBuilder, Schema};
    use asrs_geo::RegionSize;

    fn fig2_dataset() -> Dataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "color",
            AttributeKind::categorical_labeled(vec!["red", "blue"]),
        )]);
        let mut b = DatasetBuilder::new(schema);
        b.push(2.0, 8.0, vec![AttrValue::Cat(0)]);
        b.push(3.5, 7.0, vec![AttrValue::Cat(1)]);
        b.push(1.5, 3.0, vec![AttrValue::Cat(1)]);
        b.push(5.0, 2.0, vec![AttrValue::Cat(0)]);
        b.push(7.5, 2.5, vec![AttrValue::Cat(1)]);
        b.push(8.0, 1.5, vec![AttrValue::Cat(0)]);
        b.build().unwrap()
    }

    #[test]
    fn finds_a_perfect_match_in_the_fig2_instance() {
        // The Fig. 2 reduction has a point covered by exactly one red and
        // one blue rectangle, so a query of (1, 1) has distance 0.
        let ds = fig2_dataset();
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("color", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(3.0, 3.0),
            FeatureVector::new(vec![1.0, 1.0]),
            Weights::uniform(2),
        );
        let result = DsSearch::new(&ds, &agg).search(&query).unwrap();
        assert!(result.distance.abs() < 1e-9, "distance {}", result.distance);
        assert_eq!(result.representation.as_slice(), &[1.0, 1.0]);
        // The returned region really contains one red and one blue object.
        let rep = agg.aggregate_region(&ds, &result.region);
        assert_eq!(rep.as_slice(), &[1.0, 1.0]);
        assert!(result.stats.spaces_processed >= 1);
    }

    #[test]
    fn empty_target_returns_an_empty_region() {
        let ds = fig2_dataset();
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("color", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(3.0, 3.0),
            FeatureVector::new(vec![0.0, 0.0]),
            Weights::uniform(2),
        );
        let result = DsSearch::new(&ds, &agg).search(&query).unwrap();
        assert_eq!(result.distance, 0.0);
        assert_eq!(
            agg.aggregate_region(&ds, &result.region).as_slice(),
            &[0.0, 0.0]
        );
    }

    #[test]
    fn empty_dataset_is_handled() {
        let ds = Dataset::new_unchecked(Schema::empty(), vec![]);
        let agg = CompositeAggregator::builder(ds.schema())
            .count(Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(1.0, 1.0),
            FeatureVector::new(vec![3.0]),
            Weights::uniform(1),
        );
        let result = DsSearch::new(&ds, &agg).search(&query).unwrap();
        assert_eq!(result.distance, 3.0);
        assert_eq!(result.stats.rectangles, 0);
    }

    #[test]
    fn result_region_representation_matches_reported_distance() {
        let ds = UniformGenerator::default().generate(300, 9);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let example = Rect::new(20.0, 30.0, 35.0, 45.0);
        let query = AsrsQuery::from_example_region(&ds, &agg, &example).unwrap();
        let result = DsSearch::new(&ds, &agg).search(&query).unwrap();
        let rep = agg.aggregate_region(&ds, &result.region);
        let d = agg.distance(&rep, &query.target, &query.weights, query.metric);
        assert!(
            (d - result.distance).abs() < 1e-9,
            "reported {} but recomputed {}",
            result.distance,
            d
        );
        // The query region itself is a candidate, so the optimum cannot be
        // worse than distance 0 achieved there... in fact it must be 0.
        assert!(result.distance <= 1e-9);
    }

    #[test]
    fn grid_granularity_does_not_change_the_answer() {
        let ds = UniformGenerator::default().generate(200, 17);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(12.0, 9.0),
            FeatureVector::new(vec![3.0, 1.0, 0.0, 2.0]),
            Weights::uniform(4),
        );
        let coarse = DsSearch::with_config(&ds, &agg, SearchConfig::new().with_grid(5, 5).unwrap())
            .search(&query)
            .unwrap()
            .distance;
        let default = DsSearch::new(&ds, &agg).search(&query).unwrap().distance;
        let fine = DsSearch::with_config(&ds, &agg, SearchConfig::new().with_grid(45, 45).unwrap())
            .search(&query)
            .unwrap()
            .distance;
        assert!((coarse - default).abs() < 1e-9);
        assert!((fine - default).abs() < 1e-9);
    }

    #[test]
    fn approximate_search_respects_the_guarantee() {
        let ds = UniformGenerator::default().generate(400, 23);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(10.0, 10.0),
            FeatureVector::new(vec![5.0, 5.0, 5.0, 5.0]),
            Weights::uniform(4),
        );
        let exact = DsSearch::new(&ds, &agg).search(&query).unwrap();
        for delta in [0.1, 0.3, 0.5] {
            let approx =
                DsSearch::with_config(&ds, &agg, SearchConfig::new().with_delta(delta).unwrap())
                    .search(&query)
                    .unwrap();
            assert!(
                approx.distance <= (1.0 + delta) * exact.distance + 1e-9,
                "delta={delta}: {} > (1+δ)·{}",
                approx.distance,
                exact.distance
            );
            assert!(approx.distance + 1e-9 >= exact.distance);
        }
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let ds = fig2_dataset();
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("color", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(1.0, 1.0),
            FeatureVector::new(vec![1.0]),
            Weights::uniform(1),
        );
        let err = DsSearch::new(&ds, &agg).search(&query).unwrap_err();
        assert!(matches!(
            err,
            AsrsError::Query(crate::QueryError::TargetDimensionMismatch {
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let ds = fig2_dataset();
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("color", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(3.0, 3.0),
            FeatureVector::new(vec![1.0, 1.0]),
            Weights::uniform(2),
        );
        let config = SearchConfig {
            ncols: 0,
            ..SearchConfig::default()
        };
        let err = DsSearch::with_config(&ds, &agg, config)
            .search(&query)
            .unwrap_err();
        assert!(matches!(err, AsrsError::Config(_)));
    }

    #[test]
    fn top_k_distances_are_sorted_and_anchors_distinct() {
        let ds = UniformGenerator::default().generate(250, 31);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(10.0, 10.0),
            FeatureVector::new(vec![2.0, 2.0, 2.0, 2.0]),
            Weights::uniform(4),
        );
        let solver = DsSearch::new(&ds, &agg);
        let top = solver.search_top_k(&query, 5).unwrap();
        assert!(!top.is_empty() && top.len() <= 5);
        for pair in top.windows(2) {
            assert!(pair[0].distance <= pair[1].distance + 1e-12);
            assert_ne!(pair[0].anchor, pair[1].anchor);
        }
        // The top-1 equals the plain search optimum.
        let single = solver.search(&query).unwrap();
        assert!((top[0].distance - single.distance).abs() < 1e-9);
        // Every reported entry is internally consistent.
        for r in &top {
            let rep = agg.aggregate_region(&ds, &r.region);
            let d = agg.distance(&rep, &query.target, &query.weights, query.metric);
            assert!((d - r.distance).abs() < 1e-9);
        }
        assert!(matches!(
            solver.search_top_k(&query, 0),
            Err(AsrsError::InvalidTopK)
        ));
    }

    #[test]
    fn stats_are_populated() {
        let ds = UniformGenerator::default().generate(150, 4);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(8.0, 8.0),
            FeatureVector::new(vec![2.0, 2.0, 2.0, 2.0]),
            Weights::uniform(4),
        );
        let result = DsSearch::new(&ds, &agg).search(&query).unwrap();
        let s = &result.stats;
        assert_eq!(s.rectangles, 150);
        assert!(s.spaces_processed >= 1);
        assert!(s.cells_examined >= 900);
        assert_eq!(s.clean_cells + s.dirty_cells, s.cells_examined);
        assert!(s.elapsed.as_nanos() > 0);
    }
}
