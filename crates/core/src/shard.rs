//! The sharded scatter-gather executor.
//!
//! # Topology
//!
//! [`EngineBuilder::shards(n)`](crate::EngineBuilder::shards) partitions
//! the dataset spatially (longest-axis recursive splits over the extent,
//! see [`SpatialPartition`](asrs_data::SpatialPartition)) into `n` disjoint
//! regions and builds one [`EngineCore`] — sub-dataset plus its own
//! [`GridIndex`](crate::GridIndex) — per region.  A request is *scattered*:
//! each shard searches the anchor slab induced by its region, and the
//! per-shard [`BestSet`]s are *gathered* with the engine's deterministic
//! `(distance, anchor.y, anchor.x)` tie-break.
//!
//! # Exactness
//!
//! The ASRS problem does not decompose by objects alone: a candidate
//! region that straddles a shard boundary draws objects from several
//! shards, so searching each sub-dataset independently would under-count
//! it.  The executor therefore scatters over *anchor slabs* instead: shard
//! `i` is responsible for every candidate anchor inside its region
//! extended one query size down and left (exactly the ASP rectangles'
//! footprint), and each slab search runs over the **full** instance's
//! rectangles intersecting the slab — the same per-sub-space machinery
//! GI-DS uses per index cell, so every slab answer is exact.  The slabs
//! cover the whole ASP space, hence the gathered answer is the global
//! optimum.
//!
//! # Byte-identical answers, for every shard count
//!
//! Two decompositions of the same search space probe equally-optimal
//! candidates at different points, so a naïve scatter would return
//! different — equally correct — anchors for different shard counts.  The
//! executor closes that hole with the canonical mode of [`DsSearch`]:
//!
//! * every offered anchor is snapped to the canonical representative of
//!   its arrangement cell ([`EdgeSnapper`]), making candidate identity a
//!   property of the instance rather than of the decomposition, and
//! * pruning keeps candidates *tied* with the best distance alive, so
//!   every decomposition discovers the complete set of optimal candidates
//!   and the `(distance, y, x)` tie-break picks the same winner.
//!
//! Together these make the gathered outcome byte-identical for every shard
//! count (statistics excepted — counters necessarily describe the actual
//! decomposition; see [`QueryResponse::stats_stripped`]).  The guarantee
//! is bit-exact for aggregates computed in exact arithmetic (counts and
//! distributions — the paper's primary composite aggregators); aggregates
//! summing floating-point attribute values are equal up to summation
//! order.
//!
//! Approximate requests are answered *exactly* by the sharded executor (δ
//! only relaxes pruning, and relaxed pruning is trajectory-dependent);
//! exact answers trivially satisfy the (1+δ) guarantee and stay
//! shard-count-invariant.

use crate::asp::{AspInstance, EdgeSnapper};
use crate::best::BestSet;
use crate::budget::Budget;
use crate::config::SearchConfig;
use crate::ds_search::DsSearch;
use crate::engine::EngineCore;
use crate::error::AsrsError;
use crate::maxrs::{MaxRsResult, MaxRsSearch};
use crate::query::AsrsQuery;
use crate::request::{QueryOutcome, QueryRequest, QueryResponse};
use crate::result::SearchResult;
use crate::stats::SearchStats;
use crate::sync::Mutex;
use asrs_aggregator::{CompositeAggregator, Selection};
use asrs_data::Dataset;
use asrs_geo::{Rect, RegionSize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One shard of a sharded engine: its partition region and the core built
/// over the objects assigned to it.
#[derive(Debug)]
pub(crate) struct EngineShard {
    /// The partition region (object space) this shard owns.
    pub(crate) region: Rect,
    /// The shard's own core: sub-dataset, per-shard grid index, per-shard
    /// statistics.  Never itself sharded, never caching (the query-result
    /// cache lives at the top level so its keys stay shard-count
    /// independent).  Behind an [`Arc`] so a mutation that touches one
    /// shard shares the untouched siblings with the previous generation
    /// instead of cloning them.
    pub(crate) core: Arc<EngineCore>,
    /// Scattered executions this shard participated in (serving metrics).
    pub(crate) requests: AtomicU64,
}

/// The shard table of a sharded [`EngineCore`].
#[derive(Debug)]
pub(crate) struct ShardSet {
    pub(crate) shards: Vec<EngineShard>,
}

impl ShardSet {
    /// Number of shards.
    pub(crate) fn len(&self) -> usize {
        self.shards.len()
    }

    /// A working copy for a group-commit batch: every shard core is
    /// `Arc`-shared with `self` (an untouched shard costs one refcount),
    /// serving counters carried over.  The batch's per-op shard
    /// maintenance then replaces only the cores its deltas touch.
    pub(crate) fn carry_over(&self) -> Self {
        Self {
            shards: self
                .shards
                .iter()
                .map(|s| EngineShard {
                    region: s.region,
                    core: Arc::clone(&s.core),
                    requests: AtomicU64::new(s.requests.load(Ordering::Relaxed)),
                })
                .collect(),
        }
    }

    /// Per-shard scattered-execution counts, in shard order.
    pub(crate) fn request_counts(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.requests.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-shard planner statistics, in shard order.
    pub(crate) fn statistics(&self) -> Vec<crate::planner::EngineStatistics> {
        self.shards
            .iter()
            .map(|s| s.core.statistics.clone())
            .collect()
    }

    /// Per-shard partition regions, in shard order.
    pub(crate) fn regions(&self) -> Vec<Rect> {
        self.shards.iter().map(|s| s.region).collect()
    }

    /// The fan-out description surfaced by plans and `/metrics`.
    pub(crate) fn fan_out(&self) -> crate::planner::ShardFanOut {
        crate::planner::ShardFanOut {
            shards: self.len(),
            populated: self
                .shards
                .iter()
                .filter(|s| !s.core.dataset.is_empty())
                .count(),
        }
    }
}

/// Builds the shard table for `dataset`: spatial partition, one sub-core
/// per region, and — when `upkeep` asks for per-shard indexes — one grid
/// index per populated shard, built in parallel.  Shared by
/// [`EngineBuilder::shards`](crate::EngineBuilder::shards) and the
/// generational mutation path (which re-partitions through this function
/// whenever a mutation unbalances the layout or leaves the extent).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_shard_set(
    dataset: &Dataset,
    aggregator: &Arc<CompositeAggregator>,
    config: &SearchConfig,
    strategy: crate::engine::Strategy,
    planner: &crate::planner::Planner,
    upkeep: crate::engine::IndexUpkeep,
    n: usize,
    generation: u64,
    policy: &crate::mutate::MutationPolicy,
) -> Result<ShardSet, AsrsError> {
    let build_granularity = match upkeep {
        crate::engine::IndexUpkeep::PerShard { cols, rows } => Some((cols, rows)),
        _ => None,
    };
    let partition = asrs_data::SpatialPartition::build(dataset, n);
    let subs = partition.sub_datasets(dataset);

    // Per-shard index builds are independent; fan them out (on multi-core
    // hosts n small builds finish in a fraction of one whole-dataset
    // build's wall clock).
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let shard_indexes: Vec<Option<crate::grid_index::GridIndex>> = match build_granularity {
        None => subs.iter().map(|_| None).collect(),
        Some((cols, rows)) => parallel_map(subs.len(), workers, |i| {
            if subs[i].is_empty() {
                Ok(None)
            } else {
                crate::grid_index::GridIndex::build(&subs[i], aggregator, cols, rows).map(Some)
            }
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?,
    };

    // The per-shard cores carry each shard's sub-dataset, index and
    // statistics.  Today they power per-shard planner statistics,
    // `/metrics` fan-out accounting and the fan-out estimate in
    // `explain()`; the scatter executor itself still searches the shared
    // full instance (exactness over shard-local indexes needs halo-aware
    // summary tables — a noted ROADMAP follow-up).
    let shards: Vec<EngineShard> = subs
        .into_iter()
        .zip(shard_indexes)
        .zip(partition.regions().iter().copied())
        .map(|((sub, shard_index), region)| {
            let shard_statistics =
                crate::planner::EngineStatistics::capture(&sub, shard_index.as_ref());
            EngineShard {
                region,
                core: Arc::new(EngineCore {
                    generation,
                    dataset: Arc::new(sub),
                    aggregator: Arc::clone(aggregator),
                    config: config.clone(),
                    strategy,
                    index: shard_index.map(Arc::new),
                    upkeep: crate::engine::IndexUpkeep::None,
                    planner: planner.clone(),
                    statistics: shard_statistics,
                    cache: None,
                    policy: policy.clone(),
                    shards: None,
                }),
                requests: AtomicU64::new(0),
            }
        })
        .collect();

    Ok(ShardSet { shards })
}

/// The anchor slab shard `region` is responsible for: the region extended
/// one ASP-rectangle footprint down and left (every rectangle whose object
/// lies in the region reaches at most that far), clipped to the instance's
/// search space.  The slabs of a partition cover the space exactly;
/// overlaps on the cut lines are harmless because canonical candidates are
/// deduplicated by the gather.
fn slab_for(region: &Rect, asp: &AspInstance) -> Option<Rect> {
    let space = asp.space()?;
    let size = asp.size();
    let slab = Rect::new(
        region.min_x - size.width,
        region.min_y - size.height,
        region.max_x,
        region.max_y,
    );
    slab.intersection(&space)
}

/// Scatters one search over the shard slabs and gathers the `k` best
/// candidates (see the module documentation for the guarantees).
///
/// Runs shard tasks on up to `available_parallelism` threads; with a
/// single worker the tasks share one [`BestSet`] so the cutoff found in an
/// early slab prunes the later ones.  Both schedules produce identical
/// results: strict tie-retaining pruning never discards a candidate tied
/// with the final cutoff, whatever the cutoff trajectory.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scatter_search(
    dataset: &Dataset,
    aggregator: &CompositeAggregator,
    config: &SearchConfig,
    shard_set: &ShardSet,
    query: &AsrsQuery,
    k: usize,
    budget: Option<Budget>,
) -> Result<Vec<SearchResult>, AsrsError> {
    query.validate(aggregator)?;
    config.validate()?;
    if let Some(b) = budget {
        b.check()?;
    }
    let started = Instant::now();
    // δ is forced to zero: the sharded executor always answers exactly so
    // its results cannot depend on pruning trajectories (module docs).
    let exact = SearchConfig {
        delta: 0.0,
        ..config.clone()
    };
    let solver = DsSearch::with_config(dataset, aggregator, exact.clone()).canonical_ties();
    let asp = AspInstance::build(dataset, query.size, exact.accuracy, exact.accuracy_floor);
    let snapper = Arc::new(EdgeSnapper::from_asp(&asp));
    let mut stats = SearchStats::new();
    stats.rectangles = asp.rects().len() as u64;
    let mut merged = BestSet::with_snapper(k, Arc::clone(&snapper));
    solver.seed_empty_region(&asp, query, &mut merged);
    // The representation and distance of a candidate covering nothing —
    // what every point of a rectangle-free slab evaluates to.
    let zero_stats = vec![0.0; aggregator.stats_dim()];
    let empty_rep = aggregator.stats_to_features(&zero_stats);
    let empty_distance =
        aggregator.distance(&empty_rep, &query.target, &query.weights, query.metric);

    // Route: a shard *executes* only when at least one contributing
    // rectangle reaches its anchor slab.  A slab no rectangle reaches is
    // uniform empty covering, but its arrangement cells are still
    // candidates — and when the empty covering ties the optimum they can
    // hold the tie-break winner, so the slab is offered as one region
    // (O(1) via the minimal-representative skip whenever the empty
    // distance cannot improve the gather) instead of silently dropped.
    let mut tasks: Vec<(usize, Rect, Vec<u32>)> = Vec::with_capacity(shard_set.len());
    for (i, shard) in shard_set.shards.iter().enumerate() {
        let Some(slab) = slab_for(&shard.region, &asp) else {
            continue;
        };
        let candidates = solver.contributing(&asp, asp.rects_intersecting(&slab));
        if candidates.is_empty() {
            if empty_distance <= merged.cutoff() {
                merged.offer_region(empty_distance, &slab, empty_rep.clone());
            }
            continue;
        }
        tasks.push((i, slab, candidates));
    }
    stats.shards_touched = tasks.len() as u64;
    stats.shards_pruned = (shard_set.len() - tasks.len()) as u64;
    for (i, _, _) in &tasks {
        shard_set.shards[*i]
            .requests
            .fetch_add(1, Ordering::Relaxed);
    }

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(tasks.len());
    if workers <= 1 {
        for (_, slab, candidates) in tasks {
            solver.search_space(
                &asp,
                query,
                slab,
                candidates,
                &mut merged,
                &mut stats,
                budget.as_ref(),
            )?;
        }
    } else {
        // Work-stealing over shard tasks with per-task result sets, merged
        // in task order afterwards (the gather's total order makes the
        // merge order immaterial; task order keeps error reporting
        // deterministic).
        let outcomes = parallel_map(tasks.len(), workers, |t| {
            let (_, slab, candidates) = &tasks[t];
            let mut local = BestSet::with_snapper(k, Arc::clone(&snapper));
            let mut local_stats = SearchStats::new();
            solver
                .search_space(
                    &asp,
                    query,
                    *slab,
                    candidates.clone(),
                    &mut local,
                    &mut local_stats,
                    budget.as_ref(),
                )
                .map(|()| (local, local_stats))
        });
        for outcome in outcomes {
            let (local, local_stats) = outcome?;
            stats.merge(&local_stats);
            for entry in local.into_entries() {
                merged.offer(entry.distance, entry.anchor, entry.representation);
            }
        }
    }

    stats.elapsed = started.elapsed();
    Ok(crate::best::best_to_results(merged, query.size, stats))
}

/// Runs `count` independent tasks on up to `workers` threads
/// (work-stealing over task indices) and returns their results in task
/// order.  A panicking task propagates on join, exactly as it would under
/// the sequential schedule.  Shared by the scatter executor and the
/// per-shard index builds.
pub(crate) fn parallel_map<T, F>(count: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || count <= 1 {
        return (0..count).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers.min(count));
        for _ in 0..workers.min(count) {
            let next = &next;
            let slots = &slots;
            let task = &task;
            handles.push(scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    return;
                }
                // A slot holds one Option; overwriting it is safe even if
                // a sibling worker poisoned the mutex.
                *slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(task(i));
            }));
        }
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                // lint:allow(the join loop above resume_unwinds worker panics, so reaching here means every index was claimed and filled)
                .expect("every stolen task fills its slot")
        })
        .collect()
}

impl EngineCore {
    /// Executes `request` on the shard set (callers guarantee
    /// `self.shards` is `Some`); the sharded counterpart of
    /// `EngineCore::execute`.
    pub(crate) fn execute_sharded(
        &self,
        request: &QueryRequest,
        plan: &crate::planner::ExecutionPlan,
    ) -> Result<QueryResponse, AsrsError> {
        let budget = plan
            .budget_ms
            .map(|ms| Budget::new(std::time::Duration::from_millis(ms)));
        let outcome = match request.operation() {
            QueryRequest::Similar { query } => {
                QueryOutcome::Best(self.sharded_similar(query, budget)?)
            }
            // Approximate requests run exact (module docs), but the
            // request surface must validate its δ exactly as the
            // unsharded engine does — acceptance of a malformed request
            // must not depend on the shard configuration.
            QueryRequest::Approximate { query, delta } => {
                self.config.clone().with_delta(*delta)?;
                QueryOutcome::Best(self.sharded_similar(query, budget)?)
            }
            QueryRequest::TopK { query, k } => {
                QueryOutcome::Ranked(self.sharded_top_k(query, *k, budget)?)
            }
            QueryRequest::Batch { queries } => QueryOutcome::Batch(
                self.sharded_batch_results(queries, budget)?
                    .into_iter()
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            QueryRequest::MaxRs { size } => {
                QueryOutcome::MaxRs(self.sharded_max_rs(*size, Selection::All, budget)?)
            }
            QueryRequest::MaxRsSelective { size, selection } => {
                QueryOutcome::MaxRs(self.sharded_max_rs(*size, selection.clone(), budget)?)
            }
            QueryRequest::Configured { .. } => {
                // lint:allow(operation() strips every Configured envelope before dispatch; this arm is statically dead)
                unreachable!("operation() peels Configured envelopes")
            }
        };
        Ok(QueryResponse::from_outcome(plan.backend, outcome))
    }

    fn shard_set(&self) -> &ShardSet {
        self.shards
            .as_ref()
            // lint:allow(every caller dispatches here only after checking core.shards is Some; a miss is a routing bug worth a loud stop)
            .expect("sharded execution requires a shard set")
    }

    /// Scattered single-region search.
    pub(crate) fn sharded_similar(
        &self,
        query: &AsrsQuery,
        budget: Option<Budget>,
    ) -> Result<SearchResult, AsrsError> {
        self.sharded_top_k(query, 1, budget)?
            .into_iter()
            .next()
            .ok_or_else(crate::best::no_finite_candidate)
    }

    /// Scattered top-k search.
    pub(crate) fn sharded_top_k(
        &self,
        query: &AsrsQuery,
        k: usize,
        budget: Option<Budget>,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        if k == 0 {
            return Err(AsrsError::InvalidTopK);
        }
        scatter_search(
            &self.dataset,
            &self.aggregator,
            &self.config,
            self.shard_set(),
            query,
            k,
            budget,
        )
    }

    /// Scattered batch: queries are answered one after another (each
    /// scatter already fans out across the shard slabs), with the same
    /// per-slot contract as the unsharded batch executor — validation is
    /// all-or-nothing up front, and a panic inside one query's search
    /// costs that slot an [`AsrsError::Internal`], never the process.
    pub(crate) fn sharded_batch_results(
        &self,
        queries: &[AsrsQuery],
        budget: Option<Budget>,
    ) -> Result<Vec<Result<SearchResult, AsrsError>>, AsrsError> {
        for query in queries {
            query.validate(&self.aggregator)?;
        }
        Ok(queries
            .iter()
            .map(|query| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.sharded_similar(query, budget)
                }))
                .unwrap_or_else(|payload| {
                    Err(AsrsError::Internal {
                        message: format!(
                            "sharded search worker panicked: {}",
                            crate::engine::panic_message(payload.as_ref())
                        ),
                    })
                })
            })
            .collect())
    }

    /// Scattered MaxRS: the same count reduction as the sequential
    /// adaptation, executed per shard slab and gathered.
    pub(crate) fn sharded_max_rs(
        &self,
        size: RegionSize,
        selection: Selection,
        budget: Option<Budget>,
    ) -> Result<MaxRsResult, AsrsError> {
        let config = SearchConfig {
            delta: 0.0,
            ..self.config.clone()
        };
        let search = MaxRsSearch::new(&self.dataset, size)
            .with_selection(selection)
            .with_config(config.clone());
        let (aggregator, query) = search.reduction()?;
        let result = scatter_search(
            &self.dataset,
            &aggregator,
            &config,
            self.shard_set(),
            &query,
            1,
            budget,
        )?
        .into_iter()
        .next()
        .ok_or_else(crate::best::no_finite_candidate)?;
        Ok(MaxRsSearch::result_from_search(result))
    }
}
