//! The MaxRS adaptation of DS-Search (Section 7.5).
//!
//! The MaxRS problem asks for the `a × b` region enclosing the maximum
//! number of objects.  It is a special case of ASRS: with a count
//! aggregator and a target count larger than the dataset cardinality,
//! minimising `|count − target|` is the same as maximising the count, and
//! the Equation-1 lower bound of a dirty cell becomes `target − upper
//! count`, so DS-Search's best-first order processes the cells with the
//! largest count upper bound first — exactly the adaptation described in
//! the paper.

use crate::config::SearchConfig;
use crate::ds_search::DsSearch;
use crate::error::AsrsError;
use crate::query::AsrsQuery;
use crate::stats::SearchStats;
use asrs_aggregator::{
    AggregatorKind, AggregatorSpec, CompositeAggregator, FeatureVector, Selection, Weights,
};
use asrs_data::Dataset;
use asrs_geo::{Point, Rect, RegionSize};
use serde::{Deserialize, Serialize};

/// Result of a MaxRS search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxRsResult {
    /// The region of size `a × b` enclosing the maximum number of objects.
    pub region: Rect,
    /// Bottom-left corner of the region.
    pub anchor: Point,
    /// Number of objects strictly inside the region.
    pub count: usize,
    /// Search instrumentation.
    pub stats: SearchStats,
}

/// DS-Search adapted to the MaxRS problem.
pub struct MaxRsSearch<'a> {
    dataset: &'a Dataset,
    size: RegionSize,
    selection: Selection,
    config: SearchConfig,
}

impl<'a> MaxRsSearch<'a> {
    /// Creates a MaxRS solver for regions of the given size.
    pub fn new(dataset: &'a Dataset, size: RegionSize) -> Self {
        Self {
            dataset,
            size,
            selection: Selection::All,
            config: SearchConfig::default(),
        }
    }

    /// Restricts the count to objects satisfying `selection` (the
    /// class-constrained MaxRS variant of Mostafiz et al. discussed in the
    /// related work).
    pub fn with_selection(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }

    /// Overrides the search configuration.
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// [`AsrsError::InvalidRegionSize`] when the region size is
    /// non-positive or non-finite; [`AsrsError::Config`] when the
    /// configuration is invalid.
    pub fn search(&self) -> Result<MaxRsResult, AsrsError> {
        self.search_within(None)
    }

    /// Like [`MaxRsSearch::search`], with an optional wall-clock budget
    /// (see [`DsSearch::search_within`]).
    pub fn search_within(
        &self,
        budget: Option<crate::budget::Budget>,
    ) -> Result<MaxRsResult, AsrsError> {
        let (aggregator, query) = self.reduction()?;
        let result = DsSearch::with_config(self.dataset, &aggregator, self.config.clone())
            .search_within(&query, budget)?;
        Ok(Self::result_from_search(result))
    }

    /// The MaxRS → ASRS reduction: a count aggregator over the selection
    /// plus a target strictly above the attainable maximum, which turns
    /// minimisation of `|count − target|` into maximisation of the count.
    /// Shared by the sequential search above and the sharded scatter
    /// executor (which runs the same reduction per shard).
    ///
    /// # Errors
    ///
    /// [`AsrsError::InvalidRegionSize`] when the region size is
    /// non-positive or non-finite.
    pub(crate) fn reduction(&self) -> Result<(CompositeAggregator, AsrsQuery), AsrsError> {
        let (w, h) = (self.size.width, self.size.height);
        if !(w.is_finite() && w > 0.0 && h.is_finite() && h > 0.0) {
            return Err(AsrsError::InvalidRegionSize {
                width: w,
                height: h,
            });
        }
        let aggregator = CompositeAggregator::new(
            self.dataset.schema(),
            vec![AggregatorSpec {
                kind: AggregatorKind::Count,
                selection: self.selection.clone(),
            }],
        )
        // lint:allow(CompositeAggregator::new only rejects selections referencing unknown attributes; Count with the dataset's own schema cannot fail)
        .expect("a count aggregator is valid for every schema");
        let target = self.dataset.len() as f64 + 1.0;
        let query = AsrsQuery::new(
            self.size,
            FeatureVector::new(vec![target]),
            Weights::uniform(1),
        );
        Ok((aggregator, query))
    }

    /// Converts the reduced problem's answer back into a [`MaxRsResult`].
    pub(crate) fn result_from_search(result: crate::result::SearchResult) -> MaxRsResult {
        let count = result.representation[0].round() as usize;
        MaxRsResult {
            region: result.region,
            anchor: result.anchor,
            count,
            stats: result.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_data::gen::UniformGenerator;
    use asrs_data::{AttrValue, DatasetBuilder, Schema};

    #[test]
    fn finds_the_densest_cluster() {
        // A tight cluster of 5 objects plus scattered singletons: the best
        // 2x2 region must contain the whole cluster.
        let mut b = DatasetBuilder::new(Schema::empty());
        for (x, y) in [
            (10.0, 10.0),
            (10.3, 10.2),
            (10.6, 10.4),
            (10.2, 10.8),
            (10.9, 10.9),
        ] {
            b.push(x, y, vec![]);
        }
        for (x, y) in [(1.0, 1.0), (20.0, 3.0), (3.0, 18.0), (25.0, 25.0)] {
            b.push(x, y, vec![]);
        }
        let ds = b.build().unwrap();
        let result = MaxRsSearch::new(&ds, RegionSize::new(2.0, 2.0))
            .search()
            .unwrap();
        assert_eq!(result.count, 5);
        assert_eq!(ds.count_strictly_in(&result.region), 5);
    }

    #[test]
    fn count_matches_region_recount_on_random_data() {
        let ds = UniformGenerator::default().generate(500, 99);
        let result = MaxRsSearch::new(&ds, RegionSize::new(15.0, 12.0))
            .search()
            .unwrap();
        assert_eq!(ds.count_strictly_in(&result.region), result.count);
        assert!(result.count >= 1);
        assert_eq!(result.region.bottom_left(), result.anchor);
    }

    #[test]
    fn selection_restricts_the_counted_objects() {
        let ds = UniformGenerator::default().generate(400, 5);
        let all = MaxRsSearch::new(&ds, RegionSize::new(20.0, 20.0))
            .search()
            .unwrap();
        let only_cat0 = MaxRsSearch::new(&ds, RegionSize::new(20.0, 20.0))
            .with_selection(Selection::cat_equals(0, 0))
            .search()
            .unwrap();
        assert!(only_cat0.count <= all.count);
        // The reported count only considers category-0 objects.
        let recount = ds
            .objects_strictly_in(&only_cat0.region)
            .iter()
            .filter(|o| o.cat_value(0) == Some(0))
            .count();
        assert_eq!(recount, only_cat0.count);
    }

    #[test]
    fn empty_dataset_returns_zero() {
        let ds = Dataset::new_unchecked(Schema::empty(), vec![]);
        let result = MaxRsSearch::new(&ds, RegionSize::new(1.0, 1.0))
            .search()
            .unwrap();
        assert_eq!(result.count, 0);
    }

    #[test]
    fn degenerate_size_is_an_error() {
        let ds = UniformGenerator::default().generate(10, 1);
        assert!(matches!(
            MaxRsSearch::new(&ds, RegionSize::new(0.0, 2.0)).search(),
            Err(AsrsError::InvalidRegionSize { .. })
        ));
        assert!(matches!(
            MaxRsSearch::new(&ds, RegionSize::new(2.0, f64::NAN)).search(),
            Err(AsrsError::InvalidRegionSize { .. })
        ));
    }

    #[test]
    fn single_object_dataset() {
        let mut b = DatasetBuilder::new(Schema::new(vec![]));
        b.push(5.0, 5.0, Vec::<AttrValue>::new());
        let ds = b.build().unwrap();
        let result = MaxRsSearch::new(&ds, RegionSize::new(2.0, 2.0))
            .search()
            .unwrap();
        assert_eq!(result.count, 1);
        assert!(result.region.strictly_contains_point(&Point::new(5.0, 5.0)));
    }
}
