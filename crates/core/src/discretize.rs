//! Function `Discretize` (Section 4.3).
//!
//! The space under consideration is discretised into an `n_col × n_row`
//! grid.  Cells are classified into *clean* cells (no rectangle partially
//! covers them — every point of the cell is covered by exactly the same set
//! of rectangles) and *dirty* cells.  Clean cells are evaluated exactly and
//! refine the intermediate result; dirty cells get an Equation-1 distance
//! lower bound and are pruned when the bound cannot beat the intermediate
//! result.
//!
//! The per-cell statistics are accumulated with 2-D difference arrays: each
//! rectangle adds its additive statistics contribution over the range of
//! cells it overlaps (upper accumulator) and over the range it fully covers
//! (lower accumulator) in O(1) array updates; a single prefix-sum pass then
//! materialises per-cell statistics.  This keeps `Discretize` at
//! `O(n + n_col · n_row · d)` as required by the paper's complexity analysis
//! (Lemma 6).

use crate::asp::AspInstance;
use crate::best::BestSet;
use crate::query::AsrsQuery;
use asrs_aggregator::CompositeAggregator;
use asrs_data::Dataset;
use asrs_geo::{GridSpec, Rect};

/// A dirty cell retained for further splitting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DirtyCell {
    /// Column of the cell in the discretisation grid.
    pub col: usize,
    /// Row of the cell in the discretisation grid.
    pub row: usize,
    /// Equation-1 lower bound on the distance of any point in the cell.
    pub lb: f64,
    /// Number of rectangles that partially cover the cell.
    pub partials: u32,
}

/// Outcome of one `Discretize` invocation.  Clean-cell candidates are
/// offered directly to the caller's [`BestSet`] rather than returned.
#[derive(Debug, Clone)]
pub(crate) struct DiscretizeOutcome {
    /// The grid that was laid over the space.
    pub grid: GridSpec,
    /// Dirty cells whose lower bound is below the pruning threshold.
    pub retained_dirty: Vec<DirtyCell>,
    /// Number of clean cells.
    pub clean_cells: u64,
    /// Number of dirty cells.
    pub dirty_cells: u64,
    /// Number of dirty cells pruned by the lower bound.
    pub pruned_dirty: u64,
}

/// A pair of 2-D difference arrays (lower = fully-covering contributions,
/// upper = fully-or-partially-covering contributions) plus a partial-cover
/// counter, all over an `(cols + 1) × (rows + 1)` corner lattice.
struct DiffArrays {
    cols: usize,
    rows: usize,
    dims: usize,
    lower: Vec<f64>,
    upper: Vec<f64>,
    partial: Vec<f64>,
}

impl DiffArrays {
    fn new(cols: usize, rows: usize, dims: usize) -> Self {
        let n = (cols + 1) * (rows + 1);
        Self {
            cols,
            rows,
            dims,
            lower: vec![0.0; n * dims],
            upper: vec![0.0; n * dims],
            partial: vec![0.0; n],
        }
    }

    #[inline]
    fn corner(&self, col: usize, row: usize) -> usize {
        row * (self.cols + 1) + col
    }

    /// Adds `contrib` over the half-open cell range to a stats array.
    #[allow(clippy::too_many_arguments)]
    fn add_range_stats(
        arr: &mut [f64],
        dims: usize,
        cols: usize,
        contrib: &[f64],
        c0: usize,
        c1: usize,
        r0: usize,
        r1: usize,
    ) {
        let corner = |col: usize, row: usize| (row * (cols + 1) + col) * dims;
        for (k, v) in contrib.iter().enumerate() {
            if *v == 0.0 {
                continue;
            }
            arr[corner(c0, r0) + k] += v;
            arr[corner(c1, r0) + k] -= v;
            arr[corner(c0, r1) + k] -= v;
            arr[corner(c1, r1) + k] += v;
        }
    }

    /// Adds a scalar over the half-open cell range to the partial counter.
    fn add_range_partial(&mut self, value: f64, c0: usize, c1: usize, r0: usize, r1: usize) {
        let i00 = self.corner(c0, r0);
        let i10 = self.corner(c1, r0);
        let i01 = self.corner(c0, r1);
        let i11 = self.corner(c1, r1);
        self.partial[i00] += value;
        self.partial[i10] -= value;
        self.partial[i01] -= value;
        self.partial[i11] += value;
    }

    /// Turns the difference arrays into per-cell values via 2-D prefix sums.
    fn materialize(&mut self) {
        let cols = self.cols;
        let rows = self.rows;
        let dims = self.dims;
        let width = cols + 1;
        // Prefix along columns then rows, for the stats arrays.
        for arr in [&mut self.lower, &mut self.upper] {
            for row in 0..=rows {
                for col in 1..=cols {
                    let cur = (row * width + col) * dims;
                    let prev = (row * width + col - 1) * dims;
                    for k in 0..dims {
                        arr[cur + k] += arr[prev + k];
                    }
                }
            }
            for row in 1..=rows {
                for col in 0..=cols {
                    let cur = (row * width + col) * dims;
                    let prev = ((row - 1) * width + col) * dims;
                    for k in 0..dims {
                        arr[cur + k] += arr[prev + k];
                    }
                }
            }
        }
        for row in 0..=rows {
            for col in 1..=cols {
                self.partial[row * width + col] += self.partial[row * width + col - 1];
            }
        }
        for row in 1..=rows {
            for col in 0..=cols {
                self.partial[row * width + col] += self.partial[(row - 1) * width + col];
            }
        }
    }

    #[inline]
    fn cell_stats<'s>(&'s self, arr: &'s [f64], col: usize, row: usize) -> &'s [f64] {
        let idx = (row * (self.cols + 1) + col) * self.dims;
        &arr[idx..idx + self.dims]
    }

    #[inline]
    fn cell_partial(&self, col: usize, row: usize) -> f64 {
        self.partial[row * (self.cols + 1) + col]
    }
}

/// Runs Function `Discretize` over `space`.
///
/// `candidates` are the indices of the ASP rectangles that overlap `space`;
/// `best` is the caller's intermediate result (its cutoff generalises the
/// paper's `d_opt` to the k-best setting), and `prune_factor` is `1 + δ`
/// (1 for the exact algorithm).  Clean cells that improve on the cutoff
/// are offered to `best` in place.
///
/// With `retain_ties`, dirty cells whose lower bound *equals* the pruning
/// threshold are retained instead of pruned.  The fast path prunes them
/// (they cannot improve the best distance), but which equally-optimal
/// candidates then get discovered depends on the decomposition trajectory;
/// the sharded executor needs every tied candidate probed so its anchor
/// tie-break is shard-count-independent.
#[allow(clippy::too_many_arguments)]
pub(crate) fn discretize(
    space: &Rect,
    ncols: usize,
    nrows: usize,
    asp: &AspInstance,
    candidates: &[u32],
    dataset: &Dataset,
    aggregator: &CompositeAggregator,
    query: &AsrsQuery,
    best: &mut BestSet,
    prune_factor: f64,
    retain_ties: bool,
) -> DiscretizeOutcome {
    let grid = GridSpec::new(*space, ncols, nrows);
    let dims = aggregator.stats_dim();
    let mut arrays = DiffArrays::new(ncols, nrows, dims);
    let mut contrib = vec![0.0; dims];

    for &idx in candidates {
        let rect_obj = &asp.rects()[idx as usize];
        let overlap = grid.cells_overlapping(&rect_obj.rect);
        if overlap.is_empty() {
            continue;
        }
        contrib.iter_mut().for_each(|v| *v = 0.0);
        aggregator.accumulate_object(dataset.object(rect_obj.object_idx as usize), &mut contrib);
        DiffArrays::add_range_stats(
            &mut arrays.upper,
            dims,
            ncols,
            &contrib,
            overlap.col_start,
            overlap.col_end,
            overlap.row_start,
            overlap.row_end,
        );
        arrays.add_range_partial(
            1.0,
            overlap.col_start,
            overlap.col_end,
            overlap.row_start,
            overlap.row_end,
        );
        let full = grid.cells_contained(&rect_obj.rect);
        if !full.is_empty() {
            DiffArrays::add_range_stats(
                &mut arrays.lower,
                dims,
                ncols,
                &contrib,
                full.col_start,
                full.col_end,
                full.row_start,
                full.row_end,
            );
            arrays.add_range_partial(
                -1.0,
                full.col_start,
                full.col_end,
                full.row_start,
                full.row_end,
            );
        }
    }

    arrays.materialize();

    let mut clean_cells = 0u64;
    let mut dirty_cells = 0u64;
    let mut pruned_dirty = 0u64;
    let mut provisional_dirty: Vec<DirtyCell> = Vec::new();

    // First pass: clean cells refine the intermediate result.
    for row in 0..nrows {
        for col in 0..ncols {
            let partial = arrays.cell_partial(col, row);
            if partial < 0.5 {
                clean_cells += 1;
                let stats = arrays.cell_stats(&arrays.upper, col, row);
                let representation = aggregator.stats_to_features(stats);
                let distance = aggregator.distance(
                    &representation,
                    &query.target,
                    &query.weights,
                    query.metric,
                );
                if distance <= best.cutoff() {
                    best.offer_region(distance, &grid.cell_rect(col, row), representation);
                }
            } else {
                dirty_cells += 1;
                let lower = arrays.cell_stats(&arrays.lower, col, row);
                let upper = arrays.cell_stats(&arrays.upper, col, row);
                let lb = aggregator.lower_bound_distance(
                    &query.target,
                    lower,
                    upper,
                    &query.weights,
                    query.metric,
                );
                provisional_dirty.push(DirtyCell {
                    col,
                    row,
                    lb,
                    partials: partial.round() as u32,
                });
            }
        }
    }

    // Second pass: prune dirty cells against the (possibly improved)
    // cutoff, divided by (1 + δ) for the approximate variant.
    let threshold = best.cutoff() / prune_factor;
    let mut retained_dirty = Vec::with_capacity(provisional_dirty.len());
    for cell in provisional_dirty {
        let keep = if retain_ties {
            cell.lb <= threshold
        } else {
            cell.lb < threshold
        };
        if keep {
            retained_dirty.push(cell);
        } else {
            pruned_dirty += 1;
        }
    }

    DiscretizeOutcome {
        grid,
        retained_dirty,
        clean_cells,
        dirty_cells,
        pruned_dirty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AsrsQuery;
    use asrs_aggregator::{CompositeAggregator, FeatureVector, Selection, Weights};
    use asrs_data::{AttrValue, AttributeDef, AttributeKind, Dataset, DatasetBuilder, Schema};
    use asrs_geo::{Point, RegionSize};

    /// Mirrors the reduction example of Fig. 2: six objects coloured red or
    /// blue; the query representation is (#red, #blue) = (1, 1).
    fn fig2_dataset() -> Dataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "color",
            AttributeKind::categorical_labeled(vec!["red", "blue"]),
        )]);
        let mut b = DatasetBuilder::new(schema);
        b.push(2.0, 8.0, vec![AttrValue::Cat(0)]);
        b.push(3.5, 7.0, vec![AttrValue::Cat(1)]);
        b.push(1.5, 3.0, vec![AttrValue::Cat(1)]);
        b.push(5.0, 2.0, vec![AttrValue::Cat(0)]);
        b.push(7.5, 2.5, vec![AttrValue::Cat(1)]);
        b.push(8.0, 1.5, vec![AttrValue::Cat(0)]);
        b.build().unwrap()
    }

    fn setup() -> (Dataset, CompositeAggregator, AsrsQuery, AspInstance) {
        let ds = fig2_dataset();
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("color", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(3.0, 3.0),
            FeatureVector::new(vec![1.0, 1.0]),
            Weights::uniform(2),
        );
        let asp = AspInstance::build(&ds, query.size, None, 1e-12);
        (ds, agg, query, asp)
    }

    #[test]
    fn clean_and_dirty_cells_partition_the_grid() {
        let (ds, agg, query, asp) = setup();
        let space = asp.space().unwrap();
        let mut best = BestSet::new(1);
        let out = discretize(
            &space,
            10,
            10,
            &asp,
            &asp.all_rect_indices(),
            &ds,
            &agg,
            &query,
            &mut best,
            1.0,
            false,
        );
        assert_eq!(out.clean_cells + out.dirty_cells, 100);
        assert!(out.dirty_cells > 0, "rect edges must cross some cells");
        assert!(out.clean_cells > 0);
        assert_eq!(
            out.retained_dirty.len() as u64 + out.pruned_dirty,
            out.dirty_cells
        );
    }

    #[test]
    fn clean_cell_distances_match_direct_evaluation() {
        let (ds, agg, query, asp) = setup();
        let space = asp.space().unwrap();
        let mut best = BestSet::new(1);
        discretize(
            &space,
            8,
            8,
            &asp,
            &asp.all_rect_indices(),
            &ds,
            &agg,
            &query,
            &mut best,
            1.0,
            false,
        );
        // The best candidate's representation must equal the representation
        // computed directly from the objects inside the anchored region.
        assert!(
            best.cutoff().is_finite(),
            "some clean cell improves on +inf"
        );
        let entry = best.best().clone();
        let region = Rect::from_bottom_left(entry.anchor, query.size);
        let direct = agg.aggregate_region(&ds, &region);
        assert_eq!(entry.representation, direct);
        let d = agg.distance(&direct, &query.target, &query.weights, query.metric);
        assert!((d - entry.distance).abs() < 1e-9);
    }

    #[test]
    fn dirty_cell_bounds_are_sound() {
        // For every retained dirty cell, the lower bound must not exceed the
        // true distance of any probe point inside the cell.
        let (ds, agg, query, asp) = setup();
        let space = asp.space().unwrap();
        let mut best = BestSet::new(1);
        let out = discretize(
            &space,
            10,
            10,
            &asp,
            &asp.all_rect_indices(),
            &ds,
            &agg,
            &query,
            &mut best,
            1.0,
            false,
        );
        let candidates = asp.all_rect_indices();
        for cell in &out.retained_dirty {
            let rect = out.grid.cell_rect(cell.col, cell.row);
            for (fx, fy) in [(0.25, 0.25), (0.5, 0.5), (0.75, 0.75), (0.1, 0.9)] {
                let p = Point::new(
                    rect.min_x + fx * rect.width(),
                    rect.min_y + fy * rect.height(),
                );
                let objs = asp.objects_covering(&p, &candidates);
                let rep = agg.aggregate(objs.iter().map(|&i| ds.object(i as usize)));
                let d = agg.distance(&rep, &query.target, &query.weights, query.metric);
                assert!(
                    cell.lb <= d + 1e-9,
                    "lb {} exceeds distance {} at {p} in cell ({}, {})",
                    cell.lb,
                    d,
                    cell.col,
                    cell.row
                );
            }
        }
    }

    #[test]
    fn pruning_respects_current_best() {
        let (ds, agg, query, asp) = setup();
        let space = asp.space().unwrap();
        // With an already-perfect best distance of 0, every dirty cell whose
        // lower bound is 0 is retained and everything else pruned.
        let mut best = BestSet::new(1);
        best.offer(
            0.0,
            Point::new(-100.0, -100.0),
            FeatureVector::new(vec![1.0, 1.0]),
        );
        let out = discretize(
            &space,
            10,
            10,
            &asp,
            &asp.all_rect_indices(),
            &ds,
            &agg,
            &query,
            &mut best,
            1.0,
            false,
        );
        assert!(out.retained_dirty.is_empty());
        assert_eq!(out.pruned_dirty, out.dirty_cells);
        assert_eq!(
            best.best().anchor,
            Point::new(-100.0, -100.0),
            "nothing can improve on a best of 0"
        );
    }

    #[test]
    fn approximation_factor_tightens_retention() {
        let (ds, agg, query, asp) = setup();
        let space = asp.space().unwrap();
        let exact = discretize(
            &space,
            10,
            10,
            &asp,
            &asp.all_rect_indices(),
            &ds,
            &agg,
            &query,
            &mut BestSet::new(1),
            1.0,
            false,
        );
        let approx = discretize(
            &space,
            10,
            10,
            &asp,
            &asp.all_rect_indices(),
            &ds,
            &agg,
            &query,
            &mut BestSet::new(1),
            1.4,
            false,
        );
        assert!(approx.retained_dirty.len() <= exact.retained_dirty.len());
    }

    #[test]
    fn empty_candidate_set_yields_all_clean_cells() {
        let (ds, agg, query, asp) = setup();
        let space = asp.space().unwrap();
        let mut best = BestSet::new(1);
        let out = discretize(
            &space,
            5,
            5,
            &asp,
            &[],
            &ds,
            &agg,
            &query,
            &mut best,
            1.0,
            false,
        );
        assert_eq!(out.clean_cells, 25);
        assert_eq!(out.dirty_cells, 0);
        // All cells are empty ⇒ representation (0, 0) ⇒ distance 2.
        assert!((best.best().distance - 2.0).abs() < 1e-9);
    }
}
