//! The engine-level query-result cache.
//!
//! A serving engine sees the same [`QueryRequest`](crate::QueryRequest)s
//! over and over — popular example regions, dashboard refreshes, retries —
//! and every search is deterministic, so recomputing an identical request
//! is pure waste.  [`QueryCache`] memoises successful
//! [`QueryResponse`](crate::QueryResponse)s keyed by the request's
//! canonical fingerprint ([`RequestKey`]), which collapses representation
//! differences (`-0.0` vs `+0.0`) but never conflates genuinely different
//! requests.
//!
//! The cache is sharded: keys are distributed over independently locked
//! shards so concurrent readers on different shards never contend, and each
//! shard evicts its least-recently-used entry when full.  A cache *hit*
//! returns the stored response verbatim — byte-identical to what the cold
//! computation produced, statistics included — so cached and uncached
//! answers are indistinguishable on the wire.  Hit/miss counters are kept
//! engine-wide and surfaced through [`CacheStats`] (and from there into
//! [`SearchStats::cache_hits`](crate::SearchStats::cache_hits) on
//! aggregate snapshots such as a serving `/metrics` endpoint).

use crate::request::{QueryResponse, RequestKey};
use crate::sync::Mutex;
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked shards.  A fixed power of two keeps the
/// key → shard mapping a cheap mask; 16 shards already make lock collisions
/// rare at the worker-pool sizes the server runs.
const SHARD_COUNT: usize = 16;

#[derive(Debug)]
struct Entry {
    response: QueryResponse,
    last_used: u64,
}

/// Keys are shared between the entry map and the recency index behind an
/// [`Arc`], so maintaining both costs reference counts, not byte copies.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<Arc<RequestKey>, Entry>,
    /// Recency index: per-shard clock stamp → key.  Stamps are unique
    /// within a shard, so the first entry is always the least recently
    /// used one and eviction is `O(log n)` instead of a full scan.
    order: BTreeMap<u64, Arc<RequestKey>>,
    /// Monotonic per-shard use counter; the entry with the smallest stamp
    /// is the least recently used one.
    clock: u64,
}

impl Shard {
    fn touch(&mut self, key: &RequestKey) -> Option<QueryResponse> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.get_mut(key)?;
        let shared_key = self
            .order
            .remove(&entry.last_used)
            // lint:allow(entries and order are updated together under one lock; a missing stamp is a cache-coherence bug worth a loud stop)
            .expect("every entry has a recency stamp");
        self.order.insert(clock, shared_key);
        entry.last_used = clock;
        Some(entry.response.clone())
    }

    fn insert(&mut self, key: RequestKey, response: QueryResponse, capacity: usize) {
        self.clock += 1;
        let clock = self.clock;
        let key = Arc::new(key);
        if let Some(replaced) = self.entries.insert(
            Arc::clone(&key),
            Entry {
                response,
                last_used: clock,
            },
        ) {
            self.order.remove(&replaced.last_used);
        }
        self.order.insert(clock, key);
        while self.entries.len() > capacity {
            let (&stamp, _) = self
                .order
                .first_key_value()
                // lint:allow(the loop condition guarantees entries is non-empty, and order mirrors entries under the same lock)
                .expect("shard over capacity implies at least one entry");
            let lru = self
                .order
                .remove(&stamp)
                // lint:allow(the stamp was read from order one line above under the same lock)
                .expect("stamp was just observed in the index");
            self.entries.remove(&lru);
        }
    }
}

/// A point-in-time snapshot of the cache counters, serialized into the
/// server's `/metrics` endpoint.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to be computed.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Maximum number of entries the cache retains.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded LRU cache from canonical request keys to query responses.
///
/// Keys are distributed over independently locked shards so concurrent
/// readers on different shards never contend; each shard evicts its least
/// recently used entry when full.  A hit returns the stored response
/// verbatim, so cached and freshly computed answers are byte-identical on
/// the wire.
#[derive(Debug)]
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryCache {
    /// Creates a cache retaining up to `capacity` responses, rounded up to
    /// the next multiple of the shard count (16) so every shard holds the
    /// same number of entries — `new(100)` retains up to 112, `new(1)` up
    /// to 16.  [`CacheStats::capacity`] always reports the effective
    /// (rounded) value.  A zero capacity is the caller's cue not to build
    /// a cache at all and is rounded up here defensively.
    pub fn new(capacity: usize) -> Self {
        let per_shard_capacity = capacity.div_ceil(SHARD_COUNT).max(1);
        Self {
            shards: (0..SHARD_COUNT).map(|_| Mutex::default()).collect(),
            per_shard_capacity,
            capacity: per_shard_capacity * SHARD_COUNT,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &RequestKey) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARD_COUNT]
    }

    /// Looks up a response, refreshing its recency and counting the
    /// hit/miss.
    pub fn get(&self, key: &RequestKey) -> Option<QueryResponse> {
        // A poisoned shard (a panicking peer mid-update) simply stops
        // serving hits: a cache may always degrade to doing nothing.
        let found = self
            .shard_of(key)
            .lock()
            .ok()
            .and_then(|mut shard| shard.touch(key));
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a response, evicting the shard's least recently used entry
    /// when the shard is full.
    pub fn insert(&self, key: RequestKey, response: QueryResponse) {
        if let Ok(mut shard) = self.shard_of(&key).lock() {
            shard.insert(key, response, self.per_shard_capacity);
        }
    }

    /// The generation stamps of every stored key, for the invariant
    /// auditor (an engine-owned cache only ever stores
    /// [`RequestKey::stamped`](crate::RequestKey::stamped) keys).  Keys
    /// too short to carry a stamp are skipped.
    pub(crate) fn stamped_generations(&self) -> Vec<u64> {
        self.shards
            .iter()
            .filter_map(|s| s.lock().ok())
            .flat_map(|shard| {
                shard
                    .entries
                    .keys()
                    .filter_map(|k| k.generation_stamp())
                    .collect::<Vec<u64>>()
            })
            .collect()
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .filter_map(|s| s.lock().ok())
                .map(|shard| shard.entries.len())
                .sum(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AsrsQuery;
    use crate::request::{Backend, QueryOutcome, QueryRequest};
    use crate::result::SearchResult;
    use crate::stats::SearchStats;
    use asrs_aggregator::{FeatureVector, Weights};
    use asrs_geo::{Point, Rect, RegionSize};

    fn request(i: u32) -> QueryRequest {
        QueryRequest::similar(AsrsQuery::new(
            RegionSize::new(1.0 + i as f64, 2.0),
            FeatureVector::new(vec![i as f64]),
            Weights::uniform(1),
        ))
    }

    fn response(d: f64) -> QueryResponse {
        QueryResponse {
            backend: Backend::DsSearch,
            outcome: QueryOutcome::Best(SearchResult::new(
                Point::new(0.0, 0.0),
                Rect::new(0.0, 0.0, 1.0, 1.0),
                d,
                FeatureVector::new(vec![d]),
                SearchStats::new(),
            )),
            stats: SearchStats::new(),
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = QueryCache::new(8);
        let key = request(1).cache_key();
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), response(1.0));
        assert_eq!(cache.get(&key).unwrap(), response(1.0));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reinsert_replaces_the_stored_response() {
        let cache = QueryCache::new(8);
        let key = request(1).cache_key();
        cache.insert(key.clone(), response(1.0));
        cache.insert(key.clone(), response(2.0));
        assert_eq!(cache.get(&key).unwrap(), response(2.0));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn least_recently_used_entry_is_evicted_first() {
        // Single-slot shards: force every key into eviction pressure by
        // inserting colliding keys until a shard overflows.
        let cache = QueryCache::new(1);
        assert_eq!(cache.per_shard_capacity, 1);
        // Find two distinct requests that land on the same shard.
        let keys: Vec<_> = (0..64).map(|i| request(i).cache_key()).collect();
        let mut same_shard = None;
        'outer: for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                if std::ptr::eq(cache.shard_of(a), cache.shard_of(b)) {
                    same_shard = Some((a.clone(), b.clone()));
                    break 'outer;
                }
            }
        }
        let (a, b) = same_shard.expect("64 keys over 16 shards must collide");
        cache.insert(a.clone(), response(1.0));
        cache.insert(b.clone(), response(2.0));
        assert!(
            cache.get(&a).is_none(),
            "older entry must have been evicted"
        );
        assert_eq!(cache.get(&b).unwrap(), response(2.0));
    }

    #[test]
    fn concurrent_access_is_safe_and_consistent() {
        // Capacity comfortably exceeds the 256 distinct keys inserted, so
        // no eviction can race an insert-then-get pair and the hit count
        // below is deterministic.
        let cache = QueryCache::new(1024);
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..32 {
                        let req = request(t * 32 + i);
                        cache.insert(req.cache_key(), response(i as f64));
                        assert_eq!(cache.get(&req.cache_key()), Some(response(i as f64)));
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits, 8 * 32);
        assert!(stats.entries <= stats.capacity);
    }
}
