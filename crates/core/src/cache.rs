//! The engine-level query-result cache.
//!
//! A serving engine sees the same [`QueryRequest`](crate::QueryRequest)s
//! over and over — popular example regions, dashboard refreshes, retries —
//! and every search is deterministic, so recomputing an identical request
//! is pure waste.  [`QueryCache`] memoises successful
//! [`QueryResponse`](crate::QueryResponse)s keyed by the request's
//! canonical fingerprint ([`RequestKey`]), which collapses representation
//! differences (`-0.0` vs `+0.0`) but never conflates genuinely different
//! requests.
//!
//! The cache is sharded: keys are distributed over independently locked
//! shards so concurrent readers on different shards never contend, and each
//! shard evicts its least-recently-used entry when full.  A cache *hit*
//! returns the stored response verbatim — byte-identical to what the cold
//! computation produced, statistics included — so cached and uncached
//! answers are indistinguishable on the wire.  Hit/miss counters are kept
//! engine-wide and surfaced through [`CacheStats`] (and from there into
//! [`SearchStats::cache_hits`](crate::SearchStats::cache_hits) on
//! aggregate snapshots such as a serving `/metrics` endpoint).
//!
//! # Single-flight miss coalescing
//!
//! Concurrent identical misses on the same key share one computation
//! through [`QueryCache::compute_coalesced`]: the first arrival (the
//! *leader*) registers an in-flight slot, computes while holding it, and
//! publishes the result; later arrivals (*waiters*) block on the slot and
//! clone whatever the leader produced — a success **or** an error, which
//! therefore propagates to every coalesced caller.  A leader that panics
//! poisons its slot; waiters detect the poison and degrade to independent
//! misses, so coalescing can only ever save work, never lose answers.
//! Lock order: `cache.inflight → cache.flight_slot → cache.shard`.
//!
//! # Cross-generation carry-forward
//!
//! Entries remember their originating request, so the mutation publish
//! path can *prove* that a commit batch cannot have changed an entry's
//! answer and re-stamp it to the next generation
//! ([`QueryCache::carry`]) instead of letting it age out.  A carried
//! entry records the generation it was proven at
//! ([`StampProvenance::carried_from`]) so the invariant auditor can check
//! the "stamped N+1, proven at N" contract.

use crate::error::AsrsError;
use crate::request::{QueryRequest, QueryResponse, RequestKey};
use crate::sync::Mutex;
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked shards.  A fixed power of two keeps the
/// key → shard mapping a cheap mask; 16 shards already make lock collisions
/// rare at the worker-pool sizes the server runs.
const SHARD_COUNT: usize = 16;

#[derive(Debug)]
struct Entry {
    response: QueryResponse,
    last_used: u64,
    /// The originating request, kept so a publish can re-prove the entry
    /// against the successor generation (carry-forward).  `None` for
    /// entries stored through the request-less [`QueryCache::insert`].
    request: Option<Arc<QueryRequest>>,
    /// The generation this entry was last *proven unchanged* at when it
    /// was carried forward instead of recomputed; `None` for entries the
    /// engine actually computed.
    carried_from: Option<u64>,
}

/// Keys are shared between the entry map and the recency index behind an
/// [`Arc`], so maintaining both costs reference counts, not byte copies.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<Arc<RequestKey>, Entry>,
    /// Recency index: per-shard clock stamp → key.  Stamps are unique
    /// within a shard, so the first entry is always the least recently
    /// used one and eviction is `O(log n)` instead of a full scan.
    order: BTreeMap<u64, Arc<RequestKey>>,
    /// Monotonic per-shard use counter; the entry with the smallest stamp
    /// is the least recently used one.
    clock: u64,
}

impl Shard {
    fn touch(&mut self, key: &RequestKey) -> Option<QueryResponse> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.get_mut(key)?;
        let shared_key = self
            .order
            .remove(&entry.last_used)
            // lint:allow(entries and order are updated together under one lock; a missing stamp is a cache-coherence bug worth a loud stop)
            .expect("every entry has a recency stamp");
        self.order.insert(clock, shared_key);
        entry.last_used = clock;
        Some(entry.response.clone())
    }

    fn insert(
        &mut self,
        key: RequestKey,
        response: QueryResponse,
        request: Option<Arc<QueryRequest>>,
        carried_from: Option<u64>,
        capacity: usize,
    ) {
        self.clock += 1;
        let clock = self.clock;
        let key = Arc::new(key);
        if let Some(replaced) = self.entries.insert(
            Arc::clone(&key),
            Entry {
                response,
                last_used: clock,
                request,
                carried_from,
            },
        ) {
            self.order.remove(&replaced.last_used);
        }
        self.order.insert(clock, key);
        while self.entries.len() > capacity {
            let (&stamp, _) = self
                .order
                .first_key_value()
                // lint:allow(the loop condition guarantees entries is non-empty, and order mirrors entries under the same lock)
                .expect("shard over capacity implies at least one entry");
            let lru = self
                .order
                .remove(&stamp)
                // lint:allow(the stamp was read from order one line above under the same lock)
                .expect("stamp was just observed in the index");
            self.entries.remove(&lru);
        }
    }

    /// Removes an entry, keeping the recency index coherent.
    fn remove(&mut self, key: &RequestKey) -> Option<Entry> {
        let entry = self.entries.remove(key)?;
        self.order.remove(&entry.last_used);
        Some(entry)
    }
}

/// One leader's result slot: waiters block on the inner mutex until the
/// leader (who holds it for the whole computation) publishes.
#[derive(Debug, Default)]
struct InFlight {
    slot: Mutex<Option<Result<QueryResponse, AsrsError>>>,
}

/// Removes a leader's in-flight registration when its computation ends —
/// on success, on error, *and* on panic (the drop runs during unwinding),
/// so a dead flight never pins its key in the table.
struct ClearFlight<'a> {
    cache: &'a QueryCache,
    key: &'a RequestKey,
    flight: &'a Arc<InFlight>,
}

impl Drop for ClearFlight<'_> {
    fn drop(&mut self) {
        if let Ok(mut table) = self.cache.inflight.lock() {
            if table
                .get(self.key)
                .is_some_and(|f| Arc::ptr_eq(f, self.flight))
            {
                table.remove(self.key);
            }
        }
    }
}

/// A stored key's generation stamp plus carry provenance, for the
/// invariant auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StampProvenance {
    /// The generation the key is stamped with.
    pub stamp: u64,
    /// The generation the entry was proven at when carried forward
    /// (`None` for computed entries).  Sound carries have
    /// `carried_from < stamp`.
    pub carried_from: Option<u64>,
}

/// A carry-forward candidate: an entry of the just-retired generation
/// that still knows its originating request, handed to the publish path
/// for re-proving against the successor core.
#[derive(Debug, Clone)]
pub(crate) struct CarryCandidate {
    /// The entry's current (old-generation) stamped key.
    pub key: RequestKey,
    /// The originating request.
    pub request: Arc<QueryRequest>,
    /// The stored response (what a carried hit would serve verbatim).
    pub response: QueryResponse,
}

/// A point-in-time snapshot of the cache counters, serialized into the
/// server's `/metrics` endpoint.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to be computed.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Maximum number of entries the cache retains.
    pub capacity: usize,
    /// Misses that blocked on another caller's in-flight computation and
    /// shared its result instead of recomputing.
    pub coalesced_waits: u64,
    /// Entries re-stamped to a successor generation because a commit
    /// batch provably could not change their answer.
    pub carried_forward: u64,
    /// Carry-forward attempts rejected by the byte-identity proof path —
    /// each one is a soundness near-miss worth investigating.
    pub carry_proof_failures: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded LRU cache from canonical request keys to query responses.
///
/// Keys are distributed over independently locked shards so concurrent
/// readers on different shards never contend; each shard evicts its least
/// recently used entry when full.  A hit returns the stored response
/// verbatim, so cached and freshly computed answers are byte-identical on
/// the wire.  Misses can be coalesced (see
/// [`QueryCache::compute_coalesced`]) and entries can survive generation
/// bumps when a publish proves them unchanged (see [`QueryCache::carry`]).
#[derive(Debug)]
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    /// Single-flight table: stamped key → the leader's in-flight slot.
    inflight: Mutex<HashMap<RequestKey, Arc<InFlight>>>,
    per_shard_capacity: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced_waits: AtomicU64,
    carried_forward: AtomicU64,
    carry_proof_failures: AtomicU64,
}

impl QueryCache {
    /// Creates a cache retaining up to `capacity` responses, rounded up to
    /// the next multiple of the shard count (16) so every shard holds the
    /// same number of entries — `new(100)` retains up to 112, `new(1)` up
    /// to 16.  [`CacheStats::capacity`] always reports the effective
    /// (rounded) value.  A zero capacity is the caller's cue not to build
    /// a cache at all and is rounded up here defensively.
    pub fn new(capacity: usize) -> Self {
        let per_shard_capacity = capacity.div_ceil(SHARD_COUNT).max(1);
        Self {
            shards: (0..SHARD_COUNT).map(|_| Mutex::default()).collect(),
            inflight: Mutex::new(HashMap::new()),
            per_shard_capacity,
            capacity: per_shard_capacity * SHARD_COUNT,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced_waits: AtomicU64::new(0),
            carried_forward: AtomicU64::new(0),
            carry_proof_failures: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &RequestKey) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARD_COUNT]
    }

    /// Looks up a response, refreshing its recency and counting the
    /// hit/miss.
    pub fn get(&self, key: &RequestKey) -> Option<QueryResponse> {
        // A poisoned shard (a panicking peer mid-update) simply stops
        // serving hits: a cache may always degrade to doing nothing.
        let found = self
            .shard_of(key)
            .lock()
            .ok()
            .and_then(|mut shard| shard.touch(key));
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a response, evicting the shard's least recently used entry
    /// when the shard is full.  Entries stored this way carry no request
    /// and therefore never qualify for carry-forward; the engine's submit
    /// path stores through [`QueryCache::compute_coalesced`] instead.
    pub fn insert(&self, key: RequestKey, response: QueryResponse) {
        if let Ok(mut shard) = self.shard_of(&key).lock() {
            shard.insert(key, response, None, None, self.per_shard_capacity);
        }
    }

    /// Computes a missed response exactly once across concurrent callers.
    ///
    /// The first caller for `key` becomes the leader: it runs `run` while
    /// holding the flight's result slot, stores a successful response
    /// (remembering `request` for carry-forward) and publishes the result
    /// — success or error — to every waiter blocked on the slot.  Waiters
    /// clone the leader's result without recomputing; a poisoned slot
    /// (the leader panicked) or a poisoned table degrades a caller to an
    /// ordinary independent miss.
    pub(crate) fn compute_coalesced<F>(
        &self,
        key: RequestKey,
        request: &QueryRequest,
        run: F,
    ) -> Result<QueryResponse, AsrsError>
    where
        F: FnOnce() -> Result<QueryResponse, AsrsError>,
    {
        let mut table = match self.inflight.lock() {
            Ok(table) => table,
            // Poisoned table: single-flight is unavailable, but a cache
            // may always degrade to independent misses.
            Err(_) => return self.compute_independent(key, request, run),
        };
        if let Some(existing) = table.get(&key) {
            let flight = Arc::clone(existing);
            drop(table);
            return self.wait_for_leader(flight, key, request, run);
        }
        let flight = Arc::new(InFlight::default());
        table.insert(key.clone(), Arc::clone(&flight));
        // Deregister on every exit — including a panic inside `run`, so a
        // dead flight never pins the key.  Declared before the slot guard:
        // it must run *after* the slot is released (poisoned or filled),
        // never while holding it.
        let clear = ClearFlight {
            cache: self,
            key: &key,
            flight: &flight,
        };
        // Take the result slot before the table is released so no waiter
        // can observe an unheld empty slot (uncontended: the flight was
        // created two lines up).
        let mut slot = match flight.slot.lock() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        drop(table);
        let result = run();
        if let Ok(response) = &result {
            if let Ok(mut shard) = self.shard_of(&key).lock() {
                shard.insert(
                    key.clone(),
                    response.clone(),
                    Some(Arc::new(request.clone())),
                    None,
                    self.per_shard_capacity,
                );
            }
        }
        *slot = Some(result.clone());
        drop(slot);
        drop(clear);
        result
    }

    /// Blocks on a leader's result slot and shares its outcome; degrades
    /// to an independent miss when the leader died without publishing.
    fn wait_for_leader<F>(
        &self,
        flight: Arc<InFlight>,
        key: RequestKey,
        request: &QueryRequest,
        run: F,
    ) -> Result<QueryResponse, AsrsError>
    where
        F: FnOnce() -> Result<QueryResponse, AsrsError>,
    {
        if let Ok(slot) = flight.slot.lock() {
            if let Some(result) = slot.as_ref() {
                self.coalesced_waits.fetch_add(1, Ordering::Relaxed);
                return result.clone();
            }
        }
        // The leader panicked (poisoned slot) or never published.  Clear
        // the dead flight if it still owns the key, then miss normally.
        if let Ok(mut table) = self.inflight.lock() {
            if table.get(&key).is_some_and(|f| Arc::ptr_eq(f, &flight)) {
                table.remove(&key);
            }
        }
        self.compute_independent(key, request, run)
    }

    /// An un-coalesced miss: compute, store on success.
    fn compute_independent<F>(
        &self,
        key: RequestKey,
        request: &QueryRequest,
        run: F,
    ) -> Result<QueryResponse, AsrsError>
    where
        F: FnOnce() -> Result<QueryResponse, AsrsError>,
    {
        let response = run()?;
        if let Ok(mut shard) = self.shard_of(&key).lock() {
            shard.insert(
                key,
                response.clone(),
                Some(Arc::new(request.clone())),
                None,
                self.per_shard_capacity,
            );
        }
        Ok(response)
    }

    /// Collects the entries stamped exactly `generation` that still know
    /// their originating request — the carry-forward candidates a publish
    /// re-proves against the successor core.  Entries with older stamps
    /// were already missed by readers of the retiring generation and are
    /// left to age out.
    pub(crate) fn carry_candidates(&self, generation: u64) -> Vec<CarryCandidate> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let Ok(shard) = shard.lock() else { continue };
            for (key, entry) in &shard.entries {
                if key.generation_stamp() != Some(generation) {
                    continue;
                }
                let Some(request) = &entry.request else {
                    continue;
                };
                out.push(CarryCandidate {
                    key: (**key).clone(),
                    request: Arc::clone(request),
                    response: entry.response.clone(),
                });
            }
        }
        out
    }

    /// Re-stamps a proven entry from `old_key` to `new_key`, recording
    /// that it was proven at generation `proven_at`.  The entry keeps its
    /// originating request, so it can be proven and carried again by
    /// later publishes.  Returns `false` when the entry aged out between
    /// candidate collection and the carry (nothing is inserted then —
    /// carrying must never resurrect evicted data).
    pub(crate) fn carry(&self, old_key: &RequestKey, new_key: RequestKey, proven_at: u64) -> bool {
        let entry = {
            let Ok(mut shard) = self.shard_of(old_key).lock() else {
                return false;
            };
            let Some(entry) = shard.remove(old_key) else {
                return false;
            };
            entry
        };
        if let Ok(mut shard) = self.shard_of(&new_key).lock() {
            shard.insert(
                new_key,
                entry.response,
                entry.request,
                Some(proven_at),
                self.per_shard_capacity,
            );
            self.carried_forward.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Records a carry-forward attempt rejected by the byte-identity
    /// proof path (debug builds are the only caller — release builds
    /// trust the predicate and compile the recompute out).
    #[cfg(debug_assertions)]
    pub(crate) fn note_carry_proof_failure(&self) {
        self.carry_proof_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// The generation stamp and carry provenance of every stored key, for
    /// the invariant auditor (an engine-owned cache only ever stores
    /// [`RequestKey::stamped`](crate::RequestKey::stamped) keys).  Keys
    /// too short to carry a stamp are skipped.
    pub(crate) fn stamp_provenance(&self) -> Vec<StampProvenance> {
        self.shards
            .iter()
            .filter_map(|s| s.lock().ok())
            .flat_map(|shard| {
                shard
                    .entries
                    .iter()
                    .filter_map(|(key, entry)| {
                        key.generation_stamp().map(|stamp| StampProvenance {
                            stamp,
                            carried_from: entry.carried_from,
                        })
                    })
                    .collect::<Vec<StampProvenance>>()
            })
            .collect()
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .filter_map(|s| s.lock().ok())
                .map(|shard| shard.entries.len())
                .sum(),
            capacity: self.capacity,
            coalesced_waits: self.coalesced_waits.load(Ordering::Relaxed),
            carried_forward: self.carried_forward.load(Ordering::Relaxed),
            carry_proof_failures: self.carry_proof_failures.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AsrsQuery;
    use crate::request::{Backend, QueryOutcome, QueryRequest};
    use crate::result::SearchResult;
    use crate::stats::SearchStats;
    use asrs_aggregator::{FeatureVector, Weights};
    use asrs_geo::{Point, Rect, RegionSize};
    use std::sync::atomic::AtomicUsize;

    fn request(i: u32) -> QueryRequest {
        QueryRequest::similar(AsrsQuery::new(
            RegionSize::new(1.0 + i as f64, 2.0),
            FeatureVector::new(vec![i as f64]),
            Weights::uniform(1),
        ))
    }

    fn response(d: f64) -> QueryResponse {
        QueryResponse {
            backend: Backend::DsSearch,
            outcome: QueryOutcome::Best(SearchResult::new(
                Point::new(0.0, 0.0),
                Rect::new(0.0, 0.0, 1.0, 1.0),
                d,
                FeatureVector::new(vec![d]),
                SearchStats::new(),
            )),
            stats: SearchStats::new(),
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = QueryCache::new(8);
        let key = request(1).cache_key();
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), response(1.0));
        assert_eq!(cache.get(&key).unwrap(), response(1.0));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reinsert_replaces_the_stored_response() {
        let cache = QueryCache::new(8);
        let key = request(1).cache_key();
        cache.insert(key.clone(), response(1.0));
        cache.insert(key.clone(), response(2.0));
        assert_eq!(cache.get(&key).unwrap(), response(2.0));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn least_recently_used_entry_is_evicted_first() {
        // Single-slot shards: force every key into eviction pressure by
        // inserting colliding keys until a shard overflows.
        let cache = QueryCache::new(1);
        assert_eq!(cache.per_shard_capacity, 1);
        // Find two distinct requests that land on the same shard.
        let keys: Vec<_> = (0..64).map(|i| request(i).cache_key()).collect();
        let mut same_shard = None;
        'outer: for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                if std::ptr::eq(cache.shard_of(a), cache.shard_of(b)) {
                    same_shard = Some((a.clone(), b.clone()));
                    break 'outer;
                }
            }
        }
        let (a, b) = same_shard.expect("64 keys over 16 shards must collide");
        cache.insert(a.clone(), response(1.0));
        cache.insert(b.clone(), response(2.0));
        assert!(
            cache.get(&a).is_none(),
            "older entry must have been evicted"
        );
        assert_eq!(cache.get(&b).unwrap(), response(2.0));
    }

    #[test]
    fn concurrent_access_is_safe_and_consistent() {
        // Capacity comfortably exceeds the 256 distinct keys inserted, so
        // no eviction can race an insert-then-get pair and the hit count
        // below is deterministic.
        let cache = QueryCache::new(1024);
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..32 {
                        let req = request(t * 32 + i);
                        cache.insert(req.cache_key(), response(i as f64));
                        assert_eq!(cache.get(&req.cache_key()), Some(response(i as f64)));
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits, 8 * 32);
        assert!(stats.entries <= stats.capacity);
    }

    #[test]
    fn coalesced_leader_computes_once_and_waiters_share_the_result() {
        let cache = Arc::new(QueryCache::new(64));
        let req = request(1);
        let key = req.cache_key().stamped(3);
        let computes = AtomicUsize::new(0);
        // A barrier makes every thread race into compute_coalesced while
        // the key is cold; the leader's slow computation keeps the flight
        // open long enough for the rest to register as waiters.
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = &cache;
                let req = &req;
                let key = key.clone();
                let computes = &computes;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let got = cache
                        .compute_coalesced(key, req, || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(response(7.0))
                        })
                        .unwrap();
                    assert_eq!(got, response(7.0));
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            computes.load(Ordering::SeqCst) as u64 + stats.coalesced_waits,
            8,
            "every caller either computed or coalesced"
        );
        assert!(
            stats.coalesced_waits > 0,
            "with an open flight at the barrier, some caller must have coalesced"
        );
        // The flight table must be empty again.
        assert!(cache.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn coalesced_errors_propagate_to_every_waiter() {
        let cache = QueryCache::new(8);
        let req = request(2);
        let key = req.cache_key().stamped(1);
        let err = cache
            .compute_coalesced(key.clone(), &req, || {
                Err(AsrsError::Internal {
                    message: "boom".to_string(),
                })
            })
            .unwrap_err();
        assert!(matches!(err, AsrsError::Internal { .. }));
        // Errors are not cached: the next lookup misses.
        assert!(cache.get(&key).is_none());
        assert!(cache.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn leader_panic_degrades_waiters_to_independent_misses() {
        let cache = Arc::new(QueryCache::new(64));
        let req = request(3);
        let key = req.cache_key().stamped(2);
        let entered = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let leader = scope.spawn({
                let cache = Arc::clone(&cache);
                let req = req.clone();
                let key = key.clone();
                let entered = &entered;
                move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        cache.compute_coalesced(key, &req, || {
                            entered.wait();
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            panic!("leader died");
                        })
                    }));
                    assert!(result.is_err(), "the leader must observe its own panic");
                }
            });
            entered.wait();
            // The flight is open and its leader is doomed; this waiter must
            // fall back to computing independently.
            let got = cache
                .compute_coalesced(key.clone(), &req, || Ok(response(9.0)))
                .unwrap();
            assert_eq!(got, response(9.0));
            leader.join().unwrap();
        });
        assert_eq!(cache.get(&key), Some(response(9.0)));
        assert!(cache.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn carry_restamps_an_entry_with_provenance() {
        let cache = QueryCache::new(8);
        let req = request(4);
        let old_key = req.cache_key().stamped(5);
        cache
            .compute_coalesced(old_key.clone(), &req, || Ok(response(1.5)))
            .unwrap();
        let candidates = cache.carry_candidates(5);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].key, old_key);
        assert_eq!(candidates[0].response, response(1.5));

        let new_key = req.cache_key().stamped(6);
        assert!(cache.carry(&old_key, new_key.clone(), 5));
        assert!(cache.get(&old_key).is_none(), "old stamp must be gone");
        assert_eq!(cache.get(&new_key), Some(response(1.5)));
        assert_eq!(cache.stats().carried_forward, 1);
        let provenance = cache.stamp_provenance();
        assert_eq!(provenance.len(), 1);
        assert_eq!(provenance[0].stamp, 6);
        assert_eq!(provenance[0].carried_from, Some(5));

        // A carried entry keeps its request, so it is a candidate again at
        // the new generation.
        assert_eq!(cache.carry_candidates(6).len(), 1);
        // Carrying a vanished key is refused.
        assert!(!cache.carry(&old_key, req.cache_key().stamped(7), 6));
    }

    #[test]
    fn requestless_inserts_are_not_carry_candidates() {
        let cache = QueryCache::new(8);
        let key = request(5).cache_key().stamped(4);
        cache.insert(key, response(2.0));
        assert!(cache.carry_candidates(4).is_empty());
        let provenance = cache.stamp_provenance();
        assert_eq!(provenance.len(), 1);
        assert_eq!(provenance[0].carried_from, None);
    }
}
