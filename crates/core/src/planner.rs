//! Cost-based query planning: statistics in, [`ExecutionPlan`] out.
//!
//! The cost model's inputs and assumptions are documented on [`Planner`],
//! the module's public face.

use crate::engine::Strategy;
use crate::error::AsrsError;
use crate::grid_index::GridIndex;
use crate::request::{Backend, QueryRequest};
use asrs_data::Dataset;
use asrs_geo::{GridSpec, Rect, RegionSize};
use serde::Serialize;
use std::fmt;

/// Dataset and index statistics the planner decides from.
///
/// Captured once when the engine is built; cheap to copy around.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStatistics {
    /// Number of objects in the dataset.
    pub object_count: usize,
    /// Bounding box of the dataset (`None` when empty).
    pub extent: Option<Rect>,
    /// Statistics of the attached grid index, if any.  For a sharded
    /// engine this describes the *reference* (whole-dataset) index
    /// geometry, deliberately independent of the shard count so identical
    /// requests plan identically on `shards(1)` and `shards(k)`.
    pub index: Option<IndexStatistics>,
    /// Shard fan-out of a sharded engine (`None` on single engines).
    /// Descriptive only: the backend decision never reads it, again so
    /// that plans — and therefore responses — are shard-count-invariant.
    pub shards: Option<ShardFanOut>,
}

/// Fan-out description of a sharded engine, surfaced by
/// [`ExecutionPlan::explain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ShardFanOut {
    /// Number of shards the dataset was partitioned into.
    pub shards: usize,
    /// Shards that actually hold objects.  An *estimate* of the execution
    /// fan-out: routing decides per request by slab reachability (an empty
    /// shard still executes when a neighbour's rectangles reach its anchor
    /// slab, and a populated shard is skipped when none do), so the
    /// per-request `shards_touched` counter can differ in either
    /// direction.
    pub populated: usize,
}

/// Grid-index statistics consumed by the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStatistics {
    /// Index granularity: number of columns.
    pub cols: usize,
    /// Index granularity: number of rows.
    pub rows: usize,
    /// Width of one index cell.
    pub cell_width: f64,
    /// Height of one index cell.
    pub cell_height: f64,
    /// Average number of objects per index cell (the density statistic).
    pub avg_objects_per_cell: f64,
}

impl EngineStatistics {
    /// Gathers statistics from a dataset and optional index.
    pub fn capture(dataset: &Dataset, index: Option<&GridIndex>) -> Self {
        let index_stats = index.map(|idx| {
            let (cols, rows) = idx.granularity();
            let cells = (cols * rows).max(1) as f64;
            IndexStatistics {
                cols,
                rows,
                cell_width: idx.spec().cell_width(),
                cell_height: idx.spec().cell_height(),
                avg_objects_per_cell: idx.objects_indexed() as f64 / cells,
            }
        });
        Self {
            object_count: dataset.len(),
            extent: dataset.bounding_box(),
            index: index_stats,
            shards: None,
        }
    }
}

impl IndexStatistics {
    /// The statistics a `cols × rows` [`GridIndex`] over `dataset` *would*
    /// have, computed without building it.
    ///
    /// Used by the sharded engine builder: a sharded engine builds one
    /// index per shard rather than a whole-dataset index, but its planner
    /// must still decide from whole-dataset index geometry so the chosen
    /// backend is identical for every shard count.  The formulas replicate
    /// [`EngineStatistics::capture`] over [`GridIndex::build`]'s grid
    /// specification bit for bit.
    ///
    /// # Errors
    ///
    /// [`AsrsError::EmptyDataset`] when the dataset has no object (the same
    /// condition under which [`GridIndex::build`] refuses to index).
    pub fn virtual_for(dataset: &Dataset, cols: usize, rows: usize) -> Result<Self, AsrsError> {
        if cols == 0 || rows == 0 {
            return Err(crate::error::ConfigError::InvalidIndexGranularity { cols, rows }.into());
        }
        let bbox = dataset
            .relative_padded_bounding_box(0.5, 1.0)
            .ok_or(AsrsError::EmptyDataset)?;
        let spec = GridSpec::new(bbox, cols, rows);
        let cells = (cols * rows).max(1) as f64;
        Ok(Self {
            cols,
            rows,
            cell_width: spec.cell_width(),
            cell_height: spec.cell_height(),
            avg_objects_per_cell: dataset.len() as f64 / cells,
        })
    }
}

/// Why a plan chose its backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanReason {
    /// The request forced the backend via
    /// [`QueryRequest::with_backend`].
    ForcedByRequest,
    /// The engine was built with an explicit (non-`Auto`)
    /// [`Strategy`].
    ForcedByStrategy,
    /// MaxRS always executes the DS-Search adaptation.
    MaxRsAdaptation,
    /// The dataset is small enough that the exhaustive oracle is cheapest.
    TinyDataset,
    /// No grid index is attached, so GI-DS is unavailable.
    NoIndex,
    /// The query spans most of the indexed extent; index cells cannot be
    /// pruned, so the per-cell overhead of GI-DS does not pay off.
    QuerySpansExtent,
    /// The query is small relative to the indexed extent; index pruning
    /// applies.
    IndexPrunes,
}

impl fmt::Display for PlanReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            PlanReason::ForcedByRequest => "backend forced by the request",
            PlanReason::ForcedByStrategy => "backend fixed by the engine's explicit strategy",
            PlanReason::MaxRsAdaptation => "MaxRS always runs on the DS-Search adaptation",
            PlanReason::TinyDataset => "dataset is tiny; the exhaustive oracle is cheapest",
            PlanReason::NoIndex => "no grid index attached; DS-Search is the only pruning backend",
            PlanReason::QuerySpansExtent => {
                "query spans most of the indexed extent; index cells cannot be pruned"
            }
            PlanReason::IndexPrunes => {
                "query is small relative to the indexed extent; index pruning applies"
            }
        };
        f.write_str(text)
    }
}

/// Estimated work per backend, in abstract rectangle-visit units.
///
/// `gi_ds` is `None` when no index is attached.  The numbers justify a
/// plan in [`ExecutionPlan::explain`]; the decision itself is rule-based
/// (see [`Planner`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated work of DS-Search: one discretise–split pass over the
    /// `n` rectangles plus the empty-region seed, `(n + 1) · log₂(n + 2)`.
    pub ds_search: f64,
    /// Estimated work of GI-DS: ranking every index cell plus a DS-Search
    /// pass over the cells the span ratio predicts will survive pruning.
    pub gi_ds: Option<f64>,
    /// Estimated work of the naive oracle: `(n + 1)²` arrangement probes.
    pub naive: f64,
}

/// A planned execution: the backend to run, why, and at what estimated
/// cost.  Produced by [`Planner::plan`] (usually via
/// [`AsrsEngine::plan`](crate::AsrsEngine::plan)); consumed by
/// [`AsrsEngine::submit`](crate::AsrsEngine::submit).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// The chosen backend.
    pub backend: Backend,
    /// Why it was chosen.
    pub reason: PlanReason,
    /// Name of the planned operation (e.g. `"similar"`, `"max-rs"`).
    pub operation: &'static str,
    /// Estimated per-backend work.
    pub estimates: CostEstimate,
    /// Query-to-extent span ratio per axis the estimate used, when an
    /// index and a query size were available.
    pub span_ratio: Option<(f64, f64)>,
    /// Wall-clock budget the request carries, in milliseconds.
    pub budget_ms: Option<u64>,
    /// Scatter fan-out of a sharded engine, when planning for one.
    pub fan_out: Option<ShardFanOut>,
    /// Estimated work of the *chosen* backend (the admission-control
    /// input), in the same abstract units as [`CostEstimate`].
    pub chosen_cost: f64,
    /// The admission ceiling in force, if any (see
    /// [`Planner::cost_ceiling`]).
    pub cost_ceiling: Option<f64>,
}

impl ExecutionPlan {
    /// Admission control: rejects the plan when the chosen backend's cost
    /// estimate exceeds the engine's configured ceiling.  Executors call
    /// this *before* running the plan, so an extent-spanning query is
    /// turned away at the door (HTTP 429 at the serving layer) instead of
    /// starving the worker pool.  Planning itself never fails on the
    /// ceiling — `/explain` can still show *why* a request would be
    /// rejected.
    pub fn admit(&self) -> Result<(), crate::AsrsError> {
        match self.cost_ceiling {
            Some(ceiling) if self.chosen_cost > ceiling => {
                Err(crate::AsrsError::CostCeilingExceeded {
                    estimated: self.chosen_cost,
                    ceiling,
                })
            }
            _ => Ok(()),
        }
    }

    /// A human-readable summary of the choice and the estimated work.
    pub fn explain(&self) -> String {
        let mut out = format!(
            "plan[{}]: backend={} — {}",
            self.operation,
            self.backend.name(),
            self.reason
        );
        if let Some((sx, sy)) = self.span_ratio {
            out.push_str(&format!(
                "; query spans {:.1}% × {:.1}% of the indexed extent",
                sx * 100.0,
                sy * 100.0
            ));
        }
        out.push_str(&format!(
            "; estimated work: ds-search ≈ {:.3e}",
            self.estimates.ds_search
        ));
        match self.estimates.gi_ds {
            Some(gi) => out.push_str(&format!(", gi-ds ≈ {gi:.3e}")),
            None => out.push_str(", gi-ds unavailable (no index)"),
        }
        out.push_str(&format!(", naive ≈ {:.3e} units", self.estimates.naive));
        if let Some(fan_out) = self.fan_out {
            out.push_str(&format!(
                "; fan-out: scatter over {} of {} shards",
                fan_out.populated, fan_out.shards
            ));
        }
        if let Some(ceiling) = self.cost_ceiling {
            let verdict = if self.chosen_cost > ceiling {
                "REJECTED"
            } else {
                "admitted"
            };
            out.push_str(&format!(
                "; admission: chosen ≈ {:.3e} vs ceiling {:.3e} → {}",
                self.chosen_cost, ceiling, verdict
            ));
        }
        match self.budget_ms {
            Some(ms) => out.push_str(&format!("; budget: {ms} ms")),
            None => out.push_str("; budget: none"),
        }
        out
    }
}

/// The cost-based planner: decides which backend executes a
/// [`QueryRequest`].
///
/// The paper's central experimental result (Figs. 8–11) is that no single
/// backend dominates: GI-DS wins when the grid index can prune — small
/// queries relative to the indexed extent — while plain DS-Search wins
/// when a query spans most of the space (every index cell's bounding
/// region then covers nearly everything, so no cell can be pruned and the
/// per-cell machinery is pure overhead), and the exhaustive oracle is
/// cheapest on tiny datasets.  The planner encodes that decision so
/// callers no longer have to.
///
/// # Cost-model inputs
///
/// The model reads three statistics, all captured in [`EngineStatistics`]
/// when the engine is built:
///
/// * **object count** `n` — every object contributes one ASP rectangle,
///   so `n` bounds the work of a discretisation round and `n²` the probe
///   count of the naive oracle;
/// * **density per index cell** — the average number of objects per grid
///   cell, which scales the per-cell DS-Search invocations GI-DS performs;
/// * **query-to-extent span ratio** — how much of the indexed extent a
///   candidate region (expanded by one index cell, the granularity at
///   which pruning operates) covers per axis.  This is the planner's proxy
///   for the fraction of index cells whose lower bound can survive pruning
///   (the paper's Table 1 ratio).
///
/// # Decision rules
///
/// The decision is deliberately rule-based — thresholds, not a simulated
/// execution:
///
/// 1. a forced backend (request override, or an explicit engine
///    [`Strategy`]) always wins;
/// 2. MaxRS variants always run the DS-Search adaptation (it is the only
///    MaxRS implementation);
/// 3. datasets with at most [`Planner::naive_max_objects`] objects run the
///    naive oracle (`(n + 1)²` probes beat building any search structure);
/// 4. without an index only DS-Search remains;
/// 5. with an index, a query whose cell-expanded span covers at least
///    [`Planner::span_threshold`] of the extent on *both* axes runs
///    DS-Search; anything smaller runs GI-DS.
///
/// # Assumptions
///
/// The work estimates reported by [`ExecutionPlan::explain`] use the same
/// statistics in abstract "rectangle visit" units; they are descriptive
/// (so `explain()` can justify the choice) rather than the decision
/// procedure itself.  All assumptions are heuristics tuned to the paper's
/// workloads: uniform-ish densities, queries at least an order of
/// magnitude smaller than the dataset extent in the common case.
///
/// The thresholds are public so deployments can tune them
/// ([`EngineBuilder::planner`](crate::EngineBuilder::planner)); the
/// defaults follow the paper's workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Planner {
    /// Datasets with at most this many objects run the naive oracle under
    /// `Auto` planning.  Default 16: the oracle evaluates `(n+1)²` probes,
    /// which at 16 objects is cheaper than one 30 × 30 discretisation.
    pub naive_max_objects: usize,
    /// A query whose cell-expanded span covers at least this fraction of
    /// the indexed extent on both axes runs DS-Search instead of GI-DS.
    /// Default 0.5: at that size, pruning bounds computed per index cell
    /// overlap on more than half the extent and rarely discard anything.
    pub span_threshold: f64,
    /// Admission ceiling on the chosen backend's cost estimate, in the
    /// abstract rectangle-visit units of [`CostEstimate`]; a request whose
    /// estimate exceeds it is rejected with
    /// [`AsrsError::CostCeilingExceeded`](crate::AsrsError::CostCeilingExceeded)
    /// *before* execution (the serving layer answers HTTP 429).  `None`
    /// (the default) admits everything — backpressure alone bounds load.
    /// See [`EngineBuilder::cost_ceiling`](crate::EngineBuilder::cost_ceiling).
    pub cost_ceiling: Option<f64>,
}

impl Default for Planner {
    fn default() -> Self {
        Self {
            naive_max_objects: 16,
            span_threshold: 0.5,
            cost_ceiling: None,
        }
    }
}

impl Planner {
    /// Plans `request` against `stats`, honouring the engine's default
    /// `strategy` and any per-request override.
    ///
    /// # Errors
    ///
    /// * [`AsrsError::IndexRequired`] when GI-DS is forced without an
    ///   index,
    /// * [`AsrsError::BackendUnsupported`] when a non-DS backend is forced
    ///   for a MaxRS variant.
    pub fn plan(
        &self,
        stats: &EngineStatistics,
        strategy: Strategy,
        request: &QueryRequest,
    ) -> Result<ExecutionPlan, AsrsError> {
        let is_max_rs = matches!(
            request.operation(),
            QueryRequest::MaxRs { .. } | QueryRequest::MaxRsSelective { .. }
        );
        self.plan_parts(
            stats,
            strategy,
            request.operation_name(),
            request.planning_size(),
            is_max_rs,
            request.forced_backend(),
            request.budget_ms(),
        )
    }

    /// The parts-level planning entry point: what [`Planner::plan`]
    /// extracts from a request, as plain values.  The engine's legacy
    /// shims use it to plan borrowed queries without constructing an
    /// owned [`QueryRequest`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn plan_parts(
        &self,
        stats: &EngineStatistics,
        strategy: Strategy,
        operation: &'static str,
        size: Option<RegionSize>,
        is_max_rs: bool,
        request_backend: Option<Backend>,
        budget_ms: Option<u64>,
    ) -> Result<ExecutionPlan, AsrsError> {
        let span_ratio = self.span_ratio(stats, size);
        let estimates = self.estimate(stats, span_ratio);

        let forced = request_backend.map(|b| (b, PlanReason::ForcedByRequest));
        let forced = forced.or(match strategy {
            Strategy::Auto => None,
            Strategy::DsSearch => Some((Backend::DsSearch, PlanReason::ForcedByStrategy)),
            Strategy::GiDs => Some((Backend::GiDs, PlanReason::ForcedByStrategy)),
            Strategy::Naive => Some((Backend::Naive, PlanReason::ForcedByStrategy)),
        });

        let (backend, reason) = if is_max_rs {
            // MaxRS has exactly one implementation; a request forcing a
            // non-DS backend is a contradiction rather than a preference.
            // An engine-level GiDs/Naive strategy, however, routes MaxRS to
            // the adaptation, matching the legacy `max_rs` methods which
            // ignored the strategy entirely.
            match request_backend {
                Some(Backend::DsSearch) | None => (Backend::DsSearch, PlanReason::MaxRsAdaptation),
                Some(other) => {
                    return Err(AsrsError::BackendUnsupported {
                        backend: other.name(),
                        operation,
                    })
                }
            }
        } else if let Some((backend, why)) = forced {
            if backend == Backend::GiDs && stats.index.is_none() {
                return Err(AsrsError::IndexRequired { strategy: "gi-ds" });
            }
            (backend, why)
        } else if stats.object_count <= self.naive_max_objects {
            (Backend::Naive, PlanReason::TinyDataset)
        } else if stats.index.is_none() {
            (Backend::DsSearch, PlanReason::NoIndex)
        } else {
            match span_ratio {
                Some((sx, sy)) if sx >= self.span_threshold && sy >= self.span_threshold => {
                    (Backend::DsSearch, PlanReason::QuerySpansExtent)
                }
                _ => (Backend::GiDs, PlanReason::IndexPrunes),
            }
        };

        let chosen_cost = match backend {
            Backend::DsSearch => estimates.ds_search,
            Backend::GiDs => estimates.gi_ds.unwrap_or(estimates.ds_search),
            Backend::Naive => estimates.naive,
        };
        Ok(ExecutionPlan {
            backend,
            reason,
            operation,
            estimates,
            span_ratio,
            budget_ms,
            fan_out: stats.shards,
            chosen_cost,
            cost_ceiling: self.cost_ceiling,
        })
    }

    /// The fraction of the dataset extent a candidate region (expanded by
    /// one index cell) covers, per axis, clamped to 1.
    fn span_ratio(&self, stats: &EngineStatistics, size: Option<RegionSize>) -> Option<(f64, f64)> {
        let size = size?;
        let idx = stats.index.as_ref()?;
        let extent = stats.extent?;
        let (w, h) = (extent.width(), extent.height());
        if w <= 0.0 || h <= 0.0 {
            return Some((1.0, 1.0));
        }
        Some((
            ((size.width + idx.cell_width) / w).min(1.0),
            ((size.height + idx.cell_height) / h).min(1.0),
        ))
    }

    /// Work estimates in abstract rectangle-visit units (see
    /// [`CostEstimate`]).
    fn estimate(&self, stats: &EngineStatistics, span_ratio: Option<(f64, f64)>) -> CostEstimate {
        let n = stats.object_count as f64;
        let ds_search = (n + 1.0) * (n + 2.0).log2();
        let naive = (n + 1.0) * (n + 1.0);
        let gi_ds = stats.index.as_ref().map(|idx| {
            let cells = (idx.cols * idx.rows) as f64;
            let (sx, sy) = span_ratio.unwrap_or((0.5, 0.5));
            // Ranking every cell costs one suffix-table lookup each; the
            // surviving fraction (≈ the span the pruning bounds cannot
            // separate) then pays a DS-Search pass over its local
            // rectangles.
            let surviving = cells * (sx * sy).min(1.0);
            cells + surviving * (idx.avg_objects_per_cell + 1.0) * (n + 2.0).log2()
        });
        CostEstimate {
            ds_search,
            gi_ds,
            naive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AsrsQuery;
    use asrs_aggregator::{FeatureVector, Weights};

    fn stats(n: usize, with_index: bool) -> EngineStatistics {
        EngineStatistics {
            object_count: n,
            extent: Some(Rect::new(0.0, 0.0, 100.0, 100.0)),
            index: with_index.then(|| IndexStatistics {
                cols: 20,
                rows: 20,
                cell_width: 5.0,
                cell_height: 5.0,
                avg_objects_per_cell: n as f64 / 400.0,
            }),
            shards: None,
        }
    }

    fn similar(size: RegionSize) -> QueryRequest {
        QueryRequest::similar(AsrsQuery::new(
            size,
            FeatureVector::new(vec![1.0]),
            Weights::uniform(1),
        ))
    }

    #[test]
    fn tiny_query_on_an_indexed_engine_picks_gi_ds() {
        let plan = Planner::default()
            .plan(
                &stats(500, true),
                Strategy::Auto,
                &similar(RegionSize::new(4.0, 4.0)),
            )
            .unwrap();
        assert_eq!(plan.backend, Backend::GiDs);
        assert_eq!(plan.reason, PlanReason::IndexPrunes);
        assert!(plan.explain().contains("gi-ds"));
    }

    #[test]
    fn extent_spanning_query_picks_ds_search() {
        let plan = Planner::default()
            .plan(
                &stats(500, true),
                Strategy::Auto,
                &similar(RegionSize::new(70.0, 70.0)),
            )
            .unwrap();
        assert_eq!(plan.backend, Backend::DsSearch);
        assert_eq!(plan.reason, PlanReason::QuerySpansExtent);
    }

    #[test]
    fn index_less_engine_falls_back_to_ds_search() {
        let plan = Planner::default()
            .plan(
                &stats(500, false),
                Strategy::Auto,
                &similar(RegionSize::new(4.0, 4.0)),
            )
            .unwrap();
        assert_eq!(plan.backend, Backend::DsSearch);
        assert_eq!(plan.reason, PlanReason::NoIndex);
        assert!(plan.estimates.gi_ds.is_none());
        assert!(plan.explain().contains("unavailable"));
    }

    #[test]
    fn tiny_datasets_run_the_oracle() {
        let plan = Planner::default()
            .plan(
                &stats(10, true),
                Strategy::Auto,
                &similar(RegionSize::new(4.0, 4.0)),
            )
            .unwrap();
        assert_eq!(plan.backend, Backend::Naive);
        assert_eq!(plan.reason, PlanReason::TinyDataset);
    }

    #[test]
    fn request_override_beats_everything() {
        let req = similar(RegionSize::new(4.0, 4.0)).with_backend(Backend::Naive);
        let plan = Planner::default()
            .plan(&stats(500, true), Strategy::DsSearch, &req)
            .unwrap();
        assert_eq!(plan.backend, Backend::Naive);
        assert_eq!(plan.reason, PlanReason::ForcedByRequest);
    }

    #[test]
    fn explicit_strategy_beats_the_cost_model() {
        let plan = Planner::default()
            .plan(
                &stats(500, true),
                Strategy::DsSearch,
                &similar(RegionSize::new(4.0, 4.0)),
            )
            .unwrap();
        assert_eq!(plan.backend, Backend::DsSearch);
        assert_eq!(plan.reason, PlanReason::ForcedByStrategy);
    }

    #[test]
    fn forced_gi_ds_without_an_index_errors() {
        let req = similar(RegionSize::new(4.0, 4.0)).with_backend(Backend::GiDs);
        assert_eq!(
            Planner::default()
                .plan(&stats(500, false), Strategy::Auto, &req)
                .unwrap_err(),
            AsrsError::IndexRequired { strategy: "gi-ds" }
        );
    }

    #[test]
    fn max_rs_always_plans_the_adaptation() {
        let req = QueryRequest::max_rs(RegionSize::new(5.0, 5.0));
        let plan = Planner::default()
            .plan(&stats(500, true), Strategy::Auto, &req)
            .unwrap();
        assert_eq!(plan.backend, Backend::DsSearch);
        assert_eq!(plan.reason, PlanReason::MaxRsAdaptation);

        // Even under an explicit GiDs engine strategy (legacy `max_rs`
        // ignored the strategy, so the planner must too)...
        let plan = Planner::default()
            .plan(&stats(500, true), Strategy::GiDs, &req)
            .unwrap();
        assert_eq!(plan.backend, Backend::DsSearch);

        // ...but a *request-level* force of an incompatible backend is a
        // contradiction.
        let forced = req.with_backend(Backend::GiDs);
        assert_eq!(
            Planner::default()
                .plan(&stats(500, true), Strategy::Auto, &forced)
                .unwrap_err(),
            AsrsError::BackendUnsupported {
                backend: "gi-ds",
                operation: "max-rs"
            }
        );
    }

    #[test]
    fn cost_ceiling_rejects_expensive_plans_before_execution() {
        let planner = Planner {
            cost_ceiling: Some(1.0),
            ..Planner::default()
        };
        let plan = planner
            .plan(
                &stats(500, true),
                Strategy::Auto,
                &similar(RegionSize::new(4.0, 4.0)),
            )
            .unwrap();
        // Planning itself succeeds (so /explain can justify the verdict)…
        assert!(plan.chosen_cost > 1.0);
        assert_eq!(plan.cost_ceiling, Some(1.0));
        assert!(plan.explain().contains("REJECTED"), "{}", plan.explain());
        // …but admission fails.
        assert!(matches!(
            plan.admit(),
            Err(crate::AsrsError::CostCeilingExceeded { .. })
        ));

        // A generous ceiling admits.
        let generous = Planner {
            cost_ceiling: Some(1e18),
            ..Planner::default()
        };
        let plan = generous
            .plan(
                &stats(500, true),
                Strategy::Auto,
                &similar(RegionSize::new(4.0, 4.0)),
            )
            .unwrap();
        assert!(plan.admit().is_ok());
        assert!(plan.explain().contains("admitted"), "{}", plan.explain());

        // No ceiling: everything admits, explain stays quiet about it.
        let plan = Planner::default()
            .plan(
                &stats(500, true),
                Strategy::Auto,
                &similar(RegionSize::new(4.0, 4.0)),
            )
            .unwrap();
        assert!(plan.admit().is_ok());
        assert!(!plan.explain().contains("admission"));
    }

    #[test]
    fn explain_names_backend_and_budget() {
        let req = similar(RegionSize::new(4.0, 4.0)).with_budget_ms(120);
        let plan = Planner::default()
            .plan(&stats(500, true), Strategy::Auto, &req)
            .unwrap();
        let text = plan.explain();
        assert!(text.contains("backend=gi-ds"), "{text}");
        assert!(text.contains("120 ms"), "{text}");
        assert!(text.contains("similar"), "{text}");
    }
}
