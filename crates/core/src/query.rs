//! ASRS queries.

use asrs_aggregator::{CompositeAggregator, DistanceMetric, FeatureVector, Weights};
use asrs_data::Dataset;
use asrs_geo::{Rect, RegionSize};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when assembling or validating a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Target representation dimensionality does not match the aggregator.
    TargetDimensionMismatch {
        /// Dimensions of the supplied target.
        got: usize,
        /// Dimensions the aggregator produces.
        expected: usize,
    },
    /// Weight dimensionality does not match the aggregator.
    WeightDimensionMismatch {
        /// Dimensions of the supplied weights.
        got: usize,
        /// Dimensions the aggregator produces.
        expected: usize,
    },
    /// The example region is degenerate (zero width or height).
    DegenerateRegion,
    /// The query region size is non-positive or non-finite.
    InvalidSize {
        /// Requested width.
        width: f64,
        /// Requested height.
        height: f64,
    },
    /// The target representation contains a non-finite component.
    NonFiniteTarget,
    /// A weight is negative or non-finite.
    InvalidWeights,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::TargetDimensionMismatch { got, expected } => {
                write!(
                    f,
                    "target has {got} dimensions, aggregator produces {expected}"
                )
            }
            QueryError::WeightDimensionMismatch { got, expected } => {
                write!(
                    f,
                    "weights have {got} dimensions, aggregator produces {expected}"
                )
            }
            QueryError::DegenerateRegion => {
                write!(f, "example region must have positive width and height")
            }
            QueryError::InvalidSize { width, height } => {
                write!(
                    f,
                    "query size must be positive and finite, got {width} x {height}"
                )
            }
            QueryError::NonFiniteTarget => write!(f, "target representation must be finite"),
            QueryError::InvalidWeights => write!(f, "weights must be finite and non-negative"),
        }
    }
}

impl std::error::Error for QueryError {}

/// An ASRS query: the size of the region to find, the target aggregate
/// representation `F(r_q)`, the per-dimension weights `w` and the distance
/// metric (Definition 4).
///
/// The query follows the paper's query-by-example philosophy: the target can
/// be the representation of a real region ([`AsrsQuery::from_example_region`])
/// or a hand-crafted "virtual region" ([`AsrsQuery::new`]) describing the
/// user's interests, as the paper's composite aggregators F1/F2 do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsrsQuery {
    /// Size `a × b` of the region to find.
    pub size: RegionSize,
    /// Target aggregate representation `F(r_q)`.
    pub target: FeatureVector,
    /// Per-dimension weights `w`.
    pub weights: Weights,
    /// Distance metric (L1 by default, as in the paper).
    pub metric: DistanceMetric,
}

impl AsrsQuery {
    /// Creates a query from an explicit target representation.
    pub fn new(size: RegionSize, target: FeatureVector, weights: Weights) -> Self {
        Self {
            size,
            target,
            weights,
            metric: DistanceMetric::L1,
        }
    }

    /// Creates a query with uniform weights.
    pub fn with_uniform_weights(size: RegionSize, target: FeatureVector) -> Self {
        let dim = target.dim();
        Self::new(size, target, Weights::uniform(dim))
    }

    /// Uses a real region of the dataset as the example: the target
    /// representation is `F(example)` and the query size is the example's
    /// size.  Weights default to uniform; override with
    /// [`AsrsQuery::with_weights`].
    pub fn from_example_region(
        dataset: &Dataset,
        aggregator: &CompositeAggregator,
        example: &Rect,
    ) -> Result<Self, QueryError> {
        if example.width() <= 0.0 || example.height() <= 0.0 {
            return Err(QueryError::DegenerateRegion);
        }
        let target = aggregator.aggregate_region(dataset, example);
        let dim = target.dim();
        Ok(Self::new(
            RegionSize::new(example.width(), example.height()),
            target,
            Weights::uniform(dim),
        ))
    }

    /// Replaces the weights.
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Replaces the distance metric.
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Validates the query against an aggregator: dimensionalities must
    /// match, the size must be a real region, and every target component
    /// and weight must be finite (weights additionally non-negative).
    ///
    /// The engine calls this once per query at its boundary; the individual
    /// search backends call it too when used directly.
    pub fn validate(&self, aggregator: &CompositeAggregator) -> Result<(), QueryError> {
        let expected = aggregator.feature_dim();
        if self.target.dim() != expected {
            return Err(QueryError::TargetDimensionMismatch {
                got: self.target.dim(),
                expected,
            });
        }
        if self.weights.dim() != expected {
            return Err(QueryError::WeightDimensionMismatch {
                got: self.weights.dim(),
                expected,
            });
        }
        let (w, h) = (self.size.width, self.size.height);
        if !(w.is_finite() && w > 0.0 && h.is_finite() && h > 0.0) {
            return Err(QueryError::InvalidSize {
                width: w,
                height: h,
            });
        }
        if !self.target.is_finite() {
            return Err(QueryError::NonFiniteTarget);
        }
        if !self.weights.iter().all(|w| w.is_finite() && *w >= 0.0) {
            return Err(QueryError::InvalidWeights);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_aggregator::Selection;
    use asrs_data::gen::UniformGenerator;

    fn setup() -> (Dataset, CompositeAggregator) {
        let ds = UniformGenerator::default().generate(200, 1);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        (ds, agg)
    }

    #[test]
    fn from_example_region_captures_representation() {
        let (ds, agg) = setup();
        let region = Rect::new(10.0, 10.0, 40.0, 35.0);
        let q = AsrsQuery::from_example_region(&ds, &agg, &region).unwrap();
        assert_eq!(q.target, agg.aggregate_region(&ds, &region));
        assert!((q.size.width - 30.0).abs() < 1e-12);
        assert!((q.size.height - 25.0).abs() < 1e-12);
        assert!(q.validate(&agg).is_ok());
    }

    #[test]
    fn from_example_rejects_degenerate_region() {
        let (ds, agg) = setup();
        let region = Rect::new(10.0, 10.0, 10.0, 35.0);
        assert_eq!(
            AsrsQuery::from_example_region(&ds, &agg, &region),
            Err(QueryError::DegenerateRegion)
        );
    }

    #[test]
    fn validate_detects_dimension_mismatches() {
        let (_, agg) = setup();
        let q = AsrsQuery::new(
            RegionSize::new(1.0, 1.0),
            FeatureVector::new(vec![1.0, 2.0]),
            Weights::uniform(2),
        );
        assert!(matches!(
            q.validate(&agg),
            Err(QueryError::TargetDimensionMismatch { .. })
        ));
        let q = AsrsQuery::new(
            RegionSize::new(1.0, 1.0),
            FeatureVector::zeros(agg.feature_dim()),
            Weights::uniform(1),
        );
        assert!(matches!(
            q.validate(&agg),
            Err(QueryError::WeightDimensionMismatch { .. })
        ));
    }

    #[test]
    fn builders_set_metric_and_weights() {
        let q = AsrsQuery::with_uniform_weights(
            RegionSize::new(2.0, 2.0),
            FeatureVector::new(vec![1.0, 0.0]),
        )
        .with_metric(DistanceMetric::L2)
        .with_weights(Weights::new(vec![0.5, 0.5]));
        assert_eq!(q.metric, DistanceMetric::L2);
        assert_eq!(q.weights.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn validate_rejects_malformed_components() {
        let (_, agg) = setup();
        let dim = agg.feature_dim();
        let ok = |q: &AsrsQuery| q.validate(&agg);

        let q = AsrsQuery::new(
            RegionSize::new(0.0, 1.0),
            FeatureVector::zeros(dim),
            Weights::uniform(dim),
        );
        assert!(matches!(ok(&q), Err(QueryError::InvalidSize { .. })));

        let q = AsrsQuery::new(
            RegionSize::new(1.0, f64::INFINITY),
            FeatureVector::zeros(dim),
            Weights::uniform(dim),
        );
        assert!(matches!(ok(&q), Err(QueryError::InvalidSize { .. })));

        let q = AsrsQuery::new(
            RegionSize::new(1.0, 1.0),
            FeatureVector::new(vec![f64::NAN; dim]),
            Weights::uniform(dim),
        );
        assert_eq!(ok(&q), Err(QueryError::NonFiniteTarget));
    }

    #[test]
    fn error_display() {
        let e = QueryError::TargetDimensionMismatch {
            got: 1,
            expected: 2,
        };
        assert!(format!("{e}").contains("1"));
        assert!(format!("{}", QueryError::DegenerateRegion).contains("positive"));
    }
}
