//! Function `Split` (Section 4.4).
//!
//! The dirty cells that survived pruning are partitioned into two groups
//! whose minimum bounding rectangles become the two new, smaller sub-spaces.
//! The heuristic follows the paper: pick two seed cells far from each other,
//! then greedily assign every remaining cell to the group whose MBR grows
//! the least.

use crate::discretize::DirtyCell;
use asrs_geo::{GridSpec, Rect};

/// A sub-space produced by splitting: its extent and the minimum lower
/// bound of the dirty cells it encloses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SubSpace {
    pub space: Rect,
    pub lb: f64,
}

/// Splits the retained dirty cells of `grid` into at most two sub-spaces.
///
/// Returns an empty vector when there is no retained dirty cell, a single
/// sub-space when there is exactly one, and two sub-spaces otherwise.
pub(crate) fn split(grid: &GridSpec, retained: &[DirtyCell]) -> Vec<SubSpace> {
    match retained.len() {
        0 => Vec::new(),
        1 => {
            let cell = &retained[0];
            vec![SubSpace {
                space: grid.cell_rect(cell.col, cell.row),
                lb: cell.lb,
            }]
        }
        _ => split_two(grid, retained),
    }
}

fn split_two(grid: &GridSpec, retained: &[DirtyCell]) -> Vec<SubSpace> {
    let (seed_a, seed_b) = pick_seeds(retained);
    let mut mbr_a = grid.cell_rect(retained[seed_a].col, retained[seed_a].row);
    let mut mbr_b = grid.cell_rect(retained[seed_b].col, retained[seed_b].row);
    let mut lb_a = retained[seed_a].lb;
    let mut lb_b = retained[seed_b].lb;

    for (i, cell) in retained.iter().enumerate() {
        if i == seed_a || i == seed_b {
            continue;
        }
        let rect = grid.cell_rect(cell.col, cell.row);
        let cost_a = mbr_a.enlargement(&rect);
        let cost_b = mbr_b.enlargement(&rect);
        // Paper: "if cost1 > cost2 then G2 ← G2 ∪ {g} else G1 ← G1 ∪ {g}".
        if cost_a > cost_b {
            mbr_b = mbr_b.mbr(&rect);
            lb_b = lb_b.min(cell.lb);
        } else {
            mbr_a = mbr_a.mbr(&rect);
            lb_a = lb_a.min(cell.lb);
        }
    }

    vec![
        SubSpace {
            space: mbr_a,
            lb: lb_a,
        },
        SubSpace {
            space: mbr_b,
            lb: lb_b,
        },
    ]
}

/// Picks two cells that are far from each other, as seeds of the two groups.
///
/// A full pairwise scan is quadratic in the number of dirty cells; instead
/// the four extreme cells along the two diagonal directions are considered
/// and the farthest pair among them is returned — a linear-time
/// approximation of "two cells far from each other".
fn pick_seeds(retained: &[DirtyCell]) -> (usize, usize) {
    debug_assert!(retained.len() >= 2);
    let mut extremes = [0usize; 4];
    let key = |i: usize| {
        let c = &retained[i];
        (c.col as i64 + c.row as i64, c.col as i64 - c.row as i64)
    };
    for i in 1..retained.len() {
        let (sum, diff) = key(i);
        if sum < key(extremes[0]).0 {
            extremes[0] = i;
        }
        if sum > key(extremes[1]).0 {
            extremes[1] = i;
        }
        if diff < key(extremes[2]).1 {
            extremes[2] = i;
        }
        if diff > key(extremes[3]).1 {
            extremes[3] = i;
        }
    }
    let mut best = (extremes[0], extremes[1]);
    let mut best_d = -1i64;
    for i in 0..4 {
        for j in (i + 1)..4 {
            let a = &retained[extremes[i]];
            let b = &retained[extremes[j]];
            let d = (a.col as i64 - b.col as i64).pow(2) + (a.row as i64 - b.row as i64).pow(2);
            if d > best_d {
                best_d = d;
                best = (extremes[i], extremes[j]);
            }
        }
    }
    if best.0 == best.1 {
        // All candidates coincide (e.g. all cells on one diagonal): fall
        // back to the first and last retained cells.
        (0, retained.len() - 1)
    } else {
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_geo::Rect;

    fn grid() -> GridSpec {
        GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 10, 10)
    }

    fn cell(col: usize, row: usize, lb: f64) -> DirtyCell {
        DirtyCell {
            col,
            row,
            lb,
            partials: 1,
        }
    }

    #[test]
    fn empty_input_produces_no_subspace() {
        assert!(split(&grid(), &[]).is_empty());
    }

    #[test]
    fn single_cell_produces_its_own_rect() {
        let parts = split(&grid(), &[cell(3, 4, 0.5)]);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].space, grid().cell_rect(3, 4));
        assert_eq!(parts[0].lb, 0.5);
    }

    #[test]
    fn two_distant_clusters_are_separated() {
        // Cells clustered near (1, 1) and near (8, 8): the split should keep
        // the clusters in different sub-spaces with small total area.
        let cells = vec![
            cell(0, 0, 0.1),
            cell(1, 0, 0.2),
            cell(0, 1, 0.3),
            cell(1, 1, 0.4),
            cell(8, 8, 0.5),
            cell(9, 8, 0.6),
            cell(8, 9, 0.7),
            cell(9, 9, 0.8),
        ];
        let parts = split(&grid(), &cells);
        assert_eq!(parts.len(), 2);
        let total_area: f64 = parts.iter().map(|p| p.space.area()).sum();
        // Each cluster MBR is 2x2 = 4 area; allow some slack for assignment
        // order but far less than the full 100-area space.
        assert!(total_area <= 10.0, "total area {total_area} too large");
        // The minimum lower bound over both groups covers the global min.
        let min_lb = parts.iter().map(|p| p.lb).fold(f64::INFINITY, f64::min);
        assert!((min_lb - 0.1).abs() < 1e-12);
    }

    #[test]
    fn every_retained_cell_is_covered_by_some_subspace() {
        let cells: Vec<DirtyCell> = (0..10)
            .flat_map(|c| {
                (0..10)
                    .filter(move |r| (c + r) % 3 == 0)
                    .map(move |r| cell(c, r, 1.0))
            })
            .collect();
        let parts = split(&grid(), &cells);
        assert_eq!(parts.len(), 2);
        for c in &cells {
            let rect = grid().cell_rect(c.col, c.row);
            assert!(
                parts.iter().any(|p| p.space.contains_rect(&rect)),
                "cell ({}, {}) not covered",
                c.col,
                c.row
            );
        }
    }

    #[test]
    fn subspace_lbs_are_minima_of_their_groups() {
        let cells = vec![cell(0, 0, 0.9), cell(9, 9, 0.2), cell(1, 1, 0.5)];
        let parts = split(&grid(), &cells);
        assert_eq!(parts.len(), 2);
        let all_min = parts.iter().map(|p| p.lb).fold(f64::INFINITY, f64::min);
        assert!((all_min - 0.2).abs() < 1e-12);
        for p in &parts {
            assert!(p.lb >= 0.2 && p.lb <= 0.9);
        }
    }

    #[test]
    fn collinear_cells_still_split() {
        let cells: Vec<DirtyCell> = (0..10).map(|i| cell(i, i, i as f64)).collect();
        let parts = split(&grid(), &cells);
        assert_eq!(parts.len(), 2);
        // Sub-spaces must be smaller than the full diagonal MBR together.
        assert!(parts.iter().all(|p| p.space.area() <= 100.0));
    }

    #[test]
    fn identical_cells_fall_back_gracefully() {
        let cells = vec![cell(4, 4, 0.3), cell(4, 4, 0.1)];
        let parts = split(&grid(), &cells);
        assert_eq!(parts.len(), 2);
        for p in &parts {
            assert_eq!(p.space, grid().cell_rect(4, 4));
        }
    }
}
