//! Search statistics (instrumentation).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters collected during a search.
///
/// These feed the paper's Table 1 (fraction of grid-index cells searched)
/// and make the pruning behaviour of DS-Search observable in tests and
/// benchmark reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SearchStats {
    /// Number of sub-spaces popped from the heap and discretised
    /// (invocations of Function `Discretize`).
    pub spaces_processed: u64,
    /// Number of grid cells examined across all discretisations.
    pub cells_examined: u64,
    /// Number of clean cells evaluated.
    pub clean_cells: u64,
    /// Number of dirty cells whose lower bound was computed.
    pub dirty_cells: u64,
    /// Number of dirty cells pruned by the Equation-1 lower bound.
    pub dirty_cells_pruned: u64,
    /// Number of split operations (Function `Split`).
    pub splits: u64,
    /// Number of spaces dropped because they satisfied the drop condition.
    pub drops: u64,
    /// Number of candidate points evaluated by the exact fallback applied
    /// to dropped or depth-capped spaces.
    pub fallback_points: u64,
    /// Number of sub-spaces pushed onto the heap.
    pub heap_pushes: u64,
    /// Number of ASP rectangles considered (equals the number of objects
    /// overlapping the search space).
    pub rectangles: u64,
    /// Total number of grid-index cells (GI-DS only).
    pub index_cells_total: u64,
    /// Number of grid-index cells actually searched by DS-Search
    /// (GI-DS only; the numerator of Table 1's ratio).
    pub index_cells_searched: u64,
    /// Number of candidates rejected at the [`BestSet`](crate) insertion
    /// boundary because their distance was not finite (a pathological
    /// aggregator produced NaN/∞).  Always zero for well-behaved
    /// aggregators.
    pub non_finite_candidates: u64,
    /// Query-result cache hits.  Zero on per-response statistics (a cached
    /// response is byte-identical to the original computation, counters
    /// included); populated on engine-level aggregate snapshots such as the
    /// serving `/metrics` endpoint.
    pub cache_hits: u64,
    /// Query-result cache misses (see [`SearchStats::cache_hits`]).
    pub cache_misses: u64,
    /// Shards that executed part of this search (sharded engines only;
    /// zero on single-engine runs).
    pub shards_touched: u64,
    /// Shards skipped because no ASP rectangle reached their anchor slab —
    /// e.g. empty shards, or shards outside the instance's search space
    /// (sharded engines only).
    pub shards_pruned: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

impl SearchStats {
    /// Creates an empty statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fraction of grid-index cells searched, or `None` when no index
    /// was involved.
    pub fn index_search_ratio(&self) -> Option<f64> {
        if self.index_cells_total == 0 {
            None
        } else {
            Some(self.index_cells_searched as f64 / self.index_cells_total as f64)
        }
    }

    /// Merges another statistics record into this one (durations add).
    pub fn merge(&mut self, other: &SearchStats) {
        self.spaces_processed += other.spaces_processed;
        self.cells_examined += other.cells_examined;
        self.clean_cells += other.clean_cells;
        self.dirty_cells += other.dirty_cells;
        self.dirty_cells_pruned += other.dirty_cells_pruned;
        self.splits += other.splits;
        self.drops += other.drops;
        self.fallback_points += other.fallback_points;
        self.heap_pushes += other.heap_pushes;
        self.rectangles += other.rectangles;
        self.index_cells_total += other.index_cells_total;
        self.index_cells_searched += other.index_cells_searched;
        self.non_finite_candidates += other.non_finite_candidates;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.shards_touched += other.shards_touched;
        self.shards_pruned += other.shards_pruned;
        self.elapsed += other.elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_none_without_index() {
        assert_eq!(SearchStats::new().index_search_ratio(), None);
    }

    #[test]
    fn ratio_computation() {
        let stats = SearchStats {
            index_cells_total: 200,
            index_cells_searched: 25,
            ..Default::default()
        };
        assert_eq!(stats.index_search_ratio(), Some(0.125));
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = SearchStats {
            spaces_processed: 2,
            clean_cells: 10,
            elapsed: Duration::from_millis(5),
            ..Default::default()
        };
        let b = SearchStats {
            spaces_processed: 3,
            clean_cells: 7,
            elapsed: Duration::from_millis(10),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.spaces_processed, 5);
        assert_eq!(a.clean_cells, 17);
        assert_eq!(a.elapsed, Duration::from_millis(15));
    }
}
