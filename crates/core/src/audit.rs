//! Deep invariant auditing of an engine generation.
//!
//! The engine's correctness rests on structural invariants that normal
//! operation only exercises indirectly: the grid index's suffix tables
//! must be the deterministic sweep of its base table, an incrementally
//! maintained index must be bit-identical to a fresh build, shard
//! partitions must stay disjoint-and-covering, planner statistics must
//! describe the dataset they were captured from, and every cache key's
//! generation stamp must refer to a generation that exists.  A violation
//! of any of these would surface — much later — as a wrong answer or a
//! byte-parity test failure with no pointer back to the corrupting step.
//!
//! [`audit_core`] checks them all *directly* against one immutable
//! [`EngineCore`] and reports every violation as an [`AuditFinding`].
//! Debug builds run it after every mutation publish (see
//! [`mutate`](crate::mutate)), so the whole mutation-parity and
//! persistence-recovery suites execute under continuous audit; release
//! builds compile the hook out.  Callers can audit on demand through
//! [`AsrsEngine::audit`](crate::AsrsEngine::audit) /
//! [`EngineHandle::audit`](crate::EngineHandle::audit), and a serving
//! engine exposes the report as `GET /audit`.

use crate::engine::{EngineCore, EngineShared, IndexUpkeep};
use crate::grid_index::GridIndex;
use crate::planner::{EngineStatistics, IndexStatistics};
use asrs_data::Dataset;
use asrs_geo::Rect;
use serde::Serialize;
use std::collections::HashMap;

/// One violated invariant: which check tripped and what it saw.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AuditFinding {
    /// Stable identifier of the violated check (e.g.
    /// `"index-suffix-table"`, `"shard-cover"`).
    pub check: &'static str,
    /// Human-readable description of the observed violation.
    pub detail: String,
}

/// The outcome of one audit run over one engine generation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AuditReport {
    /// Generation of the audited core.
    pub generation: u64,
    /// Number of invariant checks that ran (a check skipped because its
    /// subject is absent — no index, no shards, no cache — is not
    /// counted).
    pub checks_run: usize,
    /// Every violated invariant; empty for a healthy core.
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// Whether every check passed.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Collects check outcomes while the audit walks the core.
struct Auditor {
    checks_run: usize,
    findings: Vec<AuditFinding>,
}

impl Auditor {
    fn check(&mut self, check: &'static str, ok: bool, detail: impl FnOnce() -> String) {
        self.checks_run += 1;
        if !ok {
            self.findings.push(AuditFinding {
                check,
                detail: detail(),
            });
        }
    }
}

/// Audits every structural invariant of one engine generation.
///
/// The checks, by subject:
///
/// * **dataset** — the cached bounding box equals a fresh fold over the
///   objects, bitwise.
/// * **statistics** — the planner statistics equal a fresh recapture by
///   the same code path the builder and the mutation publisher run
///   (object count, extent, index statistics — virtual for per-shard
///   upkeep — and shard fan-out).
/// * **index** (when attached, top-level and per shard) — the statistics
///   dimensionality matches the aggregator, the object count matches the
///   dataset, the suffix table equals the deterministic sweep of the base
///   table bitwise, and — while the grid geometry still matches the
///   dataset — the whole index equals a fresh
///   [`GridIndex::build`] bitwise (the incremental-maintenance
///   guarantee).
/// * **shards** (when sharded) — every dataset object lives in exactly
///   one shard (cover + disjointness), every shard object lies inside its
///   shard's region with interior points routed to that same shard (the
///   cut-line tie rule), no shard holds an object the dataset lacks, and
///   no shard core's generation exceeds the published generation.
/// * **cache** (when attached) — every stored key's generation stamp
///   refers to this or an earlier generation.  Meaningful when no
///   mutation publishes concurrently; the facade methods hold the
///   mutation lock for exactly that reason.
///
/// Audits the current generation with mutations paused: the mutation
/// lock is held for the duration, so no successor generation can publish
/// — and no query can stamp a newer cache key — while the audit reads.
/// Queries themselves are never blocked (they only snapshot the core).
pub(crate) fn audit_shared(shared: &EngineShared) -> AuditReport {
    let _mutations_paused = shared.mutator.lock().expect("mutation lock poisoned"); // lint:allow(poisoned mutation lock is unrecoverable)
    audit_core(&shared.load())
}

pub(crate) fn audit_core(core: &EngineCore) -> AuditReport {
    let mut audit = Auditor {
        checks_run: 0,
        findings: Vec::new(),
    };

    audit_dataset(&mut audit, &core.dataset);
    audit_statistics(&mut audit, core);
    if let Some(index) = core.index.as_deref() {
        audit_index(&mut audit, index, &core.dataset, core, "");
    }
    if let Some(set) = &core.shards {
        audit_shards(&mut audit, core, set);
    }
    if let Some(cache) = &core.cache {
        let provenance = cache.stamp_provenance();
        let stale: Vec<u64> = provenance
            .iter()
            .map(|p| p.stamp)
            .filter(|g| *g > core.generation)
            .collect();
        audit.check("cache-generation-stamps", stale.is_empty(), || {
            format!(
                "cache holds {} key(s) stamped past generation {} (first: {})",
                stale.len(),
                core.generation,
                stale[0]
            )
        });
        // A carried entry must have been proven at a generation strictly
        // before the one it is stamped with ("stamped N+1, proven at N"):
        // equal or newer provenance would mean the entry skipped the
        // publish that was supposed to prove it.
        let bad_carries: Vec<String> = provenance
            .iter()
            .filter_map(|p| {
                let proven = p.carried_from?;
                (proven >= p.stamp).then(|| format!("stamped {} proven at {proven}", p.stamp))
            })
            .collect();
        audit.check("cache-carry-provenance", bad_carries.is_empty(), || {
            format!(
                "{} carried cache entr(ies) with provenance not before their stamp (first: {})",
                bad_carries.len(),
                bad_carries[0]
            )
        });
    }

    AuditReport {
        generation: core.generation,
        checks_run: audit.checks_run,
        findings: audit.findings,
    }
}

/// Recomputes the dataset bounding box from the objects and compares it
/// bitwise with the cached one.
fn audit_dataset(audit: &mut Auditor, dataset: &Dataset) {
    let recomputed = recompute_bounding_box(dataset);
    let cached = dataset.bounding_box();
    audit.check(
        "dataset-bounding-box",
        rect_options_bit_equal(recomputed.as_ref(), cached.as_ref()),
        || format!("cached bounding box {cached:?} != recomputed {recomputed:?}"),
    );
}

fn recompute_bounding_box(dataset: &Dataset) -> Option<Rect> {
    let mut objects = dataset.objects();
    let first = objects.next()?;
    let mut rect = Rect::new(
        first.location.x,
        first.location.y,
        first.location.x,
        first.location.y,
    );
    for o in objects {
        rect.min_x = rect.min_x.min(o.location.x);
        rect.min_y = rect.min_y.min(o.location.y);
        rect.max_x = rect.max_x.max(o.location.x);
        rect.max_y = rect.max_y.max(o.location.y);
    }
    Some(rect)
}

fn rect_options_bit_equal(a: Option<&Rect>, b: Option<&Rect>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => {
            a.min_x.to_bits() == b.min_x.to_bits()
                && a.min_y.to_bits() == b.min_y.to_bits()
                && a.max_x.to_bits() == b.max_x.to_bits()
                && a.max_y.to_bits() == b.max_y.to_bits()
        }
        _ => false,
    }
}

/// Recaptures the planner statistics by the same code path the builders
/// and the mutation publisher run, and compares them with the stored ones.
fn audit_statistics(audit: &mut Auditor, core: &EngineCore) {
    let mut expected = EngineStatistics::capture(&core.dataset, core.index.as_deref());
    if let IndexUpkeep::PerShard { cols, rows } = core.upkeep {
        expected.index = if core.dataset.is_empty() {
            None
        } else {
            match IndexStatistics::virtual_for(&core.dataset, cols, rows) {
                Ok(stats) => Some(stats),
                Err(err) => {
                    audit.check("statistics-recapture", false, || {
                        format!("virtual index statistics failed to recompute: {err}")
                    });
                    return;
                }
            }
        };
    }
    if let Some(set) = &core.shards {
        expected.shards = Some(set.fan_out());
    }
    audit.check("statistics-recapture", expected == core.statistics, || {
        format!(
            "stored statistics {:?} != recaptured {:?}",
            core.statistics, expected
        )
    });
}

/// Audits one grid index against the dataset it summarises.  `scope`
/// prefixes the detail messages (`""` for the top-level index, a shard
/// label for per-shard indexes).
fn audit_index(
    audit: &mut Auditor,
    index: &GridIndex,
    dataset: &Dataset,
    core: &EngineCore,
    scope: &str,
) {
    audit.check(
        "index-stats-dim",
        index.stats_dim() == core.aggregator.stats_dim(),
        || {
            format!(
                "{scope}index carries {} statistics dims, aggregator needs {}",
                index.stats_dim(),
                core.aggregator.stats_dim()
            )
        },
    );
    audit.check(
        "index-object-count",
        index.objects_indexed() == dataset.len(),
        || {
            format!(
                "{scope}index summarises {} objects, dataset holds {}",
                index.objects_indexed(),
                dataset.len()
            )
        },
    );

    // The suffix table must be the deterministic sweep of the base table.
    // `from_base_table` runs exactly that sweep, so reassembling the index
    // from its own base table must reproduce the suffix table bitwise —
    // geometry match or not.
    match GridIndex::from_base_table(
        index.spec().clone(),
        index.stats_dim(),
        index.objects_indexed(),
        index.base_table().to_vec(),
    ) {
        Ok(swept) => audit.check(
            "index-suffix-table",
            tables_bit_equal(index.suffix_table(), swept.suffix_table()),
            || format!("{scope}suffix table diverges from the sweep of its base table"),
        ),
        Err(err) => audit.check("index-suffix-table", false, || {
            format!("{scope}base table failed to reassemble: {err}")
        }),
    }

    // While the grid geometry still matches the dataset, the maintained
    // index must equal a fresh build bitwise (the incremental-maintenance
    // guarantee; a geometry move obliges the *next* mutation to rebuild,
    // so a mismatched geometry is not itself a violation).
    if index.space_matches(dataset) {
        let (cols, rows) = index.granularity();
        match GridIndex::build(dataset, &core.aggregator, cols, rows) {
            Ok(fresh) => {
                audit.check(
                    "index-rebuild-identity",
                    tables_bit_equal(index.base_table(), fresh.base_table())
                        && tables_bit_equal(index.suffix_table(), fresh.suffix_table()),
                    || format!("{scope}maintained index diverges bitwise from a fresh build"),
                );
            }
            Err(err) => audit.check("index-rebuild-identity", false, || {
                format!("{scope}fresh index build failed during audit: {err}")
            }),
        }
    }
}

fn tables_bit_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Audits the shard table: partition cover/disjointness, region
/// ownership, generation monotonicity and the per-shard indexes.
fn audit_shards(audit: &mut Auditor, core: &EngineCore, set: &crate::shard::ShardSet) {
    // Generation monotonicity: a shard core is either carried over from an
    // earlier generation (untouched by the mutations since) or rebuilt at
    // the current one — never from the future.
    let ahead: Vec<usize> = set
        .shards
        .iter()
        .enumerate()
        .filter(|(_, s)| s.core.generation > core.generation)
        .map(|(i, _)| i)
        .collect();
    audit.check("shard-generations", ahead.is_empty(), || {
        format!(
            "shard(s) {:?} carry generations past the published {}",
            ahead, core.generation
        )
    });

    // Cover + disjointness by object id: every dataset object in exactly
    // one shard, no shard object missing from the dataset.
    let mut owner_of: HashMap<u64, usize> = HashMap::new();
    let mut duplicated = Vec::new();
    let mut foreign = Vec::new();
    for (i, shard) in set.shards.iter().enumerate() {
        for o in shard.core.dataset.objects() {
            if owner_of.insert(o.id, i).is_some() {
                duplicated.push(o.id);
            }
            if !core.dataset.contains_id(o.id) {
                foreign.push(o.id);
            }
        }
    }
    audit.check("shard-disjointness", duplicated.is_empty(), || {
        format!("object id(s) {duplicated:?} live in more than one shard")
    });
    audit.check("shard-no-foreign-objects", foreign.is_empty(), || {
        format!("shard object id(s) {foreign:?} are absent from the dataset")
    });
    let missing: Vec<u64> = core
        .dataset
        .objects()
        .filter(|o| !owner_of.contains_key(&o.id))
        .map(|o| o.id)
        .collect();
    audit.check("shard-cover", missing.is_empty(), || {
        format!("dataset object id(s) {missing:?} belong to no shard")
    });

    // Region ownership: every shard object lies inside its shard's
    // region, and an object strictly interior to the region routes back
    // to that same shard (cut-line points may legitimately be owned by a
    // neighbour under the at-or-above tie rule, so only interior points
    // pin the owner uniquely).
    let mut outside = Vec::new();
    let mut misrouted = Vec::new();
    for (i, shard) in set.shards.iter().enumerate() {
        for o in shard.core.dataset.objects() {
            let p = &o.location;
            if !shard.region.contains_point(p) {
                outside.push(o.id);
                continue;
            }
            let interior = p.x > shard.region.min_x
                && p.x < shard.region.max_x
                && p.y > shard.region.min_y
                && p.y < shard.region.max_y;
            if interior && crate::mutate::owning_shard_for_point(set, o) != Some(i) {
                misrouted.push(o.id);
            }
        }
    }
    audit.check("shard-region-containment", outside.is_empty(), || {
        format!("object id(s) {outside:?} lie outside their shard's region")
    });
    audit.check("shard-routing", misrouted.is_empty(), || {
        format!("interior object id(s) {misrouted:?} route to a different shard than the one holding them")
    });

    for (i, shard) in set.shards.iter().enumerate() {
        if let Some(index) = shard.core.index.as_deref() {
            audit_index(
                audit,
                index,
                &shard.core.dataset,
                core,
                &format!("shard {i}: "),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AsrsEngine;
    use asrs_aggregator::{CompositeAggregator, Selection};
    use asrs_data::gen::UniformGenerator;

    fn engine(n: usize, shards: usize, index: bool, cache: usize) -> AsrsEngine {
        let ds = UniformGenerator::default().generate(n, 7);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let mut b = AsrsEngine::builder(ds, agg).cache_capacity(cache);
        if index {
            b = b.build_index(12, 12);
        }
        if shards > 0 {
            b = b.shards(shards);
        }
        b.build().unwrap()
    }

    #[test]
    fn fresh_engines_audit_clean_in_every_configuration() {
        for (shards, index, cache) in [
            (0, false, 0),
            (0, true, 16),
            (1, true, 16),
            (3, true, 0),
            (4, false, 8),
        ] {
            let engine = engine(250, shards, index, cache);
            let report = engine.audit();
            assert!(
                report.is_clean(),
                "shards={shards} index={index} cache={cache}: {:?}",
                report.findings
            );
            assert!(report.checks_run >= 2);
            assert_eq!(report.generation, 0);
        }
    }

    #[test]
    fn mutated_engines_stay_clean_under_audit() {
        let engine = engine(200, 2, true, 32);
        let bbox = engine.dataset().bounding_box().unwrap();
        for i in 0..10u64 {
            let f = i as f64 / 9.0;
            engine
                .append(asrs_data::SpatialObject::new(
                    50_000 + i,
                    asrs_geo::Point::new(
                        bbox.min_x + bbox.width() * (0.1 + 0.8 * f),
                        bbox.min_y + bbox.height() * (0.9 - 0.8 * f),
                    ),
                    engine.dataset().object(0).values.clone(),
                ))
                .unwrap();
        }
        engine.remove(50_003).unwrap();
        let report = engine.audit();
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.generation, 11);
    }

    #[test]
    fn a_corrupted_suffix_table_is_detected() {
        let ds = UniformGenerator::default().generate(150, 3);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let index = GridIndex::build(&ds, &agg, 8, 8).unwrap();
        let mut broken = index.clone();
        broken.corrupt_suffix_for_test(0, 1.0);
        let engine = AsrsEngine::builder(ds, agg).index(broken).build().unwrap();
        let report = engine.audit();
        assert!(!report.is_clean());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.check == "index-suffix-table"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn a_stale_object_count_is_detected() {
        let ds = UniformGenerator::default().generate(150, 3);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let index = GridIndex::from_base_table(
            GridIndex::build(&ds, &agg, 8, 8).unwrap().spec().clone(),
            agg.stats_dim(),
            ds.len() + 5,
            GridIndex::build(&ds, &agg, 8, 8)
                .unwrap()
                .base_table()
                .to_vec(),
        )
        .unwrap();
        let engine = AsrsEngine::builder(ds, agg).index(index).build().unwrap();
        let report = engine.audit();
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == "index-object-count"));
    }
}
