//! The [`AsrsEngine`] facade: one entry point over every search backend.
//!
//! The per-algorithm solvers ([`DsSearch`], [`GiDsSearch`],
//! [`NaiveSearch`]) remain available for low-level use, but the engine is
//! the intended public surface:
//!
//! * an [`EngineBuilder`] owns the dataset and aggregator, optionally
//!   builds or attaches a [`GridIndex`], and validates everything once,
//! * requests are declarative [`QueryRequest`] values; the engine's
//!   [`Planner`] picks the backend per request from dataset/index
//!   statistics (an explicit [`Strategy`] or a request-level
//!   [`QueryRequest::with_backend`] override pins it), and
//!   [`AsrsEngine::submit`] executes the plan into a [`QueryResponse`],
//! * [`AsrsEngine::handle`] hands out cheap `Clone + Send + Sync`
//!   [`EngineHandle`](crate::EngineHandle)s over the engine's `Arc`-shared
//!   immutable core for concurrent submission, and every request can carry
//!   a wall-clock budget enforced down the discretize–split recursion,
//! * the backends are interchangeable behind the object-safe
//!   [`SearchAlgorithm`] trait, so external crates (e.g. the sweep-line
//!   baseline in `asrs-baseline`) plug in via [`AsrsEngine::search_with`],
//! * every query is validated once at the engine boundary and every
//!   fallible method returns `Result<_, AsrsError>` — nothing panics on
//!   bad input,
//! * the legacy per-operation methods ([`AsrsEngine::search`],
//!   [`AsrsEngine::search_top_k`], [`AsrsEngine::search_batch`],
//!   [`AsrsEngine::max_rs`]) are kept as thin shims over `submit`.
//!
//! ```
//! use asrs_core::{AsrsEngine, QueryRequest};
//! use asrs_aggregator::{CompositeAggregator, Selection};
//! use asrs_data::gen::UniformGenerator;
//! use asrs_geo::Rect;
//!
//! let dataset = UniformGenerator::default().generate(500, 42);
//! let aggregator = CompositeAggregator::builder(dataset.schema())
//!     .distribution("category", Selection::All)
//!     .build()
//!     .unwrap();
//! let engine = AsrsEngine::builder(dataset, aggregator)
//!     .build_index(32, 32)
//!     .build()
//!     .unwrap();
//!
//! let example = Rect::new(10.0, 10.0, 25.0, 25.0);
//! let query = engine.query_from_example(&example).unwrap();
//! let response = engine
//!     .submit(&QueryRequest::similar(query).with_budget_ms(10_000))
//!     .unwrap();
//! assert!(response.best().unwrap().distance <= 1e-9);
//! ```

use crate::budget::Budget;
use crate::cache::{CacheStats, QueryCache};
use crate::config::SearchConfig;
use crate::ds_search::DsSearch;
use crate::error::AsrsError;
use crate::gi_ds::GiDsSearch;
use crate::grid_index::GridIndex;
use crate::maxrs::{MaxRsResult, MaxRsSearch};
use crate::mutate::{MutationPolicy, MutationReceipt, MutationState, MutationStats};
use crate::naive::NaiveSearch;
use crate::planner::{EngineStatistics, ExecutionPlan, Planner};
use crate::query::AsrsQuery;
use crate::request::{Backend, QueryOutcome, QueryRequest, QueryResponse};
use crate::result::SearchResult;
use crate::sync::{Mutex, RwLock};
use asrs_aggregator::{CompositeAggregator, Selection};
use asrs_data::{Dataset, Mutation, MutationLog, SpatialObject};
use asrs_geo::{Rect, RegionSize};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// An interchangeable ASRS search backend.
///
/// The trait is object-safe: the engine dispatches through
/// `Box<dyn SearchAlgorithm>` and accepts external implementations via
/// [`AsrsEngine::search_with`].  Implementors may assume the query has
/// been validated against the aggregator they were built with (the engine
/// guarantees it); implementations provided by this workspace re-validate
/// defensively, so direct use is safe too.
pub trait SearchAlgorithm {
    /// A short human-readable backend name (for logs and errors).
    fn name(&self) -> &str;

    /// Solves the ASRS problem for `query`.
    fn search(&self, query: &AsrsQuery) -> Result<SearchResult, AsrsError>;

    /// Returns up to `k` best candidate regions with pairwise distinct
    /// anchors, best first.
    ///
    /// The default implementation runs [`SearchAlgorithm::search`] and
    /// returns a single result; backends with native top-k support
    /// override it.
    fn search_top_k(&self, query: &AsrsQuery, k: usize) -> Result<Vec<SearchResult>, AsrsError> {
        if k == 0 {
            return Err(AsrsError::InvalidTopK);
        }
        Ok(vec![self.search(query)?])
    }

    /// [`SearchAlgorithm::search`] under an optional wall-clock budget.
    ///
    /// The default implementation ignores the budget (external backends
    /// keep compiling unchanged); the built-in backends override it to
    /// abort with [`AsrsError::DeadlineExceeded`] once the budget is
    /// spent.
    fn search_within(
        &self,
        query: &AsrsQuery,
        budget: Option<Budget>,
    ) -> Result<SearchResult, AsrsError> {
        let _ = budget;
        self.search(query)
    }

    /// [`SearchAlgorithm::search_top_k`] under an optional wall-clock
    /// budget (see [`SearchAlgorithm::search_within`]).
    fn search_top_k_within(
        &self,
        query: &AsrsQuery,
        k: usize,
        budget: Option<Budget>,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        let _ = budget;
        self.search_top_k(query, k)
    }
}

impl SearchAlgorithm for DsSearch<'_> {
    fn name(&self) -> &str {
        "ds-search"
    }

    fn search(&self, query: &AsrsQuery) -> Result<SearchResult, AsrsError> {
        DsSearch::search(self, query)
    }

    fn search_top_k(&self, query: &AsrsQuery, k: usize) -> Result<Vec<SearchResult>, AsrsError> {
        DsSearch::search_top_k(self, query, k)
    }

    fn search_within(
        &self,
        query: &AsrsQuery,
        budget: Option<Budget>,
    ) -> Result<SearchResult, AsrsError> {
        DsSearch::search_within(self, query, budget)
    }

    fn search_top_k_within(
        &self,
        query: &AsrsQuery,
        k: usize,
        budget: Option<Budget>,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        DsSearch::search_top_k_within(self, query, k, budget)
    }
}

impl SearchAlgorithm for GiDsSearch<'_> {
    fn name(&self) -> &str {
        "gi-ds"
    }

    fn search(&self, query: &AsrsQuery) -> Result<SearchResult, AsrsError> {
        GiDsSearch::search(self, query)
    }

    fn search_top_k(&self, query: &AsrsQuery, k: usize) -> Result<Vec<SearchResult>, AsrsError> {
        GiDsSearch::search_top_k(self, query, k)
    }

    fn search_within(
        &self,
        query: &AsrsQuery,
        budget: Option<Budget>,
    ) -> Result<SearchResult, AsrsError> {
        GiDsSearch::search_within(self, query, budget)
    }

    fn search_top_k_within(
        &self,
        query: &AsrsQuery,
        k: usize,
        budget: Option<Budget>,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        GiDsSearch::search_top_k_within(self, query, k, budget)
    }
}

impl SearchAlgorithm for NaiveSearch<'_> {
    fn name(&self) -> &str {
        "naive"
    }

    fn search(&self, query: &AsrsQuery) -> Result<SearchResult, AsrsError> {
        NaiveSearch::search(self, query)
    }

    fn search_top_k(&self, query: &AsrsQuery, k: usize) -> Result<Vec<SearchResult>, AsrsError> {
        NaiveSearch::search_top_k(self, query, k)
    }

    fn search_within(
        &self,
        query: &AsrsQuery,
        budget: Option<Budget>,
    ) -> Result<SearchResult, AsrsError> {
        NaiveSearch::search_within(self, query, budget)
    }

    fn search_top_k_within(
        &self,
        query: &AsrsQuery,
        k: usize,
        budget: Option<Budget>,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        NaiveSearch::search_top_k_within(self, query, k, budget)
    }
}

/// Backend selection policy of an [`AsrsEngine`].
///
/// `Auto` defers the choice to the engine's cost-based
/// [`Planner`], which decides per request; the explicit variants pin one
/// backend for every request the engine executes (a per-request
/// [`QueryRequest::with_backend`] override still wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Let the planner decide per request (GI-DS for small queries on an
    /// indexed engine, DS-Search otherwise — see [`Planner`]).
    #[default]
    Auto,
    /// The exact discretize–split algorithm (no index needed).
    DsSearch,
    /// The grid-index-accelerated algorithm; requires an index.
    GiDs,
    /// The exhaustive arrangement oracle — exact but `O(n²)` probes, for
    /// validation and small instances.
    Naive,
}

impl Strategy {
    /// Resolves [`Strategy::Auto`] to the concrete backend it dispatches
    /// to; explicit strategies resolve to themselves.  This is the single
    /// decision point shared by dispatch and reporting.
    fn resolve(self, has_index: bool) -> Strategy {
        match self {
            Strategy::Auto if has_index => Strategy::GiDs,
            Strategy::Auto => Strategy::DsSearch,
            explicit => explicit,
        }
    }

    /// The name of the backend this strategy resolves to.
    fn resolved_name(self, has_index: bool) -> &'static str {
        match self.resolve(has_index) {
            Strategy::DsSearch => "ds-search",
            Strategy::GiDs => "gi-ds",
            Strategy::Naive => "naive",
            // lint:allow(resolve() maps Auto to a concrete strategy in every arm; this is statically dead)
            Strategy::Auto => unreachable!("resolve() never returns Auto"),
        }
    }
}

/// How the builder should obtain a grid index.
#[derive(Debug)]
enum IndexSpec {
    None,
    Build { cols: usize, rows: usize },
    Attach(GridIndex),
}

/// How a built engine maintains its indexes under mutation — recorded at
/// build time so every generation knows what to refresh and at which
/// granularity (see the [`mutate`](crate::mutate) module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IndexUpkeep {
    /// No index to maintain.
    None,
    /// One whole-dataset index on the engine core: unsharded engines, and
    /// sharded engines serving statistics from an attached index.
    PerEngine {
        /// Rebuild granularity: columns.
        cols: usize,
        /// Rebuild granularity: rows.
        rows: usize,
    },
    /// One index per shard (sharded engines that requested an index
    /// build); the planner reads virtual whole-dataset geometry instead.
    PerShard {
        /// Rebuild granularity: columns.
        cols: usize,
        /// Rebuild granularity: rows.
        rows: usize,
    },
}

/// Builder for [`AsrsEngine`].  All validation happens in
/// [`EngineBuilder::build`]; none of the setters can panic.
#[derive(Debug)]
pub struct EngineBuilder {
    dataset: Dataset,
    aggregator: CompositeAggregator,
    config: SearchConfig,
    strategy: Strategy,
    index: IndexSpec,
    planner: Planner,
    cache_capacity: usize,
    shards: usize,
    mutation_policy: MutationPolicy,
}

impl EngineBuilder {
    fn new(dataset: Dataset, aggregator: CompositeAggregator) -> Self {
        Self {
            dataset,
            aggregator,
            config: SearchConfig::default(),
            strategy: Strategy::Auto,
            index: IndexSpec::None,
            planner: Planner::default(),
            cache_capacity: 0,
            shards: 0,
            mutation_policy: MutationPolicy::default(),
        }
    }

    /// Replaces the [`MutationPolicy`] governing incremental index
    /// maintenance and shard re-partitioning under mutation.
    pub fn mutation_policy(mut self, policy: MutationPolicy) -> Self {
        self.mutation_policy = policy;
        self
    }

    /// Shards the engine: the dataset is partitioned spatially into `n`
    /// disjoint regions (longest-axis recursive splits, see
    /// [`SpatialPartition`](asrs_data::SpatialPartition)), one core — and,
    /// with [`EngineBuilder::build_index`], one grid index, built in
    /// parallel — per region.  Requests are scattered across the shards'
    /// anchor slabs and gathered with the engine's deterministic
    /// tie-break; the gathered outcome is byte-identical for every shard
    /// count, statistics excepted (the internal `shard` module documents
    /// the exactness and determinism argument; the comparison form is
    /// [`QueryResponse::stats_stripped`](crate::QueryResponse::stats_stripped)).
    ///
    /// `0` (the default) disables sharding entirely — the classic
    /// single-core engine.  Note that `shards(1)` is *not* the same as
    /// `0`: it runs the scatter-gather executor with a single shard, which
    /// is the parity baseline the sharded counts are byte-compared
    /// against.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Attaches a query-result cache retaining up to `capacity` responses
    /// (see [`QueryCache`](crate::QueryCache)); `0` (the default) disables
    /// caching.
    ///
    /// With a cache, [`AsrsEngine::submit`] memoises successful responses
    /// by the request's canonical key
    /// ([`QueryRequest::cache_key`](crate::QueryRequest::cache_key)): a hit
    /// returns the stored response verbatim — byte-identical to the cold
    /// computation, statistics included.  Errors are never cached.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Replaces the cost-based [`Planner`] (e.g. to tune its thresholds).
    pub fn planner(mut self, planner: Planner) -> Self {
        self.planner = planner;
        self
    }

    /// Admission control: rejects any request whose planned backend's cost
    /// estimate exceeds `ceiling` (abstract rectangle-visit units, see
    /// [`CostEstimate`](crate::CostEstimate)) with
    /// [`AsrsError::CostCeilingExceeded`] *before* execution, so one
    /// extent-spanning query cannot starve the worker pool.  Shorthand for
    /// setting [`Planner::cost_ceiling`].
    pub fn cost_ceiling(mut self, ceiling: f64) -> Self {
        self.planner.cost_ceiling = Some(ceiling);
        self
    }

    /// Replaces the search configuration (validated in
    /// [`EngineBuilder::build`]).
    pub fn config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the backend strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builds a `cols × rows` grid index over the dataset during
    /// [`EngineBuilder::build`].
    pub fn build_index(mut self, cols: usize, rows: usize) -> Self {
        self.index = IndexSpec::Build { cols, rows };
        self
    }

    /// Attaches a pre-built grid index.  Its statistics layout must match
    /// the engine's aggregator (checked in [`EngineBuilder::build`]).
    pub fn index(mut self, index: GridIndex) -> Self {
        self.index = IndexSpec::Attach(index);
        self
    }

    /// Validates the configuration, builds or checks the index, and
    /// assembles the engine.
    ///
    /// # Errors
    ///
    /// * [`AsrsError::Config`] for an invalid [`SearchConfig`] or index
    ///   granularity,
    /// * [`AsrsError::EmptyDataset`] when an index was requested for an
    ///   empty dataset,
    /// * [`AsrsError::IndexMismatch`] when an attached index was built for
    ///   an aggregator with a different statistics layout,
    /// * [`AsrsError::IndexRequired`] when [`Strategy::GiDs`] was selected
    ///   without an index.
    pub fn build(self) -> Result<AsrsEngine, AsrsError> {
        self.config.validate()?;
        if self.shards > 0 {
            return self.build_sharded();
        }
        let index = match self.index {
            IndexSpec::None => None,
            IndexSpec::Build { cols, rows } => Some(GridIndex::build(
                &self.dataset,
                &self.aggregator,
                cols,
                rows,
            )?),
            IndexSpec::Attach(index) => {
                if index.stats_dim() != self.aggregator.stats_dim() {
                    return Err(AsrsError::IndexMismatch {
                        index_dims: index.stats_dim(),
                        aggregator_dims: self.aggregator.stats_dim(),
                    });
                }
                Some(index)
            }
        };
        if self.strategy == Strategy::GiDs && index.is_none() {
            return Err(AsrsError::IndexRequired { strategy: "gi-ds" });
        }
        let upkeep = match &index {
            None => IndexUpkeep::None,
            Some(idx) => {
                let (cols, rows) = idx.granularity();
                IndexUpkeep::PerEngine { cols, rows }
            }
        };
        let statistics = EngineStatistics::capture(&self.dataset, index.as_ref());
        let cache =
            (self.cache_capacity > 0).then(|| Arc::new(QueryCache::new(self.cache_capacity)));
        Ok(AsrsEngine::from_core(EngineCore {
            generation: 0,
            dataset: Arc::new(self.dataset),
            aggregator: Arc::new(self.aggregator),
            config: self.config,
            strategy: self.strategy,
            index: index.map(Arc::new),
            upkeep,
            planner: self.planner,
            statistics,
            cache,
            policy: self.mutation_policy,
            shards: None,
        }))
    }

    /// The sharded sibling of [`EngineBuilder::build`]: partitions the
    /// dataset, builds one core (and index) per shard — in parallel when
    /// cores allow — and captures shard-count-*invariant* planner
    /// statistics so identical requests plan (and answer) identically for
    /// every shard count.
    fn build_sharded(self) -> Result<AsrsEngine, AsrsError> {
        use crate::planner::IndexStatistics;

        // The full core keeps an attached whole-dataset index (it is
        // shard-count independent, so it can serve statistics); a
        // *requested* index build happens per shard instead, with the
        // planner reading the whole-dataset index geometry virtually.
        let (index, upkeep, mut statistics) = match self.index {
            IndexSpec::None => (
                None,
                IndexUpkeep::None,
                EngineStatistics::capture(&self.dataset, None),
            ),
            IndexSpec::Build { cols, rows } => {
                let virtual_index = IndexStatistics::virtual_for(&self.dataset, cols, rows)?;
                let mut statistics = EngineStatistics::capture(&self.dataset, None);
                statistics.index = Some(virtual_index);
                (None, IndexUpkeep::PerShard { cols, rows }, statistics)
            }
            IndexSpec::Attach(index) => {
                if index.stats_dim() != self.aggregator.stats_dim() {
                    return Err(AsrsError::IndexMismatch {
                        index_dims: index.stats_dim(),
                        aggregator_dims: self.aggregator.stats_dim(),
                    });
                }
                let statistics = EngineStatistics::capture(&self.dataset, Some(&index));
                let (cols, rows) = index.granularity();
                (
                    Some(index),
                    IndexUpkeep::PerEngine { cols, rows },
                    statistics,
                )
            }
        };
        if self.strategy == Strategy::GiDs && statistics.index.is_none() {
            return Err(AsrsError::IndexRequired { strategy: "gi-ds" });
        }

        let aggregator = Arc::new(self.aggregator);
        let shard_set = crate::shard::build_shard_set(
            &self.dataset,
            &aggregator,
            &self.config,
            self.strategy,
            &self.planner,
            upkeep,
            self.shards,
            0,
            &self.mutation_policy,
        )?;
        statistics.shards = Some(shard_set.fan_out());

        let cache =
            (self.cache_capacity > 0).then(|| Arc::new(QueryCache::new(self.cache_capacity)));
        Ok(AsrsEngine::from_core(EngineCore {
            generation: 0,
            dataset: Arc::new(self.dataset),
            aggregator,
            config: self.config,
            strategy: self.strategy,
            index: index.map(Arc::new),
            upkeep,
            planner: self.planner,
            statistics,
            cache,
            policy: self.mutation_policy,
            shards: Some(shard_set),
        }))
    }

    /// Reassembles an engine from a persisted [`EngineState`] instead of
    /// building from the seed dataset — no partitioning, no index builds.
    ///
    /// The builder's *settings* (aggregator, configuration, strategy,
    /// planner, cache capacity, shard count, index granularity, mutation
    /// policy) still apply; its seed dataset is ignored in favour of
    /// `state`.  The restored engine is byte-identical in responses to the
    /// engine the state was exported from: datasets keep their object
    /// order, index tables are carried over verbatim, and planner
    /// statistics are recaptured by the same code paths
    /// [`EngineBuilder::build`] and the mutation publisher run.
    ///
    /// # Errors
    ///
    /// [`AsrsError::Persistence`] when `state` does not fit the builder's
    /// settings (shard-count or index-granularity mismatch, an index whose
    /// statistics layout disagrees with the aggregator, an attached-index
    /// builder), plus the validation errors of [`EngineBuilder::build`].
    pub fn build_restored(self, state: EngineState) -> Result<AsrsEngine, AsrsError> {
        use crate::planner::IndexStatistics;

        self.config.validate()?;
        if matches!(self.index, IndexSpec::Attach(_)) {
            return Err(AsrsError::Persistence {
                message: "cannot restore into a builder with an attached index; \
                          use build_index(cols, rows) matching the persisted granularity"
                    .to_string(),
            });
        }
        let restored_shards = state.shards.as_ref().map_or(0, Vec::len);
        if restored_shards != self.shards {
            return Err(AsrsError::Persistence {
                message: format!(
                    "persisted image has {} shard(s), builder requests {}",
                    restored_shards, self.shards
                ),
            });
        }
        let build_granularity = match self.index {
            IndexSpec::Build { cols, rows } => Some((cols, rows)),
            _ => None,
        };
        let check_index = |index: &GridIndex, what: &str| -> Result<(), AsrsError> {
            if index.stats_dim() != self.aggregator.stats_dim() {
                return Err(AsrsError::IndexMismatch {
                    index_dims: index.stats_dim(),
                    aggregator_dims: self.aggregator.stats_dim(),
                });
            }
            match build_granularity {
                Some(granularity) if index.granularity() == granularity => Ok(()),
                Some((cols, rows)) => Err(AsrsError::Persistence {
                    message: format!(
                        "persisted {} index is {}x{}, builder requests {}x{}",
                        what,
                        index.granularity().0,
                        index.granularity().1,
                        cols,
                        rows
                    ),
                }),
                None => Err(AsrsError::Persistence {
                    message: format!(
                        "persisted image carries a {} index, but the builder requests none",
                        what
                    ),
                }),
            }
        };
        if self.strategy == Strategy::GiDs && build_granularity.is_none() {
            return Err(AsrsError::IndexRequired { strategy: "gi-ds" });
        }

        if self.shards == 0 {
            if let Some(index) = state.index.as_deref() {
                check_index(index, "whole-dataset")?;
            } else if build_granularity.is_some() && !state.dataset.is_empty() {
                return Err(AsrsError::Persistence {
                    message: "builder requests an index, persisted image has none".to_string(),
                });
            }
            // Upkeep follows the builder's request, exactly as a mutated
            // engine keeps its granularity even while the index is dropped
            // on an emptied dataset.
            let upkeep = match build_granularity {
                Some((cols, rows)) => IndexUpkeep::PerEngine { cols, rows },
                None => IndexUpkeep::None,
            };
            let statistics = EngineStatistics::capture(&state.dataset, state.index.as_deref());
            let cache =
                (self.cache_capacity > 0).then(|| Arc::new(QueryCache::new(self.cache_capacity)));
            return Ok(AsrsEngine::from_core(EngineCore {
                generation: state.generation,
                dataset: state.dataset,
                aggregator: Arc::new(self.aggregator),
                config: self.config,
                strategy: self.strategy,
                index: state.index,
                upkeep,
                planner: self.planner,
                statistics,
                cache,
                policy: self.mutation_policy,
                shards: None,
            }));
        }

        // Sharded restore: rebuild the shard table from the persisted
        // regions, sub-datasets and per-shard indexes, mirroring
        // `build_shard_set`'s core assembly (and the mutation publisher's
        // statistics refresh) exactly.
        let upkeep = match build_granularity {
            Some((cols, rows)) => IndexUpkeep::PerShard { cols, rows },
            None => IndexUpkeep::None,
        };
        let mut statistics = EngineStatistics::capture(&state.dataset, None);
        if let Some((cols, rows)) = build_granularity {
            statistics.index = if state.dataset.is_empty() {
                None
            } else {
                Some(IndexStatistics::virtual_for(&state.dataset, cols, rows)?)
            };
        }
        let aggregator = Arc::new(self.aggregator);
        // lint:allow(the enclosing branch runs only when state.shards is Some; checked a few lines above)
        let shard_states = state.shards.expect("count checked above");
        let mut shards = Vec::with_capacity(shard_states.len());
        for shard in shard_states {
            if let Some(index) = shard.index.as_deref() {
                if index.stats_dim() != aggregator.stats_dim() {
                    return Err(AsrsError::IndexMismatch {
                        index_dims: index.stats_dim(),
                        aggregator_dims: aggregator.stats_dim(),
                    });
                }
                match build_granularity {
                    Some(granularity) if index.granularity() == granularity => {}
                    _ => {
                        return Err(AsrsError::Persistence {
                            message: "persisted shard index granularity disagrees with the builder"
                                .to_string(),
                        })
                    }
                }
            } else if build_granularity.is_some() && !shard.dataset.is_empty() {
                return Err(AsrsError::Persistence {
                    message: "builder requests per-shard indexes, a populated persisted shard \
                              has none"
                        .to_string(),
                });
            }
            let shard_statistics =
                EngineStatistics::capture(&shard.dataset, shard.index.as_deref());
            shards.push(crate::shard::EngineShard {
                region: shard.region,
                core: Arc::new(EngineCore {
                    generation: state.generation,
                    dataset: shard.dataset,
                    aggregator: Arc::clone(&aggregator),
                    config: self.config.clone(),
                    strategy: self.strategy,
                    index: shard.index,
                    upkeep: IndexUpkeep::None,
                    planner: self.planner.clone(),
                    statistics: shard_statistics,
                    cache: None,
                    policy: self.mutation_policy.clone(),
                    shards: None,
                }),
                requests: std::sync::atomic::AtomicU64::new(0),
            });
        }
        let shard_set = crate::shard::ShardSet { shards };
        statistics.shards = Some(shard_set.fan_out());
        let cache =
            (self.cache_capacity > 0).then(|| Arc::new(QueryCache::new(self.cache_capacity)));
        Ok(AsrsEngine::from_core(EngineCore {
            generation: state.generation,
            dataset: state.dataset,
            aggregator,
            config: self.config,
            strategy: self.strategy,
            index: None,
            upkeep,
            planner: self.planner,
            statistics,
            cache,
            policy: self.mutation_policy,
            shards: Some(shard_set),
        }))
    }
}

/// One immutable *generation* of an engine: dataset, aggregator, index,
/// configuration, planner and the statistics the planner decides from,
/// stamped with the generation number that produced it.
///
/// Queries run against whichever generation they snapshot at submission
/// ([`EngineShared::load`]); mutations assemble a successor core and swap
/// it in, so in-flight queries finish on their generation undisturbed —
/// the epoch-swap concurrency model.  The query-result cache is the one
/// component *shared across* generations: its keys are generation-stamped
/// ([`RequestKey::stamped`](crate::RequestKey::stamped)), which makes a
/// stale hit structurally impossible while superseded entries age out via
/// LRU.
#[derive(Debug)]
pub(crate) struct EngineCore {
    /// Generation number: 0 for a freshly built engine, +1 per applied
    /// mutation.
    pub(crate) generation: u64,
    pub(crate) dataset: Arc<Dataset>,
    pub(crate) aggregator: Arc<CompositeAggregator>,
    pub(crate) config: SearchConfig,
    pub(crate) strategy: Strategy,
    pub(crate) index: Option<Arc<GridIndex>>,
    /// What index maintenance this engine owes under mutation.
    pub(crate) upkeep: IndexUpkeep,
    pub(crate) planner: Planner,
    pub(crate) statistics: EngineStatistics,
    pub(crate) cache: Option<Arc<QueryCache>>,
    /// Thresholds governing incremental-vs-rebuild and re-partitioning.
    pub(crate) policy: MutationPolicy,
    /// Shard table of a sharded engine (see [`EngineBuilder::shards`] and
    /// the internal `shard` module); `None` on single engines.
    pub(crate) shards: Option<crate::shard::ShardSet>,
}

/// The shared state behind [`AsrsEngine`] and every
/// [`EngineHandle`](crate::EngineHandle): the current generation's core
/// behind an epoch-swap lock, plus the serialized mutation state.
///
/// Readers take the read lock only long enough to clone the inner [`Arc`]
/// (an `ArcSwap`-style load built from `std`), so query execution never
/// blocks on mutations; mutators serialize on [`EngineShared::mutator`]
/// and publish a fully assembled successor core with one write-lock swap.
#[derive(Debug)]
pub(crate) struct EngineShared {
    current: RwLock<Arc<EngineCore>>,
    pub(crate) mutator: Mutex<MutationState>,
    /// The group-commit queue (`engine.commit_queue`): mutations enqueue
    /// their commit group here before blocking on the mutator, and
    /// whichever caller wins the mutator drains *everything* pending into
    /// one published generation (see the `mutate` module docs).  Acquired
    /// either alone (to enqueue) or under the mutator (to drain/deposit),
    /// never across a blocking operation.
    pub(crate) commit_queue: Mutex<crate::mutate::CommitQueue>,
    /// Durability hook: when attached (see
    /// [`AsrsEngine::attach_durability`]), every mutation is handed to the
    /// sink *before* its generation is published — a failing sink aborts
    /// the mutation, so no acknowledged write can outrun its log record.
    pub(crate) durability: OnceLock<Arc<dyn DurabilitySink>>,
}

impl EngineShared {
    pub(crate) fn new(core: EngineCore) -> Self {
        let state = MutationState::for_core(&core);
        Self {
            current: RwLock::new(Arc::new(core)),
            mutator: Mutex::new(state),
            commit_queue: Mutex::new(crate::mutate::CommitQueue::default()),
            durability: OnceLock::new(),
        }
    }

    /// Snapshots the current generation.  Cheap: one uncontended read lock
    /// and one reference-count increment.
    pub(crate) fn load(&self) -> Arc<EngineCore> {
        // The epoch lock guards a single Arc pointer; neither the clone
        // nor the swap below can leave it half-written, so a poisoned
        // lock (a reader panicking elsewhere) is safe to recover.
        Arc::clone(
            &self
                .current
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Publishes a successor generation.  In-flight queries keep the
    /// generation they snapshotted.
    pub(crate) fn swap(&self, core: Arc<EngineCore>) {
        *self
            .current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = core;
    }
}

/// A write-ahead durability hook for the generational mutation path.
///
/// When a sink is attached ([`AsrsEngine::attach_durability`]), every
/// mutation calls [`DurabilitySink::log_mutation`] with the generation it
/// is about to publish and the mutation record, *before* the generation
/// becomes visible to queries.  A sink that returns an error aborts the
/// mutation — the caller sees the error, the engine stays on the previous
/// generation — so an acknowledged write is always on durable storage
/// first.  `asrs-persist` implements this trait with an fsync'd,
/// CRC-framed write-ahead log.
pub trait DurabilitySink: Send + Sync + std::fmt::Debug {
    /// Records one mutation about to be published as `generation`.
    ///
    /// # Errors
    ///
    /// Any error vetoes the mutation; implementations should return
    /// [`AsrsError::Persistence`].
    fn log_mutation(&self, generation: u64, mutation: &Mutation) -> Result<(), AsrsError>;

    /// Records a whole group-committed batch about to be published as
    /// `generation` — every mutation of the batch shares that one
    /// generation number.  Implementations should make the entire batch
    /// durable with **one** fsync; the default forwards frame by frame to
    /// [`DurabilitySink::log_mutation`], which is correct but syncs per
    /// frame.
    ///
    /// # Errors
    ///
    /// Any error vetoes the whole batch; implementations should return
    /// [`AsrsError::Persistence`].
    fn log_batch(&self, generation: u64, mutations: &[Mutation]) -> Result<(), AsrsError> {
        for mutation in mutations {
            self.log_mutation(generation, mutation)?;
        }
        Ok(())
    }
}

/// One shard of an exported engine image (see [`EngineState`]).
#[derive(Debug, Clone)]
pub struct ShardState {
    /// The partition region this shard owns.
    pub region: Rect,
    /// The shard's sub-dataset (objects in shard order).
    pub dataset: Arc<Dataset>,
    /// The shard's grid index, when the engine builds per-shard indexes.
    pub index: Option<Arc<GridIndex>>,
}

/// A point-in-time image of one engine generation, sufficient to
/// reassemble a byte-identical engine without re-indexing.
///
/// [`AsrsEngine::export_state`] captures it from the current generation's
/// immutable core — an `Arc` snapshot, so exporting never stalls queries
/// or mutations — and [`EngineBuilder::build_restored`] turns it back
/// into an engine.  The round trip preserves response bytes: the dataset
/// keeps its object order, indexes are carried table-for-table, planner
/// statistics are recaptured by the exact code path the original build
/// ran, and the restored engine resumes at [`EngineState::generation`] so
/// generation-stamped cache keys and WAL records stay aligned.
#[derive(Debug, Clone)]
pub struct EngineState {
    /// Generation the image was captured at.
    pub generation: u64,
    /// The full dataset, in insertion order.
    pub dataset: Arc<Dataset>,
    /// The whole-dataset grid index, if the engine maintains one.
    pub index: Option<Arc<GridIndex>>,
    /// Per-shard regions, sub-datasets and indexes of a sharded engine
    /// (`None` on single-core engines), in shard order.
    pub shards: Option<Vec<ShardState>>,
}

/// Captures an [`EngineState`] from the current generation (shared by
/// [`AsrsEngine::export_state`] and
/// [`EngineHandle::export_state`](crate::EngineHandle::export_state)).
pub(crate) fn export_state(shared: &EngineShared) -> EngineState {
    let core = shared.load();
    EngineState {
        generation: core.generation,
        dataset: Arc::clone(&core.dataset),
        index: core.index.clone(),
        shards: core.shards.as_ref().map(|set| {
            set.shards
                .iter()
                .map(|shard| ShardState {
                    region: shard.region,
                    dataset: Arc::clone(&shard.core.dataset),
                    index: shard.core.index.clone(),
                })
                .collect()
        }),
    }
}

impl EngineCore {
    /// Instantiates a concrete backend with an explicit configuration.
    fn backend_for(
        &self,
        backend: Backend,
        config: SearchConfig,
    ) -> Result<Box<dyn SearchAlgorithm + '_>, AsrsError> {
        Ok(match backend {
            Backend::DsSearch => Box::new(DsSearch::with_config(
                &self.dataset,
                &self.aggregator,
                config,
            )),
            Backend::GiDs => {
                let index = self
                    .index
                    .as_deref()
                    .ok_or(AsrsError::IndexRequired { strategy: "gi-ds" })?;
                Box::new(GiDsSearch::with_config(
                    &self.dataset,
                    &self.aggregator,
                    index,
                    config,
                ))
            }
            Backend::Naive => Box::new(NaiveSearch::with_config(
                &self.dataset,
                &self.aggregator,
                config,
            )),
        })
    }

    pub(crate) fn plan(&self, request: &QueryRequest) -> Result<ExecutionPlan, AsrsError> {
        self.planner.plan(&self.statistics, self.strategy, request)
    }

    /// Plans and executes `request`, consulting the query-result cache
    /// first when one is attached.  Only successful responses are cached;
    /// a hit returns the stored response verbatim (byte-identical to the
    /// cold computation), so callers cannot distinguish the two.
    ///
    /// Cache keys are stamped with this core's generation, so a response
    /// computed against one generation can never answer a request running
    /// against another — the generational cache-invalidation guarantee.
    pub(crate) fn submit(&self, request: &QueryRequest) -> Result<QueryResponse, AsrsError> {
        let Some(cache) = &self.cache else {
            return self.execute(request);
        };
        let key = request.cache_key().stamped(self.generation);
        if let Some(hit) = cache.get(&key) {
            return Ok(hit);
        }
        // Single-flight: concurrent identical cold lookups share one
        // computation; the cache remembers the request so a later publish
        // can prove the entry unchanged and carry it across generations.
        cache.compute_coalesced(key, request, || self.execute(request))
    }

    /// Counters of the attached query-result cache, if any.
    pub(crate) fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_deref().map(QueryCache::stats)
    }

    pub(crate) fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, AsrsError> {
        let plan = self.plan(request)?;
        plan.admit()?;
        if self.shards.is_some() {
            return self.execute_sharded(request, &plan);
        }
        let budget = plan
            .budget_ms
            .map(|ms| Budget::new(Duration::from_millis(ms)));
        let backend = plan.backend;
        let outcome = match request.operation() {
            QueryRequest::Similar { query } => {
                QueryOutcome::Best(self.run_similar(backend, query, None, budget)?)
            }
            QueryRequest::Approximate { query, delta } => {
                QueryOutcome::Best(self.run_similar(backend, query, Some(*delta), budget)?)
            }
            QueryRequest::TopK { query, k } => {
                QueryOutcome::Ranked(self.run_top_k(backend, query, *k, budget)?)
            }
            QueryRequest::Batch { queries } => QueryOutcome::Batch(all_or_first_error(
                self.run_batch(backend, queries, budget)?,
            )?),
            QueryRequest::MaxRs { size } => {
                QueryOutcome::MaxRs(self.run_max_rs(*size, Selection::All, budget)?)
            }
            QueryRequest::MaxRsSelective { size, selection } => {
                QueryOutcome::MaxRs(self.run_max_rs(*size, selection.clone(), budget)?)
            }
            QueryRequest::Configured { .. } => {
                // lint:allow(operation() strips every Configured envelope before dispatch; this arm is statically dead)
                unreachable!("operation() peels Configured envelopes")
            }
        };
        Ok(QueryResponse::from_outcome(backend, outcome))
    }

    /// Plans a legacy per-operation call without constructing an owned
    /// [`QueryRequest`], so the shims can borrow their queries.
    fn plan_legacy(
        &self,
        operation: &'static str,
        size: Option<RegionSize>,
    ) -> Result<ExecutionPlan, AsrsError> {
        let is_max_rs = operation == "max-rs" || operation == "max-rs-selective";
        self.planner.plan_parts(
            &self.statistics,
            self.strategy,
            operation,
            size,
            is_max_rs,
            None,
            None,
        )
    }

    /// Validates and runs a single similar-region search, optionally with
    /// an approximation override (`delta`).
    fn run_similar(
        &self,
        backend: Backend,
        query: &AsrsQuery,
        delta: Option<f64>,
        budget: Option<Budget>,
    ) -> Result<SearchResult, AsrsError> {
        if self.shards.is_some() {
            // The scatter executor answers exactly (δ included in that
            // guarantee) whatever backend the plan reports; δ is still
            // validated so malformed requests fail like anywhere else.
            if let Some(delta) = delta {
                self.config.clone().with_delta(delta)?;
            }
            let _ = backend;
            return self.sharded_similar(query, budget);
        }
        query.validate(&self.aggregator)?;
        let config = match delta {
            Some(delta) => self.config.clone().with_delta(delta)?,
            None => self.config.clone(),
        };
        self.backend_for(backend, config)?
            .search_within(query, budget)
    }

    /// Validates and runs a single top-k search.
    fn run_top_k(
        &self,
        backend: Backend,
        query: &AsrsQuery,
        k: usize,
        budget: Option<Budget>,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        if self.shards.is_some() {
            let _ = backend;
            return self.sharded_top_k(query, k, budget);
        }
        query.validate(&self.aggregator)?;
        self.backend_for(backend, self.config.clone())?
            .search_top_k_within(query, k, budget)
    }

    /// Plans and answers a batch with per-query results (the fallible
    /// sibling of `run_batch` used by
    /// [`AsrsEngine::search_batch_results`]).
    pub(crate) fn batch_results(
        &self,
        queries: &[AsrsQuery],
    ) -> Result<Vec<Result<SearchResult, AsrsError>>, AsrsError> {
        let size = crate::request::batch_planning_size(queries);
        let plan = self.plan_legacy("batch", size)?;
        plan.admit()?;
        if self.shards.is_some() {
            return self.sharded_batch_results(queries, None);
        }
        self.run_batch(plan.backend, queries, None)
    }

    /// Answers every query of a batch on the planned backend, fanning out
    /// over `std::thread` workers (one per available core, at most one per
    /// query), and returns one `Result` per query in input order.
    ///
    /// Results come back in input order with deterministic tie-breaking
    /// regardless of thread scheduling: each query owns a fixed result
    /// slot, workers steal query *indices* (never reorder slots), and each
    /// query is solved by exactly one worker running the deterministic
    /// sequential search (equal-distance ties inside a search are broken
    /// by anchor, see `BestSet`).  All queries are validated up front, so
    /// a malformed query fails the batch (the outer `Result`) before any
    /// search runs.
    ///
    /// A panic inside a search is caught at the slot boundary and recorded
    /// as [`AsrsError::Internal`] for that query only — a serving engine
    /// must outlive a single pathological query, so worker panics must
    /// never abort the process or poison sibling slots (they used to do
    /// both via `handle.join().expect(..)`).
    fn run_batch(
        &self,
        backend: Backend,
        queries: &[AsrsQuery],
        budget: Option<Budget>,
    ) -> Result<Vec<Result<SearchResult, AsrsError>>, AsrsError> {
        for query in queries {
            query.validate(&self.aggregator)?;
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(queries.len());
        if workers <= 1 {
            let solver = self.backend_for(backend, self.config.clone())?;
            return Ok(queries
                .iter()
                .map(|q| solve_slot(&*solver, q, budget))
                .collect());
        }
        // Backend construction is deterministic, so validate it once up
        // front: a construction failure is a whole-batch error (the outer
        // `Result`) on every path, not an outer error on one core count
        // and per-slot errors on another.
        drop(self.backend_for(backend, self.config.clone())?);
        // Workers steal query indices from a shared counter; each worker
        // builds its own backend (they are cheap: borrows plus a config
        // clone) and writes results into its query's slot, keeping order.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<Result<SearchResult, AsrsError>>>> = (0..queries
            .len())
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        let mut worker_failure: Option<AsrsError> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                let slots = &slots;
                handles.push(scope.spawn(move || -> Result<(), AsrsError> {
                    let solver = self.backend_for(backend, self.config.clone())?;
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= queries.len() {
                            return Ok(());
                        }
                        let result = solve_slot(&*solver, &queries[i], budget);
                        // A slot holds one Option; overwriting it is safe
                        // even if a sibling worker poisoned the mutex.
                        *slots[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                    }
                }));
            }
            for handle in handles {
                match handle.join() {
                    Ok(Ok(())) => {}
                    // Backend construction failed; every worker fails the
                    // same way, so remember the first error.
                    Ok(Err(e)) => {
                        worker_failure.get_or_insert(e);
                    }
                    // A panic escaped the per-slot catch (defensive: the
                    // worker loop itself does not panic).  Do not abort the
                    // process; unfilled slots are reported below.
                    Err(payload) => {
                        worker_failure.get_or_insert(AsrsError::Internal {
                            message: format!(
                                "batch worker died outside a query slot: {}",
                                panic_message(payload.as_ref())
                            ),
                        });
                    }
                }
            }
        });
        Ok(slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        Err(worker_failure.clone().unwrap_or(AsrsError::Internal {
                            message: "batch worker exited before filling its slot".to_string(),
                        }))
                    })
            })
            .collect())
    }

    /// Executes a MaxRS request.  MaxRS promises the true maximum, so the
    /// engine's approximation parameter δ is ignored (the search always
    /// runs exact); every other configuration knob is inherited.
    fn run_max_rs(
        &self,
        size: RegionSize,
        selection: Selection,
        budget: Option<Budget>,
    ) -> Result<MaxRsResult, AsrsError> {
        if self.shards.is_some() {
            return self.sharded_max_rs(size, selection, budget);
        }
        let config = SearchConfig {
            delta: 0.0,
            ..self.config.clone()
        };
        MaxRsSearch::new(&self.dataset, size)
            .with_selection(selection)
            .with_config(config)
            .search_within(budget)
    }
}

/// Solves one batch slot, converting a panic into a per-slot
/// [`AsrsError::Internal`] so neither the process nor the sibling slots
/// die with the query that triggered it.
fn solve_slot(
    solver: &dyn SearchAlgorithm,
    query: &AsrsQuery,
    budget: Option<Budget>,
) -> Result<SearchResult, AsrsError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        #[cfg(test)]
        test_hooks::maybe_panic(query);
        solver.search_within(query, budget)
    }))
    .unwrap_or_else(|payload| {
        Err(AsrsError::Internal {
            message: format!(
                "search worker panicked: {}",
                panic_message(payload.as_ref())
            ),
        })
    })
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "non-string panic payload"
    }
}

/// Collapses per-query results into the all-success vector the
/// [`QueryOutcome::Batch`] shape carries, propagating the first error
/// otherwise (callers who need the completed siblings use
/// [`AsrsEngine::search_batch_results`]).
fn all_or_first_error(
    results: Vec<Result<SearchResult, AsrsError>>,
) -> Result<Vec<SearchResult>, AsrsError> {
    results.into_iter().collect()
}

#[cfg(test)]
pub(crate) mod test_hooks {
    //! Deterministic failure injection for the batch-panic regression
    //! tests: no global state, so parallel tests cannot interfere.

    use crate::query::AsrsQuery;

    /// Sentinel width that makes a batch slot panic.  Avogadro's number —
    /// a value no legitimate test query uses.
    pub(crate) const PANIC_INJECTION_WIDTH: f64 = 6.022_140_76e23;

    pub(crate) fn maybe_panic(query: &AsrsQuery) {
        if query.size.width == PANIC_INJECTION_WIDTH {
            panic!("injected batch panic (test hook)");
        }
    }
}

/// The unified ASRS query engine (see the [crate documentation](crate)).
///
/// The engine is a thin facade over a *generational* shared state: queries
/// snapshot the current generation's immutable core and run on it to
/// completion, while mutations ([`AsrsEngine::append`],
/// [`AsrsEngine::remove`], TTL expiry) assemble a successor core — with
/// incrementally maintained indexes — and swap it in atomically.
/// [`AsrsEngine::handle`] hands out cheap `Clone + Send + Sync`
/// [`EngineHandle`](crate::EngineHandle)s for concurrent submission *and*
/// mutation.
#[derive(Debug)]
pub struct AsrsEngine {
    pub(crate) shared: Arc<EngineShared>,
}

impl AsrsEngine {
    /// Starts building an engine over `dataset` with `aggregator`.
    pub fn builder(dataset: Dataset, aggregator: CompositeAggregator) -> EngineBuilder {
        EngineBuilder::new(dataset, aggregator)
    }

    pub(crate) fn from_core(core: EngineCore) -> Self {
        Self {
            shared: Arc::new(EngineShared::new(core)),
        }
    }

    /// Snapshots the current generation's core.
    pub(crate) fn core(&self) -> Arc<EngineCore> {
        self.shared.load()
    }

    /// A cheap, cloneable, thread-safe handle submitting to this engine
    /// (see [`EngineHandle`](crate::EngineHandle)).
    pub fn handle(&self) -> crate::EngineHandle {
        crate::EngineHandle::new(Arc::clone(&self.shared))
    }

    /// The current generation number: 0 for a freshly built engine,
    /// incremented by every applied mutation.
    pub fn generation(&self) -> u64 {
        self.core().generation
    }

    /// Captures a point-in-time [`EngineState`] of the current generation.
    ///
    /// The export is a handful of `Arc` clones over the generation's
    /// immutable core — it never stalls queries or mutations, which is
    /// what lets `asrs-persist` snapshot a serving engine in the
    /// background.  Mutations applied after the call are not part of the
    /// image (they are the WAL's job).
    pub fn export_state(&self) -> EngineState {
        export_state(&self.shared)
    }

    /// Attaches the write-ahead [`DurabilitySink`] every subsequent
    /// mutation must go through (see the trait documentation for the
    /// ordering guarantee).  Attach *after* replaying any recovery log —
    /// replayed mutations must not be re-appended to it.
    ///
    /// # Errors
    ///
    /// [`AsrsError::Persistence`] when a sink is already attached; the
    /// sink is installed for the lifetime of the engine.
    pub fn attach_durability(&self, sink: Arc<dyn DurabilitySink>) -> Result<(), AsrsError> {
        self.shared
            .durability
            .set(sink)
            .map_err(|_| AsrsError::Persistence {
                message: "a durability sink is already attached to this engine".to_string(),
            })
    }

    /// The current generation's dataset.  The returned [`Arc`] pins that
    /// generation's snapshot: later mutations produce new datasets and do
    /// not affect it.
    pub fn dataset(&self) -> Arc<Dataset> {
        Arc::clone(&self.core().dataset)
    }

    /// The composite aggregator (shared by every generation).
    pub fn aggregator(&self) -> Arc<CompositeAggregator> {
        Arc::clone(&self.core().aggregator)
    }

    /// The current generation's grid index, if any.
    pub fn index(&self) -> Option<Arc<GridIndex>> {
        self.core().index.clone()
    }

    /// The search configuration.
    pub fn config(&self) -> SearchConfig {
        self.core().config.clone()
    }

    /// The backend selection policy.
    pub fn strategy(&self) -> Strategy {
        self.core().strategy
    }

    /// The current generation's dataset/index statistics (refreshed on
    /// every mutation, so the planner always decides from live numbers).
    pub fn statistics(&self) -> EngineStatistics {
        self.core().statistics.clone()
    }

    /// Appends `object` to the dataset, producing a new generation.  See
    /// [`mutate`](crate::MutationReceipt) for what the receipt reports.
    ///
    /// # Errors
    ///
    /// * [`AsrsError::Schema`] when the object violates the schema,
    /// * [`AsrsError::DuplicateObjectId`] when the id is already taken.
    pub fn append(&self, object: SpatialObject) -> Result<MutationReceipt, AsrsError> {
        crate::mutate::append(&self.shared, object, None)
    }

    /// Like [`AsrsEngine::append`], but the object expires `ttl` after
    /// insertion: the next [`AsrsEngine::sweep_expired`] at or past the
    /// deadline removes it.
    pub fn append_with_ttl(
        &self,
        object: SpatialObject,
        ttl: Duration,
    ) -> Result<MutationReceipt, AsrsError> {
        crate::mutate::append(&self.shared, object, Some(ttl))
    }

    /// Removes the object with id `id`, producing a new generation.
    ///
    /// # Errors
    ///
    /// [`AsrsError::UnknownObjectId`] when no object carries the id.
    pub fn remove(&self, id: u64) -> Result<MutationReceipt, AsrsError> {
        crate::mutate::remove(&self.shared, id)
    }

    /// Appends a whole payload of objects (each with an optional TTL) as
    /// **one atomic commit**: one published generation, one WAL fsync,
    /// one receipt per object — all sharing the batch's generation.
    ///
    /// # Errors
    ///
    /// Validation is all-or-nothing: a duplicate id
    /// ([`AsrsError::DuplicateObjectId`], duplicates *within* the payload
    /// included) or schema violation ([`AsrsError::Schema`]) anywhere in
    /// the payload rejects the entire payload without touching the
    /// dataset.
    pub fn append_batch(
        &self,
        items: Vec<(SpatialObject, Option<Duration>)>,
    ) -> Result<Vec<MutationReceipt>, AsrsError> {
        crate::mutate::append_batch(&self.shared, items)
    }

    /// Applies a replayed WAL batch — every mutation of one logged
    /// generation — as one atomic commit producing exactly one generation.
    /// Used by `asrs-persist` during boot replay; `Expire` records apply
    /// as plain removals.
    ///
    /// # Errors
    ///
    /// Same as [`AsrsEngine::append_batch`] /
    /// [`AsrsEngine::remove`]: the whole batch is rejected when any record
    /// fails validation.
    pub fn apply_mutations(
        &self,
        mutations: &[Mutation],
    ) -> Result<Vec<MutationReceipt>, AsrsError> {
        crate::mutate::apply_batch(&self.shared, mutations)
    }

    /// Removes every TTL'd object whose deadline has passed, coalescing
    /// the whole sweep into **one** new generation (and one WAL fsync);
    /// returns one receipt per expired object (empty when nothing was
    /// due).
    pub fn sweep_expired(&self) -> Result<Vec<MutationReceipt>, AsrsError> {
        crate::mutate::sweep_expired(&self.shared)
    }

    /// A snapshot of the bounded mutation log (recent entries plus
    /// lifetime counters).
    pub fn mutation_log(&self) -> MutationLog {
        crate::mutate::log_snapshot(&self.shared)
    }

    /// Mutation counters for observability (served by `/metrics`).
    pub fn mutation_stats(&self) -> MutationStats {
        crate::mutate::stats_snapshot(&self.shared)
    }

    /// Counters of the query-result cache, or `None` when the engine was
    /// built without one (see [`EngineBuilder::cache_capacity`]).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.core().cache_stats()
    }

    /// Runs the deep invariant audit over the current generation: index
    /// suffix-table and rebuild identity, dataset bounding box, shard
    /// partition cover/disjointness/ownership, generation monotonicity,
    /// planner-statistics recapture and cache-key generation stamps (see
    /// the [`AuditReport`](crate::AuditReport) for the outcome shape).
    ///
    /// Mutations are paused while the audit reads (queries are not), and
    /// debug builds additionally run the same audit after every mutation.
    /// The audit rescans the dataset and rebuilds indexes for comparison,
    /// so it costs a mutation's worth of work — an observability surface,
    /// not a query path.
    pub fn audit(&self) -> crate::AuditReport {
        crate::audit::audit_shared(&self.shared)
    }

    /// Number of shards of a sharded engine, `0` for a single engine (see
    /// [`EngineBuilder::shards`]).
    pub fn shard_count(&self) -> usize {
        self.core().shards.as_ref().map_or(0, |s| s.len())
    }

    /// Per-shard scattered-execution counts, in shard order (`None` for a
    /// single engine).  Surfaced by the server's `/metrics`.
    pub fn shard_request_counts(&self) -> Option<Vec<u64>> {
        self.core().shards.as_ref().map(|s| s.request_counts())
    }

    /// Per-shard planner statistics, in shard order (`None` for a single
    /// engine).
    pub fn shard_statistics(&self) -> Option<Vec<EngineStatistics>> {
        self.core().shards.as_ref().map(|s| s.statistics())
    }

    /// The spatial partition regions of a sharded engine, in shard order
    /// (`None` for a single engine).
    pub fn shard_regions(&self) -> Option<Vec<Rect>> {
        self.core().shards.as_ref().map(|s| s.regions())
    }

    /// The name of the backend the engine's strategy resolves to before
    /// per-request planning: the explicit strategy when one was set,
    /// otherwise GI-DS with an index attached and DS-Search without.
    /// Individual requests may still plan differently — see
    /// [`AsrsEngine::plan`].
    pub fn backend_name(&self) -> &'static str {
        let core = self.core();
        core.strategy.resolved_name(core.index.is_some())
    }

    /// Builds a query-by-example from a real region of the engine's
    /// dataset (see [`AsrsQuery::from_example_region`]).
    pub fn query_from_example(&self, example: &Rect) -> Result<AsrsQuery, AsrsError> {
        let core = self.core();
        Ok(AsrsQuery::from_example_region(
            &core.dataset,
            &core.aggregator,
            example,
        )?)
    }

    /// Plans `request` without executing it: the returned
    /// [`ExecutionPlan`] names the backend the cost model chose and
    /// [`ExecutionPlan::explain`] justifies it.
    ///
    /// # Errors
    ///
    /// See [`Planner::plan`].
    pub fn plan(&self, request: &QueryRequest) -> Result<ExecutionPlan, AsrsError> {
        self.core().plan(request)
    }

    /// Plans and executes a declarative [`QueryRequest`] — the engine's
    /// primary entry point.  The response bundles the results, the backend
    /// the planner chose and the merged [`SearchStats`](crate::SearchStats).
    ///
    /// The request runs against the generation current at submission; a
    /// concurrent mutation neither blocks it nor changes its answer.
    ///
    /// # Errors
    ///
    /// * planning errors — see [`Planner::plan`],
    /// * [`AsrsError::Query`] for a malformed or mismatching query,
    /// * [`AsrsError::DeadlineExceeded`] when the request's budget ran out,
    /// * [`AsrsError::CostCeilingExceeded`] when the engine enforces an
    ///   admission ceiling the estimate breaches,
    /// * the operation-specific errors of the legacy methods
    ///   ([`AsrsError::InvalidTopK`], [`AsrsError::InvalidRegionSize`], …).
    pub fn submit(&self, request: &QueryRequest) -> Result<QueryResponse, AsrsError> {
        self.core().submit(request)
    }

    /// Solves the ASRS problem with the engine's strategy.
    ///
    /// Equivalent to [`AsrsEngine::submit`] with [`QueryRequest::Similar`]
    /// (same planning and execution pipeline); prefer `submit`, which also
    /// reports the chosen backend and statistics.
    ///
    /// # Errors
    ///
    /// [`AsrsError::Query`] for a malformed or mismatching query.
    pub fn search(&self, query: &AsrsQuery) -> Result<SearchResult, AsrsError> {
        let core = self.core();
        let plan = core.plan_legacy("similar", Some(query.size))?;
        plan.admit()?;
        core.run_similar(plan.backend, query, None, None)
    }

    /// Solves the ASRS problem with an explicit, possibly external,
    /// backend.  The engine still validates the query at its boundary.
    /// This path bypasses the planner by design.
    pub fn search_with(
        &self,
        backend: &dyn SearchAlgorithm,
        query: &AsrsQuery,
    ) -> Result<SearchResult, AsrsError> {
        query.validate(&self.core().aggregator)?;
        backend.search(query)
    }

    /// Returns up to `k` best candidate regions with pairwise distinct
    /// anchors, best first; distances are non-decreasing in rank.
    ///
    /// Equivalent to [`AsrsEngine::submit`] with [`QueryRequest::TopK`]
    /// (same planning and execution pipeline); prefer `submit`.
    ///
    /// # Errors
    ///
    /// [`AsrsError::InvalidTopK`] when `k` is zero.
    pub fn search_top_k(
        &self,
        query: &AsrsQuery,
        k: usize,
    ) -> Result<Vec<SearchResult>, AsrsError> {
        let core = self.core();
        let plan = core.plan_legacy("top-k", Some(query.size))?;
        plan.admit()?;
        core.run_top_k(plan.backend, query, k, None)
    }

    /// Answers every query in parallel; results are returned in query
    /// order (see `EngineCore::run_batch` for the determinism guarantees).
    /// Fails with the first per-query error when any query fails; use
    /// [`AsrsEngine::search_batch_results`] to keep the completed siblings.
    ///
    /// Equivalent to [`AsrsEngine::submit`] with [`QueryRequest::Batch`]
    /// (same planning and execution pipeline); prefer `submit`, which
    /// additionally reports the merged statistics of the whole batch.
    pub fn search_batch(&self, queries: &[AsrsQuery]) -> Result<Vec<SearchResult>, AsrsError> {
        all_or_first_error(self.core().batch_results(queries)?)
    }

    /// Answers every query in parallel, returning one `Result` per query
    /// in input order, so one failing (or even panicking) query cannot
    /// discard its siblings' answers — the per-query contract a server
    /// batch endpoint needs.
    ///
    /// The outer `Result` covers whole-batch failures: planning errors and
    /// an invalid query anywhere in the batch (validation is all-or-nothing
    /// and runs before any search).  A panic inside one query's search is
    /// converted to [`AsrsError::Internal`] in that query's slot.
    pub fn search_batch_results(
        &self,
        queries: &[AsrsQuery],
    ) -> Result<Vec<Result<SearchResult, AsrsError>>, AsrsError> {
        self.core().batch_results(queries)
    }

    /// Solves the MaxRS problem (the `a × b` region enclosing the maximum
    /// number of objects, Section 7.5) through the facade, using the
    /// engine's configuration.
    ///
    /// Equivalent to [`AsrsEngine::submit`] with [`QueryRequest::MaxRs`];
    /// prefer `submit`.
    pub fn max_rs(&self, size: RegionSize) -> Result<MaxRsResult, AsrsError> {
        self.max_rs_selective(size, Selection::All)
    }

    /// The class-constrained MaxRS variant: counts only objects accepted
    /// by `selection`.
    ///
    /// MaxRS promises the true maximum, so the engine's approximation
    /// parameter δ is ignored here (the search always runs exact); every
    /// other configuration knob is inherited.
    ///
    /// Equivalent to [`AsrsEngine::submit`] with
    /// [`QueryRequest::MaxRsSelective`]; prefer `submit`.
    pub fn max_rs_selective(
        &self,
        size: RegionSize,
        selection: Selection,
    ) -> Result<MaxRsResult, AsrsError> {
        let core = self.core();
        // The legacy shim enforces the same admission ceiling the submit
        // path does — an extent-spanning MaxRS must not dodge the gate by
        // arriving through the old method name.
        core.plan_legacy("max-rs", Some(size))?.admit()?;
        core.run_max_rs(size, selection, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ConfigError;
    use crate::query::QueryError;
    use asrs_aggregator::{FeatureVector, Weights};
    use asrs_data::gen::UniformGenerator;

    fn setup(n: usize, seed: u64) -> (Dataset, CompositeAggregator) {
        let ds = UniformGenerator::default().generate(n, seed);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        (ds, agg)
    }

    fn query() -> AsrsQuery {
        AsrsQuery::new(
            RegionSize::new(12.0, 10.0),
            FeatureVector::new(vec![2.0, 1.0, 1.0, 2.0]),
            Weights::uniform(4),
        )
    }

    #[test]
    fn auto_strategy_prefers_the_index() {
        let (ds, agg) = setup(200, 5);
        let plain = AsrsEngine::builder(ds.clone(), agg.clone())
            .build()
            .unwrap();
        assert_eq!(plain.backend_name(), "ds-search");
        assert!(plain.index().is_none());

        let indexed = AsrsEngine::builder(ds, agg)
            .build_index(16, 16)
            .build()
            .unwrap();
        assert_eq!(indexed.backend_name(), "gi-ds");
        assert!(indexed.index().is_some());

        let q = query();
        let a = plain.search(&q).unwrap();
        let b = indexed.search(&q).unwrap();
        assert!((a.distance - b.distance).abs() < 1e-9);
    }

    #[test]
    fn gi_ds_without_index_fails_at_build_time() {
        let (ds, agg) = setup(50, 1);
        let err = AsrsEngine::builder(ds, agg)
            .strategy(Strategy::GiDs)
            .build()
            .unwrap_err();
        assert_eq!(err, AsrsError::IndexRequired { strategy: "gi-ds" });
    }

    #[test]
    fn invalid_config_fails_at_build_time() {
        let (ds, agg) = setup(50, 1);
        let config = SearchConfig {
            delta: -1.0,
            ..SearchConfig::default()
        };
        let err = AsrsEngine::builder(ds, agg)
            .config(config)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            AsrsError::Config(ConfigError::InvalidDelta { .. })
        ));
    }

    #[test]
    fn mismatched_index_is_rejected() {
        let (ds, agg) = setup(80, 3);
        // An index built for a different aggregator (count: 1 stats dim,
        // distribution over 4 categories: 4 stats dims).
        let other = CompositeAggregator::builder(ds.schema())
            .count(Selection::All)
            .build()
            .unwrap();
        let foreign = GridIndex::build(&ds, &other, 8, 8).unwrap();
        let err = AsrsEngine::builder(ds, agg)
            .index(foreign)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            AsrsError::IndexMismatch {
                index_dims: 1,
                aggregator_dims: 4
            }
        ));
    }

    #[test]
    fn index_on_empty_dataset_is_an_error() {
        let ds = Dataset::new_unchecked(asrs_data::Schema::empty(), vec![]);
        let agg = CompositeAggregator::builder(ds.schema())
            .count(Selection::All)
            .build()
            .unwrap();
        let err = AsrsEngine::builder(ds, agg)
            .build_index(8, 8)
            .build()
            .unwrap_err();
        assert_eq!(err, AsrsError::EmptyDataset);
    }

    #[test]
    fn queries_are_validated_at_the_boundary() {
        let (ds, agg) = setup(60, 2);
        let engine = AsrsEngine::builder(ds, agg).build().unwrap();
        let bad_dim = AsrsQuery::new(
            RegionSize::new(5.0, 5.0),
            FeatureVector::new(vec![1.0]),
            Weights::uniform(1),
        );
        assert!(matches!(
            engine.search(&bad_dim),
            Err(AsrsError::Query(QueryError::TargetDimensionMismatch { .. }))
        ));
        let bad_size = AsrsQuery::new(
            RegionSize::new(-3.0, 5.0),
            FeatureVector::new(vec![1.0, 1.0, 1.0, 1.0]),
            Weights::uniform(4),
        );
        assert!(matches!(
            engine.search(&bad_size),
            Err(AsrsError::Query(QueryError::InvalidSize { .. }))
        ));
        // Batch validation is all-or-nothing.
        assert!(engine.search_batch(&[query(), bad_dim]).is_err());
    }

    #[test]
    fn search_batch_matches_sequential_searches() {
        let (ds, agg) = setup(300, 11);
        let engine = AsrsEngine::builder(ds, agg)
            .build_index(24, 24)
            .build()
            .unwrap();
        let queries: Vec<AsrsQuery> = (1..=6)
            .map(|i| {
                AsrsQuery::new(
                    RegionSize::new(4.0 + i as f64, 6.0),
                    FeatureVector::new(vec![i as f64, 1.0, 0.0, 2.0]),
                    Weights::uniform(4),
                )
            })
            .collect();
        let batch = engine.search_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, r) in queries.iter().zip(&batch) {
            let single = engine.search(q).unwrap();
            assert!(
                (single.distance - r.distance).abs() < 1e-9,
                "batch result must match sequential result"
            );
        }
        assert!(engine.search_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn max_rs_routes_through_the_facade() {
        let (ds, agg) = setup(150, 7);
        let engine = AsrsEngine::builder(ds, agg).build().unwrap();
        let result = engine.max_rs(RegionSize::new(20.0, 20.0)).unwrap();
        assert!(result.count >= 1);
        assert_eq!(
            engine.dataset().count_strictly_in(&result.region),
            result.count
        );
        let constrained = engine
            .max_rs_selective(RegionSize::new(20.0, 20.0), Selection::cat_equals(0, 0))
            .unwrap();
        assert!(constrained.count <= result.count);
        assert!(matches!(
            engine.max_rs(RegionSize::new(0.0, 1.0)),
            Err(AsrsError::InvalidRegionSize { .. })
        ));
    }

    #[test]
    fn max_rs_stays_exact_under_an_approximate_engine_config() {
        let (ds, agg) = setup(150, 7);
        let exact_engine = AsrsEngine::builder(ds.clone(), agg.clone())
            .build()
            .unwrap();
        let approx_engine = AsrsEngine::builder(ds, agg)
            .config(SearchConfig::new().with_delta(0.4).unwrap())
            .build()
            .unwrap();
        let size = RegionSize::new(20.0, 20.0);
        let exact = exact_engine.max_rs(size).unwrap();
        let under_delta = approx_engine.max_rs(size).unwrap();
        assert_eq!(
            exact.count, under_delta.count,
            "MaxRS must ignore the engine's delta and return the true maximum"
        );
    }

    #[test]
    fn external_backends_plug_in_through_search_with() {
        let (ds, agg) = setup(60, 13);
        let engine = AsrsEngine::builder(ds, agg).build().unwrap();
        let (ds, agg) = (engine.dataset(), engine.aggregator());
        let naive = NaiveSearch::new(&ds, &agg);
        let q = query();
        let via_trait = engine.search_with(&naive, &q).unwrap();
        let direct = engine.search(&q).unwrap();
        assert!((via_trait.distance - direct.distance).abs() < 1e-9);
        assert_eq!(SearchAlgorithm::name(&naive), "naive");
    }

    #[test]
    fn submit_reports_backend_and_stats() {
        let (ds, agg) = setup(300, 19);
        let engine = AsrsEngine::builder(ds, agg)
            .build_index(16, 16)
            .build()
            .unwrap();
        let response = engine.submit(&QueryRequest::similar(query())).unwrap();
        assert_eq!(response.backend, Backend::GiDs);
        assert!(response.stats.spaces_processed >= 1);
        assert!(response.best().is_some());
    }

    #[test]
    fn an_exhausted_budget_aborts_with_deadline_exceeded() {
        let (ds, agg) = setup(800, 3);
        let engine = AsrsEngine::builder(ds, agg).build().unwrap();
        let err = engine
            .submit(&QueryRequest::similar(query()).with_budget_ms(0))
            .unwrap_err();
        assert_eq!(
            err,
            AsrsError::DeadlineExceeded {
                budget: std::time::Duration::ZERO
            }
        );
        // A generous budget succeeds and still reports normally.
        let ok = engine
            .submit(&QueryRequest::similar(query()).with_budget_ms(60_000))
            .unwrap();
        assert!(ok.best().unwrap().distance.is_finite());
    }

    #[test]
    fn batch_results_keep_input_order_deterministically() {
        // Regression test for the batch ordering guarantee: identical
        // requests must produce byte-identical result sequences no matter
        // how the worker threads get scheduled, and slot i must answer
        // query i.
        let (ds, agg) = setup(400, 29);
        let engine = AsrsEngine::builder(ds, agg)
            .build_index(24, 24)
            .build()
            .unwrap();
        // Queries with recognisably different sizes so a misordered slot
        // would be caught by the width check alone.
        let queries: Vec<AsrsQuery> = (1..=12)
            .map(|i| {
                AsrsQuery::new(
                    RegionSize::new(3.0 + i as f64, 5.0),
                    FeatureVector::new(vec![i as f64, 1.0, 1.0, 0.0]),
                    Weights::uniform(4),
                )
            })
            .collect();
        let reference = engine.search_batch(&queries).unwrap();
        assert_eq!(reference.len(), queries.len());
        for (q, r) in queries.iter().zip(&reference) {
            assert!(
                (r.region.width() - q.size.width).abs() < 1e-12,
                "result slot must answer the query at the same index"
            );
            let single = engine.search(q).unwrap();
            assert_eq!(single.anchor, r.anchor);
            assert_eq!(single.distance, r.distance);
        }
        for run in 0..5 {
            let again = engine.search_batch(&queries).unwrap();
            for (a, b) in reference.iter().zip(&again) {
                assert_eq!(a.anchor, b.anchor, "run {run}: anchors must be identical");
                assert_eq!(a.distance, b.distance, "run {run}");
                assert_eq!(a.representation, b.representation, "run {run}");
            }
        }
    }

    #[test]
    fn a_panicking_batch_slot_reports_internal_instead_of_aborting() {
        // Regression test: a worker panic used to propagate through
        // `handle.join().expect(..)` and abort the whole process, and one
        // failing query used to discard every sibling result.
        let (ds, agg) = setup(200, 5);
        let engine = AsrsEngine::builder(ds, agg)
            .build_index(16, 16)
            .build()
            .unwrap();
        let mut queries: Vec<AsrsQuery> = (1..=4)
            .map(|i| {
                AsrsQuery::new(
                    RegionSize::new(5.0 + i as f64, 6.0),
                    FeatureVector::new(vec![i as f64, 1.0, 1.0, 0.0]),
                    Weights::uniform(4),
                )
            })
            .collect();
        queries[2].size = RegionSize::new(test_hooks::PANIC_INJECTION_WIDTH, 6.0);

        let results = engine.search_batch_results(&queries).unwrap();
        assert_eq!(results.len(), queries.len());
        for (i, result) in results.iter().enumerate() {
            if i == 2 {
                assert!(
                    matches!(result, Err(AsrsError::Internal { .. })),
                    "slot {i}: {result:?}"
                );
            } else {
                let ok = result.as_ref().expect("healthy sibling slots survive");
                let single = engine.search(&queries[i]).unwrap();
                assert_eq!(ok.anchor, single.anchor);
                assert_eq!(ok.distance, single.distance);
            }
        }
        // The strict APIs surface the error as a value, never as a crash.
        assert!(matches!(
            engine.search_batch(&queries),
            Err(AsrsError::Internal { .. })
        ));
        assert!(matches!(
            engine.submit(&QueryRequest::batch(queries)),
            Err(AsrsError::Internal { .. })
        ));
    }

    #[test]
    fn cached_submissions_are_byte_identical_and_counted() {
        let (ds, agg) = setup(250, 9);
        let engine = AsrsEngine::builder(ds, agg)
            .build_index(16, 16)
            .cache_capacity(32)
            .build()
            .unwrap();
        let req = QueryRequest::similar(query()).with_budget_ms(60_000);
        let cold = engine.submit(&req).unwrap();
        let warm = engine.submit(&req).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(
            serde::json::to_string(&cold),
            serde::json::to_string(&warm),
            "a cache hit must serialize byte-identically to the cold miss"
        );
        let stats = engine.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);

        // A different request is a fresh miss, not a false hit.
        let other = engine.submit(&QueryRequest::top_k(query(), 2)).unwrap();
        assert!(matches!(other.outcome, QueryOutcome::Ranked(_)));
        let stats = engine.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 2));

        // Errors are never cached: the same bad request keeps failing.
        let bad = QueryRequest::similar(AsrsQuery::new(
            RegionSize::new(-1.0, 1.0),
            FeatureVector::new(vec![1.0, 1.0, 1.0, 1.0]),
            Weights::uniform(4),
        ));
        assert!(engine.submit(&bad).is_err());
        assert!(engine.submit(&bad).is_err());
        assert_eq!(engine.cache_stats().unwrap().entries, 2);
    }

    #[test]
    fn overflowing_distances_error_instead_of_panicking() {
        // A target of ~1e200 validates (finite), but every L2 distance —
        // including the empty-region seed's — squares to ∞.  BestSet
        // rejects the non-finite candidates, and the search must report
        // the empty result as an error, not die on the old `.expect`.
        use asrs_aggregator::DistanceMetric;
        let (ds, agg) = setup(100, 3);
        for indexed in [false, true] {
            let mut builder = AsrsEngine::builder(ds.clone(), agg.clone());
            if indexed {
                builder = builder.build_index(8, 8);
            }
            let engine = builder.build().unwrap();
            let q = AsrsQuery::new(
                RegionSize::new(5.0, 5.0),
                FeatureVector::new(vec![1e200; 4]),
                Weights::uniform(4),
            )
            .with_metric(DistanceMetric::L2);
            for backend in [Backend::DsSearch, Backend::Naive] {
                let result = engine.submit(&QueryRequest::similar(q.clone()).with_backend(backend));
                assert!(
                    matches!(result, Err(AsrsError::Internal { .. })),
                    "indexed={indexed} backend={backend}: {result:?}"
                );
            }
        }
    }

    fn object_at(ds: &Dataset, id: u64, x: f64, y: f64) -> asrs_data::SpatialObject {
        asrs_data::SpatialObject::new(id, asrs_geo::Point::new(x, y), ds.object(0).values.clone())
    }

    #[test]
    fn mutated_engine_answers_like_a_fresh_rebuild() {
        let (ds, agg) = setup(300, 17);
        let engine = AsrsEngine::builder(ds.clone(), agg.clone())
            .build_index(16, 16)
            .build()
            .unwrap();
        // A mutation run: interior appends (incremental), one exterior
        // append (geometry rebuild), removals.
        let a = engine.append(object_at(&ds, 9000, 40.0, 45.0)).unwrap();
        assert_eq!(a.index, crate::mutate::IndexMaintenance::Incremental);
        assert_eq!(a.generation, 1);
        let bbox = ds.bounding_box().unwrap();
        let b = engine
            .append(object_at(&ds, 9001, bbox.max_x + 25.0, bbox.max_y + 5.0))
            .unwrap();
        assert_eq!(
            b.index,
            crate::mutate::IndexMaintenance::Rebuilt,
            "an append outside the padded box must rebuild the index"
        );
        engine.remove(7).unwrap();
        engine.remove(123).unwrap();
        assert_eq!(engine.generation(), 4);

        // A fresh engine over the equivalent final dataset.
        let rebuilt = AsrsEngine::builder((*engine.dataset()).clone(), agg)
            .build_index(16, 16)
            .build()
            .unwrap();
        let req = QueryRequest::similar(query());
        let m = engine.submit(&req).unwrap();
        let r = rebuilt.submit(&req).unwrap();
        assert_eq!(
            serde::json::to_string(&m.stats_stripped()),
            serde::json::to_string(&r.stats_stripped()),
            "mutated and rebuilt engines must answer byte-identically"
        );
        // The statistics the planner reads agree too.
        assert_eq!(engine.statistics(), rebuilt.statistics());
    }

    #[test]
    fn stamped_cache_keys_make_stale_hits_impossible() {
        let (ds, agg) = setup(250, 23);
        let engine = AsrsEngine::builder(ds.clone(), agg.clone())
            .build_index(16, 16)
            .cache_capacity(64)
            .build()
            .unwrap();
        let req = QueryRequest::similar(query());
        let before = engine.submit(&req).unwrap();
        let warm = engine.submit(&req).unwrap();
        assert_eq!(before, warm);
        assert_eq!(engine.cache_stats().unwrap().hits, 1);

        // Mutate: the very point the optimum sat on may change; whatever
        // the answer now is, it must come from generation 1, not from the
        // generation-0 cache entry.
        engine.append(object_at(&ds, 9000, 17.0, 16.0)).unwrap();
        let after = engine.submit(&req).unwrap();
        let rebuilt = AsrsEngine::builder((*engine.dataset()).clone(), agg)
            .build_index(16, 16)
            .build()
            .unwrap();
        assert_eq!(
            serde::json::to_string(&after.stats_stripped()),
            serde::json::to_string(&rebuilt.submit(&req).unwrap().stats_stripped()),
            "a post-mutation submission must reflect the new generation"
        );
        let stats = engine.cache_stats().unwrap();
        assert_eq!(
            stats.hits, 1,
            "the post-mutation submission must not hit the stale entry"
        );
        // And the new generation's entry replays too.
        let again = engine.submit(&req).unwrap();
        assert_eq!(after, again);
        assert_eq!(engine.cache_stats().unwrap().hits, 2);
    }

    #[test]
    fn ttl_appends_expire_on_sweep() {
        let (ds, agg) = setup(120, 31);
        let engine = AsrsEngine::builder(ds.clone(), agg).build().unwrap();
        // One batch arms both TTLs: a *later* commit would piggyback the
        // already-due zero-TTL expiry (see `commit` in mutate.rs), and this
        // test exercises the timer-sweep path specifically.
        engine
            .append_batch(vec![
                (object_at(&ds, 9000, 30.0, 30.0), Some(Duration::ZERO)),
                (
                    object_at(&ds, 9001, 31.0, 31.0),
                    Some(Duration::from_secs(3600)),
                ),
            ])
            .unwrap();
        assert_eq!(engine.dataset().len(), 122);
        assert_eq!(engine.mutation_stats().pending_ttl, 2);
        let receipts = engine.sweep_expired().unwrap();
        assert_eq!(receipts.len(), 1, "only the zero-TTL object is due");
        assert_eq!(receipts[0].kind, "expire");
        assert_eq!(receipts[0].id, 9000);
        assert_eq!(engine.dataset().len(), 121);
        assert!(engine.dataset().contains_id(9001));
        let stats = engine.mutation_stats();
        assert_eq!(stats.expiries, 1);
        assert_eq!(stats.pending_ttl, 1);
        // A second sweep finds nothing due.
        assert!(engine.sweep_expired().unwrap().is_empty());
        // An object removed by the caller before its deadline is skipped
        // silently when the deadline arrives.
        engine
            .append_with_ttl(object_at(&ds, 9002, 32.0, 32.0), Duration::ZERO)
            .unwrap();
        engine.remove(9002).unwrap();
        assert!(engine.sweep_expired().unwrap().is_empty());
    }

    #[test]
    fn absurd_ttls_never_panic_or_poison_the_mutator() {
        // Regression test: `Instant::now() + Duration::from_millis(u64::MAX)`
        // used to overflow-panic while the mutation mutex was held,
        // poisoning every later mutation AND the /metrics snapshot.  An
        // unrepresentable deadline now simply never expires.
        let (ds, agg) = setup(60, 43);
        let engine = AsrsEngine::builder(ds.clone(), agg).build().unwrap();
        engine
            .append_with_ttl(
                object_at(&ds, 9000, 20.0, 20.0),
                Duration::from_millis(u64::MAX),
            )
            .unwrap();
        assert!(engine.sweep_expired().unwrap().is_empty());
        // The mutator is alive and well.
        engine.append(object_at(&ds, 9001, 21.0, 21.0)).unwrap();
        engine.remove(9001).unwrap();
        assert_eq!(engine.mutation_stats().generation, 3);
        assert!(engine.dataset().contains_id(9000));
    }

    #[test]
    fn a_reused_id_is_never_killed_by_a_stale_ttl() {
        // Regression test: TTL heap entries used to match by id alone, so
        // removing a TTL'd object and re-appending a *permanent* object
        // under the same id let the stale deadline silently delete the new
        // object on the next sweep.
        let (ds, agg) = setup(60, 47);
        let engine = AsrsEngine::builder(ds.clone(), agg).build().unwrap();
        engine
            .append_with_ttl(object_at(&ds, 9000, 20.0, 20.0), Duration::ZERO)
            .unwrap();
        engine.remove(9000).unwrap();
        engine.append(object_at(&ds, 9000, 22.0, 22.0)).unwrap();
        // The zero-TTL deadline has long passed, but it belonged to the
        // removed arming — the permanent re-append must survive the sweep.
        assert!(engine.sweep_expired().unwrap().is_empty());
        assert!(engine.dataset().contains_id(9000));
        assert_eq!(engine.mutation_stats().pending_ttl, 0);

        // Re-arming the same id replaces the old deadline cleanly too.
        engine.remove(9000).unwrap();
        engine
            .append_with_ttl(object_at(&ds, 9000, 23.0, 23.0), Duration::ZERO)
            .unwrap();
        let receipts = engine.sweep_expired().unwrap();
        assert_eq!(receipts.len(), 1);
        assert_eq!(receipts[0].id, 9000);
        assert!(!engine.dataset().contains_id(9000));
    }

    #[test]
    fn legacy_max_rs_honours_the_cost_ceiling() {
        // Regression test: the legacy max_rs/max_rs_selective shims used
        // to bypass the admission gate that submit/search/top-k enforce.
        let (ds, agg) = setup(200, 53);
        let engine = AsrsEngine::builder(ds, agg)
            .cost_ceiling(1.0)
            .build()
            .unwrap();
        assert!(matches!(
            engine.max_rs(RegionSize::new(10.0, 10.0)),
            Err(AsrsError::CostCeilingExceeded { .. })
        ));
        assert!(matches!(
            engine.max_rs_selective(RegionSize::new(10.0, 10.0), Selection::cat_equals(0, 1)),
            Err(AsrsError::CostCeilingExceeded { .. })
        ));
        assert!(matches!(
            engine.search(&query()),
            Err(AsrsError::CostCeilingExceeded { .. })
        ));
    }

    #[test]
    fn mutation_errors_are_reported_as_values() {
        let (ds, agg) = setup(80, 37);
        let engine = AsrsEngine::builder(ds.clone(), agg).build().unwrap();
        // Duplicate id.
        assert_eq!(
            engine.append(object_at(&ds, 5, 10.0, 10.0)).unwrap_err(),
            AsrsError::DuplicateObjectId { id: 5 }
        );
        // Unknown id.
        assert_eq!(
            engine.remove(424242).unwrap_err(),
            AsrsError::UnknownObjectId { id: 424242 }
        );
        // Schema violation.
        let bad = asrs_data::SpatialObject::new(
            9000,
            asrs_geo::Point::new(1.0, 1.0),
            vec![asrs_data::AttrValue::Cat(99)],
        );
        assert!(matches!(engine.append(bad), Err(AsrsError::Schema(_))));
        // Nothing was applied.
        assert_eq!(engine.generation(), 0);
        assert_eq!(engine.dataset().len(), 80);
        assert_eq!(engine.mutation_log().total(), 0);
    }

    #[test]
    fn rebuild_threshold_caps_incremental_drift() {
        let (ds, agg) = setup(40, 41);
        let engine = AsrsEngine::builder(ds.clone(), agg)
            .build_index(8, 8)
            .mutation_policy(crate::mutate::MutationPolicy {
                index_rebuild_fraction: 0.1, // 40 objects → budget of 4
                ..Default::default()
            })
            .build()
            .unwrap();
        let mut kinds = Vec::new();
        for i in 0..5 {
            let r = engine
                .append(object_at(&ds, 9000 + i, 30.0 + i as f64, 40.0))
                .unwrap();
            kinds.push(r.index);
        }
        use crate::mutate::IndexMaintenance::{Incremental, Rebuilt};
        assert_eq!(
            kinds,
            vec![Incremental, Incremental, Incremental, Incremental, Rebuilt],
            "the fifth delta must cross the 10% budget and rebuild"
        );
        let stats = engine.mutation_stats();
        assert_eq!(stats.incremental_index_updates, 4);
        assert_eq!(stats.index_rebuilds, 1);
    }

    #[test]
    fn engines_without_a_cache_report_none() {
        let (ds, agg) = setup(60, 2);
        let engine = AsrsEngine::builder(ds, agg).build().unwrap();
        assert!(engine.cache_stats().is_none());
        assert!(engine.submit(&QueryRequest::similar(query())).is_ok());
    }

    #[test]
    fn batch_response_merges_stats() {
        let (ds, agg) = setup(200, 33);
        let engine = AsrsEngine::builder(ds, agg).build().unwrap();
        let queries = vec![query(), query(), query()];
        let response = engine
            .submit(&QueryRequest::batch(queries.clone()))
            .unwrap();
        let singles: u64 = queries
            .iter()
            .map(|q| engine.search(q).unwrap().stats.spaces_processed)
            .sum();
        assert_eq!(response.stats.spaces_processed, singles);
        assert!(matches!(response.outcome, QueryOutcome::Batch(ref r) if r.len() == 3));
    }
}
