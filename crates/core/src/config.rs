//! Search configuration.

use asrs_geo::Accuracy;
use serde::{Deserialize, Serialize};

/// Tuning knobs of DS-Search and GI-DS.
///
/// The defaults follow the paper's experimental setup: a 30 × 30
/// discretisation grid (the best setting in Fig. 9) and exact search
/// (`delta = 0`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Number of grid columns used by the `Discretize` procedure (`n_col`).
    pub ncols: usize,
    /// Number of grid rows used by the `Discretize` procedure (`n_row`).
    pub nrows: usize,
    /// Optional explicit GPS accuracy (ΔX, ΔY).  When `None`, the accuracy
    /// is estimated from the rectangle edge coordinates of the reduced ASP
    /// instance (Definition 7), with [`SearchConfig::accuracy_floor`] as a
    /// lower bound.
    pub accuracy: Option<Accuracy>,
    /// Lower bound applied to the estimated accuracy.  Prevents
    /// pathologically deep recursions when two coordinates are separated by
    /// numerical noise only.
    pub accuracy_floor: f64,
    /// Approximation parameter δ of the (1+δ)-approximate ASRS problem
    /// (Section 6).  `0.0` gives the exact algorithm.
    pub delta: f64,
    /// Maximum depth of the discretize–split recursion.  Spaces deeper than
    /// this are resolved exactly by enumerating the remaining candidate
    /// points instead of splitting further; this is a termination safety
    /// valve that does not affect correctness.
    pub max_depth: u32,
    /// Dirty cells crossed by at most this many rectangles are resolved
    /// exactly (one probe per arrangement piece inside the cell) instead of
    /// being split further.  This keeps the discretize–split recursion from
    /// chasing cells along the optimal region's boundary whose real-valued
    /// lower bounds stay marginally below the optimum.
    pub resolve_crossing_threshold: u32,
    /// Maximum number of sub-spaces processed before the search switches to
    /// exact per-cell resolution for everything that remains.  A safety
    /// valve against pathological inputs; it does not affect correctness.
    pub max_spaces: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            ncols: 30,
            nrows: 30,
            accuracy: None,
            accuracy_floor: 1e-12,
            delta: 0.0,
            max_depth: 64,
            resolve_crossing_threshold: 24,
            max_spaces: 1_000_000,
        }
    }
}

impl SearchConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the discretisation grid granularity (`n_col × n_row`).
    pub fn with_grid(mut self, ncols: usize, nrows: usize) -> Self {
        assert!(ncols >= 2 && nrows >= 2, "grid must be at least 2 x 2");
        self.ncols = ncols;
        self.nrows = nrows;
        self
    }

    /// Sets an explicit GPS accuracy.
    pub fn with_accuracy(mut self, accuracy: Accuracy) -> Self {
        self.accuracy = Some(accuracy);
        self
    }

    /// Sets the approximation parameter δ (0 = exact).
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(delta >= 0.0 && delta.is_finite(), "delta must be non-negative");
        self.delta = delta;
        self
    }

    /// The pruning factor `1 + δ`.
    pub(crate) fn prune_factor(&self) -> f64 {
        1.0 + self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = SearchConfig::default();
        assert_eq!(c.ncols, 30);
        assert_eq!(c.nrows, 30);
        assert_eq!(c.delta, 0.0);
        assert_eq!(c.prune_factor(), 1.0);
        assert!(c.accuracy.is_none());
    }

    #[test]
    fn builder_methods() {
        let c = SearchConfig::new()
            .with_grid(10, 20)
            .with_delta(0.3)
            .with_accuracy(Accuracy::new(0.5, 0.25));
        assert_eq!(c.ncols, 10);
        assert_eq!(c.nrows, 20);
        assert_eq!(c.prune_factor(), 1.3);
        assert_eq!(c.accuracy, Some(Accuracy::new(0.5, 0.25)));
    }

    #[test]
    #[should_panic(expected = "at least 2 x 2")]
    fn grid_must_be_nontrivial() {
        SearchConfig::new().with_grid(1, 10);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn delta_must_be_non_negative() {
        SearchConfig::new().with_delta(-0.1);
    }
}
