//! Search configuration.

use crate::error::ConfigError;
use asrs_geo::Accuracy;
use serde::{Deserialize, Serialize};

/// Tuning knobs of DS-Search and GI-DS.
///
/// The defaults follow the paper's experimental setup: a 30 × 30
/// discretisation grid (the best setting in Fig. 9) and exact search
/// (`delta = 0`).
///
/// All builder methods are fallible and return [`ConfigError`] on invalid
/// input instead of panicking; a fully-populated configuration (e.g. one
/// deserialized from JSON) can be re-checked with
/// [`SearchConfig::validate`], which the engine and every search backend
/// call before running.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Number of grid columns used by the `Discretize` procedure (`n_col`).
    pub ncols: usize,
    /// Number of grid rows used by the `Discretize` procedure (`n_row`).
    pub nrows: usize,
    /// Optional explicit GPS accuracy (ΔX, ΔY).  When `None`, the accuracy
    /// is estimated from the rectangle edge coordinates of the reduced ASP
    /// instance (Definition 7), with [`SearchConfig::accuracy_floor`] as a
    /// lower bound.
    pub accuracy: Option<Accuracy>,
    /// Lower bound applied to the estimated accuracy.  Prevents
    /// pathologically deep recursions when two coordinates are separated by
    /// numerical noise only.
    pub accuracy_floor: f64,
    /// Approximation parameter δ of the (1+δ)-approximate ASRS problem
    /// (Section 6).  `0.0` gives the exact algorithm.
    pub delta: f64,
    /// Maximum depth of the discretize–split recursion.  Spaces deeper than
    /// this are resolved exactly by enumerating the remaining candidate
    /// points instead of splitting further; this is a termination safety
    /// valve that does not affect correctness.
    pub max_depth: u32,
    /// Dirty cells crossed by at most this many rectangles are resolved
    /// exactly (one probe per arrangement piece inside the cell) instead of
    /// being split further.  This keeps the discretize–split recursion from
    /// chasing cells along the optimal region's boundary whose real-valued
    /// lower bounds stay marginally below the optimum.
    pub resolve_crossing_threshold: u32,
    /// Maximum number of sub-spaces processed before the search switches to
    /// exact per-cell resolution for everything that remains.  A safety
    /// valve against pathological inputs; it does not affect correctness.
    pub max_spaces: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            ncols: 30,
            nrows: 30,
            accuracy: None,
            accuracy_floor: 1e-12,
            delta: 0.0,
            max_depth: 64,
            resolve_crossing_threshold: 24,
            max_spaces: 1_000_000,
        }
    }
}

impl SearchConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the discretisation grid granularity (`n_col × n_row`).
    ///
    /// # Errors
    ///
    /// [`ConfigError::GridTooCoarse`] unless both sides are at least 2.
    pub fn with_grid(mut self, ncols: usize, nrows: usize) -> Result<Self, ConfigError> {
        if ncols < 2 || nrows < 2 {
            return Err(ConfigError::GridTooCoarse { ncols, nrows });
        }
        self.ncols = ncols;
        self.nrows = nrows;
        Ok(self)
    }

    /// Sets an explicit GPS accuracy.
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidAccuracy`] unless both components are finite
    /// and positive.
    pub fn with_accuracy(mut self, accuracy: Accuracy) -> Result<Self, ConfigError> {
        if !(accuracy.dx.is_finite()
            && accuracy.dx > 0.0
            && accuracy.dy.is_finite()
            && accuracy.dy > 0.0)
        {
            return Err(ConfigError::InvalidAccuracy {
                dx: accuracy.dx,
                dy: accuracy.dy,
            });
        }
        self.accuracy = Some(accuracy);
        Ok(self)
    }

    /// Sets the approximation parameter δ (0 = exact).
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidDelta`] unless δ is finite and non-negative.
    pub fn with_delta(mut self, delta: f64) -> Result<Self, ConfigError> {
        if !(delta.is_finite() && delta >= 0.0) {
            return Err(ConfigError::InvalidDelta { delta });
        }
        self.delta = delta;
        Ok(self)
    }

    /// Checks every field, including ones set directly or deserialized.
    ///
    /// Search backends call this once per query, so a hand-mutated invalid
    /// configuration surfaces as an [`ConfigError`] instead of a panic or
    /// an endless recursion.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ncols < 2 || self.nrows < 2 {
            return Err(ConfigError::GridTooCoarse {
                ncols: self.ncols,
                nrows: self.nrows,
            });
        }
        if !(self.delta.is_finite() && self.delta >= 0.0) {
            return Err(ConfigError::InvalidDelta { delta: self.delta });
        }
        if let Some(acc) = self.accuracy {
            if !(acc.dx.is_finite() && acc.dx > 0.0 && acc.dy.is_finite() && acc.dy > 0.0) {
                return Err(ConfigError::InvalidAccuracy {
                    dx: acc.dx,
                    dy: acc.dy,
                });
            }
        }
        if !(self.accuracy_floor.is_finite() && self.accuracy_floor >= 0.0) {
            return Err(ConfigError::InvalidAccuracyFloor {
                floor: self.accuracy_floor,
            });
        }
        if self.max_depth == 0 {
            return Err(ConfigError::InvalidLimit { field: "max_depth" });
        }
        if self.max_spaces == 0 {
            return Err(ConfigError::InvalidLimit {
                field: "max_spaces",
            });
        }
        Ok(())
    }

    /// The pruning factor `1 + δ`.
    pub(crate) fn prune_factor(&self) -> f64 {
        1.0 + self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = SearchConfig::default();
        assert_eq!(c.ncols, 30);
        assert_eq!(c.nrows, 30);
        assert_eq!(c.delta, 0.0);
        assert_eq!(c.prune_factor(), 1.0);
        assert!(c.accuracy.is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods() {
        let c = SearchConfig::new()
            .with_grid(10, 20)
            .and_then(|c| c.with_delta(0.3))
            .and_then(|c| c.with_accuracy(Accuracy::new(0.5, 0.25)))
            .unwrap();
        assert_eq!(c.ncols, 10);
        assert_eq!(c.nrows, 20);
        assert_eq!(c.prune_factor(), 1.3);
        assert_eq!(c.accuracy, Some(Accuracy::new(0.5, 0.25)));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn grid_must_be_nontrivial() {
        assert_eq!(
            SearchConfig::new().with_grid(1, 10),
            Err(ConfigError::GridTooCoarse {
                ncols: 1,
                nrows: 10
            })
        );
        assert_eq!(
            SearchConfig::new().with_grid(5, 0),
            Err(ConfigError::GridTooCoarse { ncols: 5, nrows: 0 })
        );
        assert!(SearchConfig::new().with_grid(2, 2).is_ok());
    }

    #[test]
    fn delta_must_be_finite_and_non_negative() {
        assert_eq!(
            SearchConfig::new().with_delta(-0.1),
            Err(ConfigError::InvalidDelta { delta: -0.1 })
        );
        assert!(SearchConfig::new().with_delta(f64::NAN).is_err());
        assert!(SearchConfig::new().with_delta(f64::INFINITY).is_err());
        assert!(SearchConfig::new().with_delta(0.0).is_ok());
    }

    #[test]
    fn accuracy_must_be_positive() {
        assert!(matches!(
            SearchConfig::new().with_accuracy(Accuracy::new(0.0, 1.0)),
            Err(ConfigError::InvalidAccuracy { .. })
        ));
        assert!(SearchConfig::new()
            .with_accuracy(Accuracy::new(1e-9, 1e-9))
            .is_ok());
    }

    #[test]
    fn validate_catches_directly_mutated_fields() {
        let c = SearchConfig {
            ncols: 1,
            ..SearchConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::GridTooCoarse { .. })
        ));

        let c = SearchConfig {
            delta: f64::NAN,
            ..SearchConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidDelta { .. })
        ));

        let c = SearchConfig {
            accuracy_floor: -1.0,
            ..SearchConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidAccuracyFloor { .. })
        ));

        let c = SearchConfig {
            max_depth: 0,
            ..SearchConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::InvalidLimit { field: "max_depth" })
        );

        let c = SearchConfig {
            max_spaces: 0,
            ..SearchConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::InvalidLimit {
                field: "max_spaces"
            })
        );
    }

    #[test]
    fn serde_round_trip_preserves_every_field() {
        let config = SearchConfig::new()
            .with_grid(12, 18)
            .and_then(|c| c.with_delta(0.25))
            .and_then(|c| c.with_accuracy(Accuracy::new(1e-8, 2e-8)))
            .unwrap();
        let json = serde::json::to_string(&config);
        let back: SearchConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(back, config);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn serde_round_trip_keeps_validation_meaningful() {
        // A config that was serialized from a hand-mutated invalid state
        // still deserializes (the wire format is schema-checked only) but
        // fails validation, so no search will run with it.
        let config = SearchConfig {
            delta: -2.0,
            ..SearchConfig::default()
        };
        let json = serde::json::to_string(&config);
        let back: SearchConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(back.delta, -2.0);
        assert!(matches!(
            back.validate(),
            Err(ConfigError::InvalidDelta { .. })
        ));
    }
}
