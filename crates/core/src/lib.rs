//! Core algorithms of the ASRS paper behind one engine facade: the ASP
//! reduction, the exact DS-Search algorithm, the GI-DS grid-index search,
//! the (1+δ)-approximate extension and the MaxRS adaptation.
//!
//! # Overview
//!
//! The attribute-aware similar region search (ASRS) problem takes a set of
//! spatial objects, a query region of size `a × b` and a composite
//! aggregator, and finds the `a × b` region whose aggregate representation
//! is closest to the query's (Definition 4 of the paper).
//!
//! The implementation follows the paper closely:
//!
//! 1. [`asp`] reduces ASRS to the attribute-aware similar *point* (ASP)
//!    problem: each object spawns an `a × b` rectangle whose top-right
//!    corner sits on the object; finding the point covered by the most
//!    query-like multiset of rectangles is equivalent to finding the best
//!    region (Section 4.1, Theorem 1).
//! 2. [`DsSearch`] solves ASP by repeatedly *discretizing* the space into a
//!    grid of clean/dirty cells and *splitting* the sub-space spanned by the
//!    surviving dirty cells, pruning with the Equation-1 lower bound and
//!    stopping on the GPS-accuracy drop condition (Sections 4.2–4.6).
//! 3. [`GridIndex`] + [`GiDsSearch`] add the query-independent grid index
//!    with attribute summary tables of Section 5, searching only the index
//!    cells whose lower bound can still beat the best known distance.
//! 4. The same machinery answers the (1+δ)-approximate problem (Section 6)
//!    via [`SearchConfig::delta`] / [`GiDsSearch::search_approx`].
//! 5. [`MaxRsSearch`] adapts DS-Search to the MaxRS problem (Section 7.5).
//!
//! # The request → plan → execute pipeline
//!
//! The engine's primary surface is declarative: callers describe *what*
//! they want as a serializable [`QueryRequest`] (similar-region, top-k,
//! batch, approximate, MaxRS, …), the [`Planner`] chooses the backend from
//! dataset/index statistics with a documented cost model (its
//! [`ExecutionPlan::explain`] says why), and
//! [`AsrsEngine::submit`] executes the plan into a [`QueryResponse`]
//! bundling results, the chosen [`Backend`] and the merged
//! [`SearchStats`].  Requests can carry a wall-clock [`Budget`]
//! ([`QueryRequest::with_budget_ms`]) that aborts long discretize/split
//! recursions with [`AsrsError::DeadlineExceeded`], and a backend override
//! ([`QueryRequest::with_backend`]) for callers who know better than the
//! cost model.
//!
//! [`AsrsEngine::handle`] returns a cheap `Clone + Send + Sync`
//! [`EngineHandle`] over the engine's [`std::sync::Arc`]-shared immutable
//! core, so many threads can submit concurrently.
//!
//! # Sharded scatter-gather
//!
//! [`EngineBuilder::shards`] partitions the dataset spatially into `n`
//! disjoint regions (one core and grid index per shard, built in
//! parallel) and turns execution into a scatter-gather: each shard
//! answers the candidate anchors its region induces and the per-shard
//! result sets merge under the deterministic `(distance, anchor.y,
//! anchor.x)` tie-break.  The gathered outcome is byte-identical for
//! every shard count — anchors are snapped to canonical arrangement-cell
//! representatives and pruning retains ties, so the answer is a pure
//! function of the instance rather than of the decomposition
//! ([`QueryResponse::stats_stripped`] is the comparison form; execution
//! statistics, including [`SearchStats::shards_touched`] /
//! [`SearchStats::shards_pruned`], describe the decomposition that ran).
//!
//! # Mutability and generations
//!
//! The engine is *generational*: [`AsrsEngine::append`] /
//! [`AsrsEngine::append_with_ttl`] / [`AsrsEngine::remove`] /
//! [`AsrsEngine::sweep_expired`] apply a mutation and publish a new
//! immutable core stamped with the next generation number.  Queries
//! snapshot the generation current at submission and finish on it
//! undisturbed (an epoch swap built from `std` locks); the query-result
//! cache is shared across generations with generation-stamped keys
//! ([`RequestKey::stamped`]), so a stale hit is structurally impossible.
//! Grid indexes are maintained *incrementally* — one cell edit plus a
//! suffix-table sweep per mutation, bit-identical to a fresh build — with
//! a rebuild fallback when the grid geometry moves or the accumulated
//! delta crosses [`MutationPolicy::index_rebuild_fraction`]; sharded
//! engines route each mutation to its owning shard and re-partition on
//! imbalance.  The end-to-end guarantee, enforced by
//! `tests/mutation_parity.rs`: after any mutation sequence, responses are
//! **byte-identical** to those of a fresh engine rebuilt from the
//! equivalent final dataset, for shard counts {1, 2, 4}, cache enabled.
//!
//! # The engine facade
//!
//! [`AsrsEngine`] owns the dataset and aggregator, optionally builds a
//! [`GridIndex`], validates every query once at its boundary, and keeps
//! the legacy per-operation methods ([`AsrsEngine::search`],
//! [`AsrsEngine::search_top_k`], [`AsrsEngine::search_batch`],
//! [`AsrsEngine::max_rs`], …) as thin shims over `submit`.  All backends
//! implement the object-safe [`SearchAlgorithm`] trait and return
//! identical optimal distances; every fallible path reports [`AsrsError`]
//! — no public builder or search panics on bad input.
//!
//! # Quick example
//!
//! ```
//! use asrs_core::{AsrsEngine, QueryRequest};
//! use asrs_aggregator::{CompositeAggregator, Selection};
//! use asrs_data::gen::UniformGenerator;
//! use asrs_geo::Rect;
//!
//! let dataset = UniformGenerator::default().generate(500, 42);
//! let aggregator = CompositeAggregator::builder(dataset.schema())
//!     .distribution("category", Selection::All)
//!     .build()
//!     .unwrap();
//!
//! // One facade: index construction, validation and planning.
//! let engine = AsrsEngine::builder(dataset, aggregator)
//!     .build_index(32, 32)
//!     .build()
//!     .unwrap();
//!
//! // Use an existing region as the example to match.
//! let example = Rect::new(10.0, 10.0, 25.0, 25.0);
//! let query = engine.query_from_example(&example).unwrap();
//!
//! // Plan (to see the cost model's choice) ...
//! let request = QueryRequest::similar(query.clone());
//! println!("{}", engine.plan(&request).unwrap().explain());
//!
//! // ... and execute.
//! let response = engine.submit(&request).unwrap();
//! let best = response.best().unwrap();
//! assert!(best.distance.is_finite());
//! assert!((best.region.width() - example.width()).abs() < 1e-9);
//!
//! // The 3 best non-identical anchors, best first.
//! let top = engine.submit(&QueryRequest::top_k(query, 3)).unwrap();
//! assert!(top.results().len() <= 3);
//! assert!(top.results()[0].distance <= best.distance + 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asp;
mod audit;
mod best;
mod budget;
mod cache;
mod carry;
mod config;
mod discretize;
mod drop_condition;
mod ds_search;
mod engine;
mod error;
mod gi_ds;
mod grid_index;
mod handle;
mod maxrs;
mod mutate;
mod naive;
mod planner;
mod query;
mod request;
mod result;
pub(crate) mod shard;
mod split;
mod stats;
pub mod sync;

pub use audit::{AuditFinding, AuditReport};
pub use budget::Budget;
pub use cache::{CacheStats, QueryCache};
pub use config::SearchConfig;
pub use ds_search::DsSearch;
pub use engine::{
    AsrsEngine, DurabilitySink, EngineBuilder, EngineState, SearchAlgorithm, ShardState, Strategy,
};
pub use error::{AsrsError, ConfigError};
pub use gi_ds::GiDsSearch;
pub use grid_index::GridIndex;
pub use handle::EngineHandle;
pub use maxrs::{MaxRsResult, MaxRsSearch};
pub use mutate::{IndexMaintenance, MutationPolicy, MutationReceipt, MutationStats};
pub use naive::NaiveSearch;
pub use planner::{
    CostEstimate, EngineStatistics, ExecutionPlan, IndexStatistics, PlanReason, Planner,
    ShardFanOut,
};
pub use query::{AsrsQuery, QueryError};
pub use request::{Backend, QueryOutcome, QueryRequest, QueryResponse, RequestKey};
pub use result::SearchResult;
pub use stats::SearchStats;
