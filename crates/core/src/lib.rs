//! Core algorithms of the ASRS paper behind one engine facade: the ASP
//! reduction, the exact DS-Search algorithm, the GI-DS grid-index search,
//! the (1+δ)-approximate extension and the MaxRS adaptation.
//!
//! # Overview
//!
//! The attribute-aware similar region search (ASRS) problem takes a set of
//! spatial objects, a query region of size `a × b` and a composite
//! aggregator, and finds the `a × b` region whose aggregate representation
//! is closest to the query's (Definition 4 of the paper).
//!
//! The implementation follows the paper closely:
//!
//! 1. [`asp`] reduces ASRS to the attribute-aware similar *point* (ASP)
//!    problem: each object spawns an `a × b` rectangle whose top-right
//!    corner sits on the object; finding the point covered by the most
//!    query-like multiset of rectangles is equivalent to finding the best
//!    region (Section 4.1, Theorem 1).
//! 2. [`DsSearch`] solves ASP by repeatedly *discretizing* the space into a
//!    grid of clean/dirty cells and *splitting* the sub-space spanned by the
//!    surviving dirty cells, pruning with the Equation-1 lower bound and
//!    stopping on the GPS-accuracy drop condition (Sections 4.2–4.6).
//! 3. [`GridIndex`] + [`GiDsSearch`] add the query-independent grid index
//!    with attribute summary tables of Section 5, searching only the index
//!    cells whose lower bound can still beat the best known distance.
//! 4. The same machinery answers the (1+δ)-approximate problem (Section 6)
//!    via [`SearchConfig::delta`] / [`GiDsSearch::search_approx`].
//! 5. [`MaxRsSearch`] adapts DS-Search to the MaxRS problem (Section 7.5).
//!
//! # The engine facade
//!
//! [`AsrsEngine`] is the intended public entry point: it owns the dataset
//! and aggregator, optionally builds a [`GridIndex`], selects a backend via
//! [`Strategy`] (all backends implement the object-safe [`SearchAlgorithm`]
//! trait and return identical optimal distances), validates every query
//! once at its boundary, and adds batch ([`AsrsEngine::search_batch`]) and
//! top-k ([`AsrsEngine::search_top_k`]) querying.  Every fallible path
//! reports [`AsrsError`] — no public builder or search panics on bad input.
//!
//! # Quick example
//!
//! ```
//! use asrs_core::{AsrsEngine, Strategy};
//! use asrs_aggregator::{CompositeAggregator, Selection};
//! use asrs_data::gen::UniformGenerator;
//! use asrs_geo::Rect;
//!
//! let dataset = UniformGenerator::default().generate(500, 42);
//! let aggregator = CompositeAggregator::builder(dataset.schema())
//!     .distribution("category", Selection::All)
//!     .build()
//!     .unwrap();
//!
//! // One facade: index construction, validation and backend choice.
//! let engine = AsrsEngine::builder(dataset, aggregator)
//!     .build_index(32, 32)
//!     .strategy(Strategy::Auto) // index present → GI-DS
//!     .build()
//!     .unwrap();
//!
//! // Use an existing region as the example to match.
//! let example = Rect::new(10.0, 10.0, 25.0, 25.0);
//! let query = engine.query_from_example(&example).unwrap();
//!
//! let result = engine.search(&query).unwrap();
//! assert!(result.distance.is_finite());
//! assert!((result.region.width() - example.width()).abs() < 1e-9);
//!
//! // The 3 best non-identical anchors, best first.
//! let top = engine.search_top_k(&query, 3).unwrap();
//! assert!(top.len() <= 3 && top[0].distance <= result.distance + 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asp;
mod best;
mod config;
mod discretize;
mod drop_condition;
mod ds_search;
mod engine;
mod error;
mod gi_ds;
mod grid_index;
mod maxrs;
mod naive;
mod query;
mod result;
mod split;
mod stats;

pub use config::SearchConfig;
pub use ds_search::DsSearch;
pub use engine::{AsrsEngine, EngineBuilder, SearchAlgorithm, Strategy};
pub use error::{AsrsError, ConfigError};
pub use gi_ds::GiDsSearch;
pub use grid_index::GridIndex;
pub use maxrs::{MaxRsResult, MaxRsSearch};
pub use naive::NaiveSearch;
pub use query::{AsrsQuery, QueryError};
pub use result::SearchResult;
pub use stats::SearchStats;
