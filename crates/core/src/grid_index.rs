//! The grid index with attribute summary tables (Section 5.2).
//!
//! The index is a query-independent `s_x × s_y` grid over the dataset.  The
//! paper attaches to each cell an *attribute summary table* counting, for
//! every attribute value, the objects located in the cells above and to the
//! right of it (`G[∞/i][∞/j]`); Lemma 8 then recovers the counts of any
//! rectangular block of cells by inclusion–exclusion.
//!
//! This implementation generalises the summary tables from per-category
//! counts to whole *statistics vectors* of the composite aggregator (which
//! subsume the per-category counts and additionally carry the sums/counts
//! needed by the sum and average aggregators), so a single index supports
//! every aggregator the paper defines.

use crate::error::{AsrsError, ConfigError};
use asrs_aggregator::CompositeAggregator;
use asrs_data::{Dataset, SpatialObject};
use asrs_geo::{GridSpec, Rect};

/// The grid index: suffix-cumulative statistics vectors over an
/// `s_x × s_y` grid.
///
/// # Incremental maintenance
///
/// Besides the one-shot [`GridIndex::build`], the index supports
/// *incremental* maintenance under dataset mutations:
/// [`GridIndex::update_append`] folds one appended object into its cell and
/// [`GridIndex::update_remove`] re-derives the removed object's cell from
/// the surviving objects.  Both then refresh the suffix tables with the
/// same deterministic sweep `build` runs, so an incrementally maintained
/// index is **bit-identical** to one rebuilt from scratch over the mutated
/// dataset — provided the grid geometry still matches
/// ([`GridIndex::space_matches`]); when a mutation moves the dataset's
/// padded bounding box, callers must rebuild instead (the generational
/// engine in [`engine`](crate::AsrsEngine) does exactly that).
///
/// The bit-identity argument: per cell, `build` accumulates object
/// contributions in dataset order.  An appended object is last in dataset
/// order, so adding its contribution to the existing cell sums reproduces
/// the rebuild's addition order; a removal re-accumulates the affected cell
/// from the surviving objects in dataset order, which *is* the rebuild's
/// order.  The suffix sweep is a pure function of the per-cell table, so
/// identical cells imply identical suffix tables.
#[derive(Debug, Clone)]
pub struct GridIndex {
    spec: GridSpec,
    stats_dim: usize,
    /// Per-cell statistics: entry `(i, j)` holds the statistics of the
    /// objects located in cell `(i, j)`; the last row/column (the lattice
    /// padding) is identically zero.  This is the table incremental
    /// maintenance edits; `suffix` is derived from it.
    base: Vec<f64>,
    /// Suffix sums: entry `(i, j)` (with `i ∈ 0..=cols`, `j ∈ 0..=rows`)
    /// holds the statistics of all objects located in cells
    /// `[i.., j..)`; the last row/column is identically zero.
    suffix: Vec<f64>,
    /// Per-cell membership, in dataset order within each cell: who is in
    /// the cell and what they contributed to its statistics.  Lets
    /// [`GridIndex::update_remove`] re-derive the affected cell from its
    /// own members (`O(cell)`) instead of rescanning the whole dataset
    /// (`O(n)`).  `None` on an index restored from a persisted base table
    /// — the table alone cannot say who contributed what — in which case
    /// the first removal materialises the lists with one dataset pass.
    members: Option<Vec<Vec<CellMember>>>,
    objects_indexed: usize,
}

/// One object's entry in its cell's membership list: its id and the
/// statistics vector it contributed (the exact bits
/// [`GridIndex::build`] folded in, so re-summing a cell from its members
/// in list order reproduces the rebuild's additions bit-for-bit).
#[derive(Debug, Clone)]
struct CellMember {
    id: u64,
    contribution: Vec<f64>,
}

impl GridIndex {
    /// Builds the index for `dataset` and `aggregator` with an
    /// `cols × rows` grid.
    ///
    /// # Errors
    ///
    /// [`AsrsError::Config`] when a side of the grid is zero;
    /// [`AsrsError::EmptyDataset`] when the dataset has no object to index.
    pub fn build(
        dataset: &Dataset,
        aggregator: &CompositeAggregator,
        cols: usize,
        rows: usize,
    ) -> Result<Self, AsrsError> {
        if cols == 0 || rows == 0 {
            return Err(ConfigError::InvalidIndexGranularity { cols, rows }.into());
        }
        // Degenerate (collinear) axes are padded *relative* to the dataset
        // extent so the grid stays dense with real cells: an absolute pad
        // (the old `padded_bounding_box(1.0)`) turned micro-extent datasets
        // — e.g. a lat/lon neighbourhood spanning ~0.01° — into grids that
        // were almost entirely dead padding.  The absolute fallback only
        // applies to single-point datasets, which have no extent to scale
        // from.
        let bbox = dataset
            .relative_padded_bounding_box(0.5, 1.0)
            .ok_or(AsrsError::EmptyDataset)?;
        let spec = GridSpec::new(bbox, cols, rows);
        let dims = aggregator.stats_dim();
        let width = cols + 1;
        let mut base = vec![0.0; width * (rows + 1) * dims];
        let mut members: Vec<Vec<CellMember>> = vec![Vec::new(); width * (rows + 1)];
        let mut contrib = vec![0.0; dims];
        // Per-cell accumulation, in dataset order (the order incremental
        // maintenance reproduces — see the type-level documentation).
        for o in dataset.objects() {
            let cell = spec.clamped_cell_of_point(&o.location);
            contrib.iter_mut().for_each(|v| *v = 0.0);
            aggregator.accumulate_object(o, &mut contrib);
            let at = (cell.row * width + cell.col) * dims;
            for (k, v) in contrib.iter().enumerate() {
                base[at + k] += v;
            }
            members[cell.row * width + cell.col].push(CellMember {
                id: o.id,
                contribution: contrib.clone(),
            });
        }
        let mut index = Self {
            spec,
            stats_dim: dims,
            suffix: vec![0.0; base.len()],
            base,
            members: Some(members),
            objects_indexed: dataset.len(),
        };
        index.recompute_suffix();
        Ok(index)
    }

    /// Refreshes the suffix tables from the per-cell table: suffix sums
    /// along columns (right to left) then rows (top to bottom),
    /// `S[i][j] = cell[i][j] + S[i+1][j] + S[i][j+1] − S[i+1][j+1]`.
    /// Deterministic in the per-cell table alone, which is what makes
    /// incrementally maintained and freshly built indexes bit-identical.
    fn recompute_suffix(&mut self) {
        let cols = self.spec.cols();
        let rows = self.spec.rows();
        let dims = self.stats_dim;
        let width = cols + 1;
        self.suffix.copy_from_slice(&self.base);
        for row in (0..rows).rev() {
            for col in (0..cols).rev() {
                let cur = (row * width + col) * dims;
                let right = (row * width + col + 1) * dims;
                let up = ((row + 1) * width + col) * dims;
                let diag = ((row + 1) * width + col + 1) * dims;
                for k in 0..dims {
                    self.suffix[cur + k] +=
                        self.suffix[right + k] + self.suffix[up + k] - self.suffix[diag + k];
                }
            }
        }
    }

    /// Whether the grid geometry this index was built over still matches
    /// `dataset` — i.e. a fresh [`GridIndex::build`] over `dataset` would
    /// lay the identical grid.  When this returns `false` after a mutation
    /// (an append outside the padded bounding box, or a removal that shrank
    /// it), incremental maintenance would diverge from a rebuild and the
    /// caller must rebuild instead.
    pub fn space_matches(&self, dataset: &Dataset) -> bool {
        dataset.relative_padded_bounding_box(0.5, 1.0).as_ref() == Some(self.spec.space())
    }

    /// Incrementally folds one appended object into the index.
    ///
    /// The object must already be part of the dataset the index describes
    /// (appended at the tail), and the grid geometry must still match
    /// ([`GridIndex::space_matches`]); under those conditions the updated
    /// index is bit-identical to a fresh build over the mutated dataset.
    /// Cost: one cell update plus the `O(cols · rows · dims)` suffix sweep
    /// — independent of the dataset size.
    pub fn update_append(&mut self, object: &SpatialObject, aggregator: &CompositeAggregator) {
        debug_assert_eq!(aggregator.stats_dim(), self.stats_dim);
        let cell = self.spec.clamped_cell_of_point(&object.location);
        let width = self.spec.cols() + 1;
        let mut contrib = vec![0.0; self.stats_dim];
        aggregator.accumulate_object(object, &mut contrib);
        let at = (cell.row * width + cell.col) * self.stats_dim;
        for (k, v) in contrib.iter().enumerate() {
            self.base[at + k] += v;
        }
        if let Some(members) = &mut self.members {
            // Appends land at the dataset tail, so pushing keeps each
            // cell's list in dataset order.
            members[cell.row * width + cell.col].push(CellMember {
                id: object.id,
                contribution: contrib,
            });
        }
        self.objects_indexed += 1;
        self.recompute_suffix();
    }

    /// Incrementally removes one object from the index.
    ///
    /// `removed` is the object that was taken out and `dataset` the
    /// dataset *after* the removal; the removed object's cell is
    /// re-accumulated from the surviving members' stored contributions in
    /// dataset order (exactly the additions a rebuild would run —
    /// floating-point subtraction cannot undo an addition bit-exactly, so
    /// the cell is re-derived rather than decremented).  The grid geometry
    /// must still match ([`GridIndex::space_matches`]).  Cost: `O(cell)`
    /// via the membership lists plus the suffix sweep; an index restored
    /// from a persisted base table pays one `O(n)` pass on its first
    /// removal to materialise the lists.
    pub fn update_remove(
        &mut self,
        removed: &SpatialObject,
        dataset: &Dataset,
        aggregator: &CompositeAggregator,
    ) {
        debug_assert_eq!(aggregator.stats_dim(), self.stats_dim);
        let cell = self.spec.clamped_cell_of_point(&removed.location);
        let width = self.spec.cols() + 1;
        let slot = cell.row * width + cell.col;
        let members = match &mut self.members {
            Some(members) => {
                // Dropping the removed member keeps the survivors in
                // dataset order (dataset removals shift, never reorder).
                members[slot].retain(|m| m.id != removed.id);
                members
            }
            None => {
                // Restored index: one dataset pass rebuilds every cell's
                // list.  `dataset` is post-removal, so the fresh lists
                // already exclude the removed object.
                let mut fresh: Vec<Vec<CellMember>> =
                    vec![Vec::new(); width * (self.spec.rows() + 1)];
                let mut contrib = vec![0.0; self.stats_dim];
                for o in dataset.objects() {
                    let c = self.spec.clamped_cell_of_point(&o.location);
                    contrib.iter_mut().for_each(|v| *v = 0.0);
                    aggregator.accumulate_object(o, &mut contrib);
                    fresh[c.row * width + c.col].push(CellMember {
                        id: o.id,
                        contribution: contrib.clone(),
                    });
                }
                self.members.insert(fresh)
            }
        };
        let at = slot * self.stats_dim;
        self.base[at..at + self.stats_dim]
            .iter_mut()
            .for_each(|v| *v = 0.0);
        for member in &members[slot] {
            for (k, v) in member.contribution.iter().enumerate() {
                self.base[at + k] += v;
            }
        }
        self.objects_indexed = self.objects_indexed.saturating_sub(1);
        self.recompute_suffix();
    }

    /// The per-cell statistics table, for persistence.
    ///
    /// Together with the grid specification, the statistics dimensionality
    /// and the object count, this table fully determines the index: the
    /// suffix tables are a deterministic pure function of it, recomputed by
    /// [`GridIndex::from_base_table`].  Persisting only the base table
    /// halves the on-disk footprint while keeping the restored index
    /// bit-identical to the original.
    pub fn base_table(&self) -> &[f64] {
        &self.base
    }

    /// Reassembles an index from its persisted parts, recomputing the
    /// suffix tables with the same deterministic sweep [`GridIndex::build`]
    /// runs — the result is bit-identical to the index the base table was
    /// taken from.
    ///
    /// # Errors
    ///
    /// [`AsrsError::Persistence`] when the table length does not match the
    /// grid geometry times the statistics dimensionality.
    pub fn from_base_table(
        spec: GridSpec,
        stats_dim: usize,
        objects_indexed: usize,
        base: Vec<f64>,
    ) -> Result<Self, AsrsError> {
        let expected = (spec.cols() + 1) * (spec.rows() + 1) * stats_dim;
        if base.len() != expected {
            return Err(AsrsError::Persistence {
                message: format!(
                    "index base table has {} entries, grid {}x{} with {} stats dims needs {}",
                    base.len(),
                    spec.cols(),
                    spec.rows(),
                    stats_dim,
                    expected
                ),
            });
        }
        let mut index = Self {
            spec,
            stats_dim,
            suffix: vec![0.0; base.len()],
            base,
            // The base table cannot say which object contributed what;
            // the first removal materialises the lists from the dataset.
            members: None,
            objects_indexed,
        };
        index.recompute_suffix();
        Ok(index)
    }

    /// The derived suffix table, for invariant auditing: the auditor
    /// re-sweeps the base table and compares against this, bitwise.
    pub(crate) fn suffix_table(&self) -> &[f64] {
        &self.suffix
    }

    /// Test-only corruption hook for the auditor's negative tests.
    #[cfg(test)]
    pub(crate) fn corrupt_suffix_for_test(&mut self, at: usize, delta: f64) {
        self.suffix[at] += delta;
    }

    /// The geometric grid specification of the index.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Grid granularity `(cols, rows)`.
    pub fn granularity(&self) -> (usize, usize) {
        (self.spec.cols(), self.spec.rows())
    }

    /// Dimensionality of the statistics vectors stored per cell.
    pub fn stats_dim(&self) -> usize {
        self.stats_dim
    }

    /// Number of objects summarised by the index.
    pub fn objects_indexed(&self) -> usize {
        self.objects_indexed
    }

    /// Approximate memory footprint of the index in bytes (the paper's
    /// Table 1 "index size" column).
    pub fn memory_bytes(&self) -> usize {
        let member_bytes = self.members.as_ref().map_or(0, |members| {
            members
                .iter()
                .map(|cell| {
                    cell.len() * std::mem::size_of::<CellMember>()
                        + cell
                            .iter()
                            .map(|m| m.contribution.len() * std::mem::size_of::<f64>())
                            .sum::<usize>()
                })
                .sum::<usize>()
                + members.len() * std::mem::size_of::<Vec<CellMember>>()
        });
        (self.suffix.len() + self.base.len()) * std::mem::size_of::<f64>()
            + member_bytes
            + std::mem::size_of::<Self>()
    }

    #[inline]
    fn suffix_at(&self, col: usize, row: usize) -> &[f64] {
        let width = self.spec.cols() + 1;
        let base = (row * width + col) * self.stats_dim;
        &self.suffix[base..base + self.stats_dim]
    }

    /// Statistics of the objects located in the half-open block of cells
    /// `[col_start, col_end) × [row_start, row_end)`, by inclusion–exclusion
    /// over the suffix sums (Lemma 8).
    pub fn range_stats(
        &self,
        col_start: usize,
        col_end: usize,
        row_start: usize,
        row_end: usize,
    ) -> Vec<f64> {
        let cols = self.spec.cols();
        let rows = self.spec.rows();
        let c0 = col_start.min(cols);
        let c1 = col_end.min(cols);
        let r0 = row_start.min(rows);
        let r1 = row_end.min(rows);
        let mut out = vec![0.0; self.stats_dim];
        if c0 >= c1 || r0 >= r1 {
            return out;
        }
        let a = self.suffix_at(c0, r0);
        let b = self.suffix_at(c1, r0);
        let c = self.suffix_at(c0, r1);
        let d = self.suffix_at(c1, r1);
        for k in 0..self.stats_dim {
            // Clamp tiny negative values produced by floating-point
            // cancellation back to zero; statistics are sums of
            // non-negative or sign-separated contributions per slot.
            out[k] = a[k] - b[k] - c[k] + d[k];
        }
        out
    }

    /// Statistics of objects in cells entirely contained in `region`
    /// (a *lower* statistics vector for any candidate region containing
    /// `region`).
    pub fn stats_of_cells_contained(&self, region: &Rect) -> Vec<f64> {
        let range = self.spec.cells_contained(region);
        self.range_stats(
            range.col_start,
            range.col_end,
            range.row_start,
            range.row_end,
        )
    }

    /// Statistics of objects in cells overlapping `region` (an *upper*
    /// statistics vector for any candidate region contained in `region`).
    pub fn stats_of_cells_overlapping(&self, region: &Rect) -> Vec<f64> {
        let range = self.spec.cells_overlapping(region);
        self.range_stats(
            range.col_start,
            range.col_end,
            range.row_start,
            range.row_end,
        )
    }

    /// Statistics of the whole dataset.
    pub fn total_stats(&self) -> Vec<f64> {
        self.range_stats(0, self.spec.cols(), 0, self.spec.rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_aggregator::Selection;
    use asrs_data::gen::{PoiSynGenerator, UniformGenerator};

    fn setup() -> (Dataset, CompositeAggregator) {
        let ds = UniformGenerator::default().generate(400, 5);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        (ds, agg)
    }

    #[test]
    fn empty_dataset_yields_no_index() {
        let ds = Dataset::new_unchecked(asrs_data::Schema::empty(), vec![]);
        let agg = CompositeAggregator::builder(ds.schema())
            .count(Selection::All)
            .build()
            .unwrap();
        assert_eq!(
            GridIndex::build(&ds, &agg, 8, 8).unwrap_err(),
            AsrsError::EmptyDataset
        );
    }

    #[test]
    fn zero_granularity_is_an_error_not_a_panic() {
        let (ds, agg) = setup();
        assert!(matches!(
            GridIndex::build(&ds, &agg, 0, 8),
            Err(AsrsError::Config(ConfigError::InvalidIndexGranularity {
                cols: 0,
                rows: 8
            }))
        ));
    }

    #[test]
    fn total_stats_match_direct_aggregation() {
        let (ds, agg) = setup();
        let index = GridIndex::build(&ds, &agg, 16, 16).unwrap();
        let direct = agg.stats_of(ds.objects());
        let indexed = index.total_stats();
        for (a, b) in direct.iter().zip(&indexed) {
            assert!((a - b).abs() < 1e-6, "direct {a} vs indexed {b}");
        }
        assert_eq!(index.objects_indexed(), 400);
        assert_eq!(index.granularity(), (16, 16));
    }

    #[test]
    fn range_stats_match_per_cell_recount() {
        let (ds, agg) = setup();
        let index = GridIndex::build(&ds, &agg, 10, 10).unwrap();
        let spec = index.spec().clone();
        // Check a handful of sub-blocks against a direct recount.
        for (c0, c1, r0, r1) in [(0, 10, 0, 10), (2, 7, 3, 9), (0, 1, 0, 1), (5, 5, 2, 8)] {
            let expected = agg.stats_of(ds.objects().filter(|o| {
                let cell = spec.clamped_cell_of_point(&o.location);
                cell.col >= c0 && cell.col < c1 && cell.row >= r0 && cell.row < r1
            }));
            let got = index.range_stats(c0, c1, r0, r1);
            for (a, b) in expected.iter().zip(&got) {
                assert!(
                    (a - b).abs() < 1e-6,
                    "block ({c0}..{c1}, {r0}..{r1}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn contained_and_overlapping_stats_bracket_a_region() {
        let (ds, agg) = setup();
        let index = GridIndex::build(&ds, &agg, 32, 32).unwrap();
        let region = Rect::new(20.0, 20.0, 60.0, 55.0);
        let lower = index.stats_of_cells_contained(&region);
        let upper = index.stats_of_cells_overlapping(&region);
        let exact = agg.stats_of(
            ds.objects()
                .filter(|o| region.strictly_contains_point(&o.location)),
        );
        // For count-like slots (the distribution counts), lower ≤ exact ≤
        // upper must hold.
        for k in 0..agg.stats_dim() {
            assert!(
                lower[k] <= exact[k] + 1e-9,
                "slot {k}: lower {} > exact {}",
                lower[k],
                exact[k]
            );
            assert!(
                exact[k] <= upper[k] + 1e-9,
                "slot {k}: exact {} > upper {}",
                exact[k],
                upper[k]
            );
        }
    }

    #[test]
    fn micro_extent_datasets_get_a_proportionate_grid() {
        // Regression test: a lat/lon-scale neighbourhood (~0.01 wide,
        // collinear in y) used to be padded by an *absolute* 1.0 per side,
        // so the 16x16 grid spanned 2.0 vertically and all objects crowded
        // into a single row of cells — the other 240 cells were dead
        // padding.  With extent-relative padding the grid must stay within
        // the same order of magnitude as the data.
        use asrs_data::{AttrValue, AttributeDef, AttributeKind, DatasetBuilder, Schema};
        let schema = Schema::new(vec![AttributeDef::new(
            "category",
            AttributeKind::categorical(2),
        )]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..32 {
            b.push(
                10.0 + 0.01 * (i as f64 / 31.0),
                5.0,
                vec![AttrValue::Cat(i % 2)],
            );
        }
        let ds = b.build().unwrap();
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let index = GridIndex::build(&ds, &agg, 16, 16).unwrap();
        let space = *index.spec().space();
        assert!(
            space.height() <= space.width() * 2.0,
            "grid space {space:?} must not be dominated by padding"
        );
        // Objects spread over many columns instead of crowding into one.
        let spec = index.spec().clone();
        let distinct_cols: std::collections::HashSet<usize> = ds
            .objects()
            .map(|o| spec.clamped_cell_of_point(&o.location).col)
            .collect();
        assert!(
            distinct_cols.len() >= 8,
            "objects occupy only {} of 16 columns",
            distinct_cols.len()
        );
        // And the summaries stay correct.
        let direct = agg.stats_of(ds.objects());
        for (a, b) in direct.iter().zip(&index.total_stats()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn incremental_appends_are_bit_identical_to_a_rebuild() {
        let (ds, agg) = setup();
        let mut mutated = ds.clone();
        let mut index = GridIndex::build(&ds, &agg, 12, 12).unwrap();
        let bbox = ds.bounding_box().unwrap();
        // Append a run of objects strictly inside the extent (the geometry
        // stays put, so incremental maintenance applies).
        for i in 0..20u64 {
            let f = i as f64 / 19.0;
            let object = asrs_data::SpatialObject::new(
                10_000 + i,
                asrs_geo::Point::new(
                    bbox.min_x + bbox.width() * (0.05 + 0.9 * f),
                    bbox.min_y + bbox.height() * (0.95 - 0.9 * f),
                ),
                ds.object(i as usize % ds.len()).values.clone(),
            );
            mutated.append(object.clone()).unwrap();
            assert!(index.space_matches(&mutated));
            index.update_append(&object, &agg);
        }
        let rebuilt = GridIndex::build(&mutated, &agg, 12, 12).unwrap();
        assert_eq!(index.objects_indexed(), rebuilt.objects_indexed());
        assert_eq!(index.spec(), rebuilt.spec());
        for (a, b) in index.suffix.iter().zip(&rebuilt.suffix) {
            assert_eq!(a.to_bits(), b.to_bits(), "suffix tables must match bitwise");
        }
        for (a, b) in index.base.iter().zip(&rebuilt.base) {
            assert_eq!(a.to_bits(), b.to_bits(), "cell tables must match bitwise");
        }
    }

    #[test]
    fn incremental_removals_are_bit_identical_to_a_rebuild() {
        let (ds, agg) = setup();
        let mut mutated = ds.clone();
        let mut index = GridIndex::build(&ds, &agg, 10, 14).unwrap();
        // Remove a scatter of interior objects; skip any whose removal
        // would shrink the bounding box (those demand a rebuild and are
        // exercised by `space_matches`).
        let mut removed_count = 0;
        for id in [3u64, 57, 123, 200, 310, 399, 42, 271] {
            let mut probe = mutated.clone();
            let Some(removed) = probe.remove_by_id(id) else {
                continue;
            };
            if !index.space_matches(&probe) {
                continue;
            }
            mutated = probe;
            index.update_remove(&removed, &mutated, &agg);
            removed_count += 1;
        }
        assert!(removed_count >= 4, "the sweep must actually remove objects");
        let rebuilt = GridIndex::build(&mutated, &agg, 10, 14).unwrap();
        assert_eq!(index.objects_indexed(), rebuilt.objects_indexed());
        for (a, b) in index.suffix.iter().zip(&rebuilt.suffix) {
            assert_eq!(a.to_bits(), b.to_bits(), "suffix tables must match bitwise");
        }
    }

    #[test]
    fn space_matches_detects_geometry_changes() {
        let (ds, agg) = setup();
        let index = GridIndex::build(&ds, &agg, 8, 8).unwrap();
        assert!(index.space_matches(&ds));
        let mut grown = ds.clone();
        let bbox = ds.bounding_box().unwrap();
        grown
            .append(asrs_data::SpatialObject::new(
                99_999,
                asrs_geo::Point::new(bbox.max_x + 10.0, bbox.max_y + 10.0),
                ds.object(0).values.clone(),
            ))
            .unwrap();
        assert!(
            !index.space_matches(&grown),
            "an append outside the box must demand a rebuild"
        );
    }

    #[test]
    fn memory_grows_with_granularity() {
        let (ds, agg) = setup();
        let small = GridIndex::build(&ds, &agg, 16, 16).unwrap();
        let large = GridIndex::build(&ds, &agg, 64, 64).unwrap();
        assert!(large.memory_bytes() > small.memory_bytes());
        assert!(small.memory_bytes() > 0);
    }

    #[test]
    fn works_with_numeric_aggregators() {
        let ds = PoiSynGenerator::compact(4).generate(500, 3);
        let agg = CompositeAggregator::builder(ds.schema())
            .sum("visits", Selection::All)
            .average("rating", Selection::All)
            .build()
            .unwrap();
        let index = GridIndex::build(&ds, &agg, 20, 20).unwrap();
        let total = index.total_stats();
        let direct = agg.stats_of(ds.objects());
        for (a, b) in direct.iter().zip(&total) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn degenerate_ranges_return_zero() {
        let (ds, agg) = setup();
        let index = GridIndex::build(&ds, &agg, 8, 8).unwrap();
        assert!(index.range_stats(3, 3, 0, 8).iter().all(|v| *v == 0.0));
        assert!(index.range_stats(5, 2, 0, 8).iter().all(|v| *v == 0.0));
        let far = Rect::new(1e6, 1e6, 2e6, 2e6);
        assert!(index
            .stats_of_cells_overlapping(&far)
            .iter()
            .all(|v| *v == 0.0));
    }
}
