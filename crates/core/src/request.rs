//! The declarative query surface: [`QueryRequest`] in, [`QueryResponse`]
//! out.
//!
//! A request is a plain serializable value describing *what* the caller
//! wants — it names no algorithm.  The engine's
//! [`Planner`](crate::Planner) turns a request plus dataset/index
//! statistics into an [`ExecutionPlan`](crate::ExecutionPlan) choosing the
//! backend, and [`AsrsEngine::submit`](crate::AsrsEngine::submit) executes
//! the plan.  Because requests and responses round-trip through JSON they
//! can cross process boundaries, be queued, logged and replayed — the
//! prerequisite for serving the engine to many concurrent users.

use crate::maxrs::MaxRsResult;
use crate::query::AsrsQuery;
use crate::result::SearchResult;
use crate::stats::SearchStats;
use asrs_aggregator::Selection;
use asrs_geo::RegionSize;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::hash::{Hash, Hasher};

/// A concrete search backend a plan can dispatch to.
///
/// Unlike [`Strategy`](crate::Strategy) — the engine-level *policy* which
/// includes the `Auto` deferral — a `Backend` is always a concrete
/// algorithm; it is what a finished [`ExecutionPlan`](crate::ExecutionPlan)
/// names and what a request can force via [`QueryRequest::with_backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// The exact discretize–split algorithm (no index needed).
    DsSearch,
    /// The grid-index-accelerated algorithm; requires an index.
    GiDs,
    /// The exhaustive arrangement oracle — exact but `O(n²)` probes.
    Naive,
}

impl Backend {
    /// The short human-readable backend name used in logs and plans.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::DsSearch => "ds-search",
            Backend::GiDs => "gi-ds",
            Backend::Naive => "naive",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A declarative query: every operation the engine supports, as one
/// serializable value.
///
/// Construct requests with the associated functions ([`QueryRequest::similar`],
/// [`QueryRequest::top_k`], …) and attach per-request execution options with
/// the [`QueryRequest::with_budget_ms`] / [`QueryRequest::with_backend`]
/// combinators, which wrap the operation in a [`QueryRequest::Configured`]
/// envelope:
///
/// ```
/// use asrs_core::{Backend, QueryRequest};
/// use asrs_geo::RegionSize;
///
/// let req = QueryRequest::max_rs(RegionSize::new(10.0, 10.0))
///     .with_budget_ms(250)
///     .with_backend(Backend::DsSearch);
/// let json = serde::json::to_string(&req);
/// let back: QueryRequest = serde::json::from_str(&json).unwrap();
/// assert_eq!(back, req);
/// assert_eq!(back.budget_ms(), Some(250));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryRequest {
    /// Find the single region most similar to the query representation.
    Similar {
        /// The ASRS query (size, target, weights, metric).
        query: AsrsQuery,
    },
    /// Find the `k` best candidate regions with pairwise distinct anchors.
    TopK {
        /// The ASRS query.
        query: AsrsQuery,
        /// Number of ranked results requested (must be ≥ 1).
        k: usize,
    },
    /// Answer many similar-region queries; results come back in input
    /// order.
    Batch {
        /// The queries, answered independently.
        queries: Vec<AsrsQuery>,
    },
    /// The (1+δ)-approximate variant: the returned region's distance is at
    /// most `1 + delta` times the optimum (Section 6 of the paper).
    Approximate {
        /// The ASRS query.
        query: AsrsQuery,
        /// Approximation parameter δ ≥ 0 (0 = exact).
        delta: f64,
    },
    /// The MaxRS problem: the `a × b` region enclosing the maximum number
    /// of objects (Section 7.5).
    MaxRs {
        /// Size of the region to place.
        size: RegionSize,
    },
    /// The class-constrained MaxRS variant: counts only objects accepted by
    /// the selection.
    MaxRsSelective {
        /// Size of the region to place.
        size: RegionSize,
        /// Which objects count.
        selection: Selection,
    },
    /// An envelope attaching execution options to an inner request; the
    /// options do not change *what* is computed, only *how*.
    Configured {
        /// The wrapped operation (possibly itself configured; inner
        /// envelopes are read outside-in, the outermost setting wins).
        request: Box<QueryRequest>,
        /// Optional wall-clock budget in milliseconds; execution aborts
        /// with [`AsrsError::DeadlineExceeded`](crate::AsrsError::DeadlineExceeded)
        /// once spent.
        budget_ms: Option<u64>,
        /// Optional forced backend, bypassing the planner's cost model.
        backend: Option<Backend>,
    },
}

impl QueryRequest {
    /// A [`QueryRequest::Similar`] request.
    pub fn similar(query: AsrsQuery) -> Self {
        QueryRequest::Similar { query }
    }

    /// A [`QueryRequest::TopK`] request.
    pub fn top_k(query: AsrsQuery, k: usize) -> Self {
        QueryRequest::TopK { query, k }
    }

    /// A [`QueryRequest::Batch`] request.
    pub fn batch(queries: Vec<AsrsQuery>) -> Self {
        QueryRequest::Batch { queries }
    }

    /// A [`QueryRequest::Approximate`] request.
    pub fn approximate(query: AsrsQuery, delta: f64) -> Self {
        QueryRequest::Approximate { query, delta }
    }

    /// A [`QueryRequest::MaxRs`] request.
    pub fn max_rs(size: RegionSize) -> Self {
        QueryRequest::MaxRs { size }
    }

    /// A [`QueryRequest::MaxRsSelective`] request.
    pub fn max_rs_selective(size: RegionSize, selection: Selection) -> Self {
        QueryRequest::MaxRsSelective { size, selection }
    }

    /// Attaches a wall-clock budget in milliseconds (see
    /// [`Budget`](crate::Budget)), wrapping the request in a
    /// [`QueryRequest::Configured`] envelope when needed.
    pub fn with_budget_ms(self, budget_ms: u64) -> Self {
        match self {
            QueryRequest::Configured {
                request, backend, ..
            } => QueryRequest::Configured {
                request,
                budget_ms: Some(budget_ms),
                backend,
            },
            op => QueryRequest::Configured {
                request: Box::new(op),
                budget_ms: Some(budget_ms),
                backend: None,
            },
        }
    }

    /// Forces a backend, bypassing the planner's cost model, wrapping the
    /// request in a [`QueryRequest::Configured`] envelope when needed.
    pub fn with_backend(self, backend: Backend) -> Self {
        match self {
            QueryRequest::Configured {
                request, budget_ms, ..
            } => QueryRequest::Configured {
                request,
                budget_ms,
                backend: Some(backend),
            },
            op => QueryRequest::Configured {
                request: Box::new(op),
                budget_ms: None,
                backend: Some(backend),
            },
        }
    }

    /// The innermost operation, with every [`QueryRequest::Configured`]
    /// envelope peeled off.
    pub fn operation(&self) -> &QueryRequest {
        let mut op = self;
        while let QueryRequest::Configured { request, .. } = op {
            op = request;
        }
        op
    }

    /// The effective wall-clock budget in milliseconds, if any.  With
    /// nested envelopes the outermost setting wins.
    pub fn budget_ms(&self) -> Option<u64> {
        let mut op = self;
        while let QueryRequest::Configured {
            request, budget_ms, ..
        } = op
        {
            if budget_ms.is_some() {
                return *budget_ms;
            }
            op = request;
        }
        None
    }

    /// The effective forced backend, if any.  With nested envelopes the
    /// outermost setting wins.
    pub fn forced_backend(&self) -> Option<Backend> {
        let mut op = self;
        while let QueryRequest::Configured {
            request, backend, ..
        } = op
        {
            if backend.is_some() {
                return *backend;
            }
            op = request;
        }
        None
    }

    /// A short name of the operation (envelope-transparent), for plans and
    /// error messages.
    pub fn operation_name(&self) -> &'static str {
        match self.operation() {
            QueryRequest::Similar { .. } => "similar",
            QueryRequest::TopK { .. } => "top-k",
            QueryRequest::Batch { .. } => "batch",
            QueryRequest::Approximate { .. } => "approximate",
            QueryRequest::MaxRs { .. } => "max-rs",
            QueryRequest::MaxRsSelective { .. } => "max-rs-selective",
            // lint:allow(operation() strips every Configured envelope before this match; the arm is statically dead)
            QueryRequest::Configured { .. } => unreachable!("operation() peels envelopes"),
        }
    }

    /// The region size the operation searches for, used by the planner's
    /// cost model.  Batch requests report their largest query (the most
    /// index-hostile one); empty batches report `None`.
    pub(crate) fn planning_size(&self) -> Option<RegionSize> {
        match self.operation() {
            QueryRequest::Similar { query }
            | QueryRequest::TopK { query, .. }
            | QueryRequest::Approximate { query, .. } => Some(query.size),
            QueryRequest::Batch { queries } => batch_planning_size(queries),
            QueryRequest::MaxRs { size } | QueryRequest::MaxRsSelective { size, .. } => Some(*size),
            // lint:allow(operation() strips every Configured envelope before this match; the arm is statically dead)
            QueryRequest::Configured { .. } => unreachable!("operation() peels envelopes"),
        }
    }
}

/// A canonical fingerprint of a [`QueryRequest`], usable as a lookup key
/// (`Hash + Eq`) for the engine's query-result cache.
///
/// Two requests that describe the same computation map to the same key
/// even when their float components differ in representation only:
/// `-0.0` and `+0.0` collapse to one bit pattern, and every NaN collapses
/// to the canonical quiet NaN (a NaN never validates, but it must not be
/// able to poison the key space either).  All other floats are compared by
/// exact bits, so keys never conflate genuinely different requests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestKey(Vec<u8>);

impl RequestKey {
    /// Stamps the key with an engine generation, producing the composite
    /// key a *mutable* engine caches under.
    ///
    /// The generation is prepended to the canonical fingerprint, so the
    /// same request submitted before and after a mutation maps to two
    /// disjoint keys — a stale hit is structurally impossible rather than
    /// merely invalidated.  Entries of superseded generations age out of
    /// the cache through normal LRU eviction.
    pub fn stamped(mut self, generation: u64) -> RequestKey {
        let mut bytes = Vec::with_capacity(self.0.len() + 8);
        bytes.extend_from_slice(&generation.to_le_bytes());
        bytes.append(&mut self.0);
        RequestKey(bytes)
    }

    /// The generation a [`RequestKey::stamped`] key was stamped with —
    /// the stamp is the key's first eight little-endian bytes.  `None`
    /// for a key too short to carry one (an unstamped key of a tiny
    /// request); the invariant auditor treats those as unstamped.
    pub(crate) fn generation_stamp(&self) -> Option<u64> {
        let bytes: [u8; 8] = self.0.get(..8)?.try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }
}

/// Collapses `-0.0`/`+0.0` and all NaN payloads; every other value keeps
/// its exact bit pattern.
fn canonical_f64_bits(v: f64) -> u64 {
    if v == 0.0 {
        0
    } else if v.is_nan() {
        0x7ff8_0000_0000_0000
    } else {
        v.to_bits()
    }
}

/// Encodes a serde value into an unambiguous byte string: one tag byte per
/// shape, lengths before variable-size payloads, floats as canonical bits.
fn encode_canonical(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Num(n) => {
            out.push(2);
            out.extend_from_slice(&canonical_f64_bits(*n).to_le_bytes());
        }
        Value::UInt(n) => {
            out.push(3);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(5);
            out.extend_from_slice(&(items.len() as u64).to_le_bytes());
            for item in items {
                encode_canonical(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(6);
            out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
            for (key, item) in entries {
                out.extend_from_slice(&(key.len() as u64).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                encode_canonical(item, out);
            }
        }
    }
}

impl QueryRequest {
    /// The canonical cache key of this request (see [`RequestKey`]).
    ///
    /// The key is derived from the request's serde value tree, so it covers
    /// every variant — including [`QueryRequest::Configured`] envelopes,
    /// whose budget and backend legitimately change what a response looks
    /// like (a deadline can fail one phrasing of a request and not
    /// another).
    pub fn cache_key(&self) -> RequestKey {
        let mut bytes = Vec::with_capacity(128);
        encode_canonical(&self.to_value(), &mut bytes);
        RequestKey(bytes)
    }
}

/// Hashing follows the canonical fingerprint: requests equal under the
/// derived `PartialEq` hash identically (`-0.0 == 0.0` and both canonicalise
/// to the same bits; NaN components make a request unequal to everything
/// including itself, so they impose no constraint).
impl Hash for QueryRequest {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write(&self.cache_key().0);
    }
}

/// The representative size the planner uses for a batch: its largest (most
/// index-hostile) query by area.  Shared by [`QueryRequest::planning_size`]
/// and the legacy `search_batch` shim so the two plan identically.
pub(crate) fn batch_planning_size(queries: &[AsrsQuery]) -> Option<RegionSize> {
    queries
        .iter()
        .map(|q| q.size)
        .max_by(|a, b| a.area().total_cmp(&b.area()))
}

/// The results of one executed operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// The single best region ([`QueryRequest::Similar`] /
    /// [`QueryRequest::Approximate`]).
    Best(SearchResult),
    /// Up to `k` regions, best first ([`QueryRequest::TopK`]).
    Ranked(Vec<SearchResult>),
    /// One result per input query, in input order
    /// ([`QueryRequest::Batch`]).
    Batch(Vec<SearchResult>),
    /// The MaxRS answer ([`QueryRequest::MaxRs`] /
    /// [`QueryRequest::MaxRsSelective`]).
    MaxRs(MaxRsResult),
}

/// The engine's answer to a [`QueryRequest`]: the results, the backend the
/// planner chose, and the merged search statistics — which the legacy
/// per-operation methods used to compute and drop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResponse {
    /// The backend that executed the request.
    pub backend: Backend,
    /// The results.
    pub outcome: QueryOutcome,
    /// Statistics of the execution.  For batch requests this is the
    /// [`SearchStats::merge`] of every per-query run; for the other
    /// operations it equals the single run's statistics.
    pub stats: SearchStats,
}

impl QueryResponse {
    /// Assembles a response, deriving the statistics from the outcome: the
    /// single run's stats for best/ranked/MaxRS outcomes, the
    /// [`SearchStats::merge`] of every per-query run for a batch.
    pub(crate) fn from_outcome(backend: Backend, outcome: QueryOutcome) -> Self {
        let stats = match &outcome {
            QueryOutcome::Best(r) => r.stats.clone(),
            // Every top-k entry carries the statistics of the one run that
            // produced the ranking, so report them once rather than
            // merging k copies of the same counters.
            QueryOutcome::Ranked(rs) => rs.first().map(|r| r.stats.clone()).unwrap_or_default(),
            QueryOutcome::Batch(rs) => {
                let mut stats = SearchStats::new();
                for r in rs {
                    stats.merge(&r.stats);
                }
                stats
            }
            QueryOutcome::MaxRs(r) => r.stats.clone(),
        };
        Self {
            backend,
            outcome,
            stats,
        }
    }

    /// The best region of the response: the single result for
    /// similar/approximate, the top-ranked result for top-k, and `None`
    /// for batch (which has no global ranking) and MaxRS responses.
    pub fn best(&self) -> Option<&SearchResult> {
        match &self.outcome {
            QueryOutcome::Best(r) => Some(r),
            QueryOutcome::Ranked(rs) => rs.first(),
            QueryOutcome::Batch(_) | QueryOutcome::MaxRs(_) => None,
        }
    }

    /// All region results carried by the response (empty for MaxRS).
    pub fn results(&self) -> &[SearchResult] {
        match &self.outcome {
            QueryOutcome::Best(r) => std::slice::from_ref(r),
            QueryOutcome::Ranked(rs) | QueryOutcome::Batch(rs) => rs,
            QueryOutcome::MaxRs(_) => &[],
        }
    }

    /// The MaxRS result, when the request was a MaxRS variant.
    pub fn max_rs(&self) -> Option<&MaxRsResult> {
        match &self.outcome {
            QueryOutcome::MaxRs(r) => Some(r),
            _ => None,
        }
    }

    /// A copy of the response with every [`SearchStats`] record (top-level
    /// and per-result) reset to its default.
    ///
    /// This is the comparison form of the sharded-engine parity guarantee:
    /// outcomes — regions, anchors, distances, representations, counts and
    /// the chosen backend — are byte-identical across shard counts, while
    /// the statistics necessarily describe the decomposition that ran
    /// (different shard counts discretise different sub-spaces and report
    /// different wall clocks).  Differential tests serialize
    /// `stats_stripped()` responses and compare the bytes.
    pub fn stats_stripped(&self) -> QueryResponse {
        let mut stripped = self.clone();
        stripped.stats = SearchStats::default();
        match &mut stripped.outcome {
            QueryOutcome::Best(r) => r.stats = SearchStats::default(),
            QueryOutcome::Ranked(rs) | QueryOutcome::Batch(rs) => {
                for r in rs {
                    r.stats = SearchStats::default();
                }
            }
            QueryOutcome::MaxRs(r) => r.stats = SearchStats::default(),
        }
        stripped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_aggregator::{FeatureVector, Weights};

    fn query() -> AsrsQuery {
        AsrsQuery::new(
            RegionSize::new(3.0, 4.0),
            FeatureVector::new(vec![1.0, 2.0]),
            Weights::uniform(2),
        )
    }

    #[test]
    fn combinators_wrap_once_and_update_in_place() {
        let req = QueryRequest::similar(query())
            .with_budget_ms(100)
            .with_backend(Backend::Naive)
            .with_budget_ms(50);
        // One envelope, both options set, the later budget wins.
        assert!(matches!(
            &req,
            QueryRequest::Configured {
                request,
                budget_ms: Some(50),
                backend: Some(Backend::Naive),
            } if matches!(**request, QueryRequest::Similar { .. })
        ));
        assert_eq!(req.budget_ms(), Some(50));
        assert_eq!(req.forced_backend(), Some(Backend::Naive));
        assert_eq!(req.operation_name(), "similar");
    }

    #[test]
    fn nested_envelopes_read_outside_in() {
        let inner = QueryRequest::Configured {
            request: Box::new(QueryRequest::max_rs(RegionSize::new(1.0, 1.0))),
            budget_ms: Some(10),
            backend: Some(Backend::DsSearch),
        };
        let outer = QueryRequest::Configured {
            request: Box::new(inner),
            budget_ms: Some(99),
            backend: None,
        };
        assert_eq!(outer.budget_ms(), Some(99));
        assert_eq!(outer.forced_backend(), Some(Backend::DsSearch));
        assert!(matches!(outer.operation(), QueryRequest::MaxRs { .. }));
    }

    #[test]
    fn planning_size_reports_the_largest_batch_query() {
        let mut small = query();
        small.size = RegionSize::new(1.0, 1.0);
        let mut large = query();
        large.size = RegionSize::new(9.0, 9.0);
        let req = QueryRequest::batch(vec![small, large]);
        assert_eq!(req.planning_size(), Some(RegionSize::new(9.0, 9.0)));
        assert_eq!(QueryRequest::batch(vec![]).planning_size(), None);
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        let requests = vec![
            QueryRequest::similar(query()),
            QueryRequest::top_k(query(), 4),
            QueryRequest::batch(vec![query(), query()]),
            QueryRequest::approximate(query(), 0.25),
            QueryRequest::max_rs(RegionSize::new(5.0, 6.0)),
            QueryRequest::max_rs_selective(RegionSize::new(5.0, 6.0), Selection::cat_equals(0, 2)),
            QueryRequest::top_k(query(), 2)
                .with_budget_ms(750)
                .with_backend(Backend::GiDs),
        ];
        for req in requests {
            let json = serde::json::to_string(&req);
            let back: QueryRequest = serde::json::from_str(&json).unwrap();
            assert_eq!(back, req, "round trip failed for {json}");
        }
    }

    #[test]
    fn cache_keys_canonicalise_floats_and_separate_requests() {
        let base = QueryRequest::similar(query());
        assert_eq!(base.cache_key(), base.cache_key(), "keys are deterministic");

        // -0.0 and +0.0 describe the same computation.
        let mut negzero = query();
        negzero.target = FeatureVector::new(vec![1.0, -0.0]);
        let mut poszero = query();
        poszero.target = FeatureVector::new(vec![1.0, 0.0]);
        assert_eq!(
            QueryRequest::similar(negzero).cache_key(),
            QueryRequest::similar(poszero).cache_key()
        );

        // Different operations, parameters and envelopes all separate.
        assert_ne!(
            base.cache_key(),
            QueryRequest::top_k(query(), 2).cache_key()
        );
        assert_ne!(
            QueryRequest::top_k(query(), 2).cache_key(),
            QueryRequest::top_k(query(), 3).cache_key()
        );
        assert_ne!(
            base.cache_key(),
            base.clone().with_budget_ms(10).cache_key(),
            "a budget changes failure behaviour, so it must change the key"
        );
        assert_ne!(
            base.clone().with_backend(Backend::Naive).cache_key(),
            base.clone().with_backend(Backend::DsSearch).cache_key()
        );

        // All NaN payloads collapse to one key (and never collide with a
        // real value's key by construction).
        let mut nan_a = query();
        nan_a.target = FeatureVector::new(vec![1.0, f64::NAN]);
        let mut nan_b = query();
        nan_b.target = FeatureVector::new(vec![1.0, f64::from_bits(0x7ff8_dead_beef_0000)]);
        assert_eq!(
            QueryRequest::similar(nan_a).cache_key(),
            QueryRequest::similar(nan_b).cache_key()
        );
    }

    #[test]
    fn generation_stamps_separate_otherwise_equal_keys() {
        let req = QueryRequest::similar(query());
        let g0 = req.cache_key().stamped(0);
        let g1 = req.cache_key().stamped(1);
        assert_ne!(g0, g1, "different generations must never collide");
        assert_eq!(g0, req.cache_key().stamped(0), "stamping is deterministic");
        // Stamping must not conflate different requests of one generation.
        assert_ne!(
            QueryRequest::top_k(query(), 2).cache_key().stamped(3),
            QueryRequest::top_k(query(), 4).cache_key().stamped(3)
        );
    }

    #[test]
    fn equal_requests_hash_identically() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash_of = |r: &QueryRequest| {
            let mut h = DefaultHasher::new();
            r.hash(&mut h);
            h.finish()
        };
        let a = QueryRequest::top_k(query(), 4).with_budget_ms(100);
        let b = QueryRequest::top_k(query(), 4).with_budget_ms(100);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::DsSearch.name(), "ds-search");
        assert_eq!(Backend::GiDs.to_string(), "gi-ds");
        assert_eq!(Backend::Naive.name(), "naive");
    }
}
