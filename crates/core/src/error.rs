//! The unified error type of the ASRS engine.
//!
//! Every fallible public operation in `asrs-core` — configuration
//! building, index construction, engine assembly and all `search*` paths —
//! reports failures through [`AsrsError`].  The per-layer error types
//! ([`QueryError`](crate::QueryError), [`ConfigError`]) convert into it via
//! `From`, so `?` composes across layers.

use crate::query::QueryError;
use asrs_data::SchemaError;
use std::fmt;
use std::time::Duration;

/// Errors raised when validating a [`SearchConfig`](crate::SearchConfig).
///
/// These replace the panicking `assert!`s the configuration builders used
/// to have: invalid settings are reported as values, never as panics.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The discretisation grid is smaller than 2 × 2, so `Split` could
    /// never shrink a space.
    GridTooCoarse {
        /// Requested number of columns.
        ncols: usize,
        /// Requested number of rows.
        nrows: usize,
    },
    /// The approximation parameter δ is negative or not finite.
    InvalidDelta {
        /// The offending value.
        delta: f64,
    },
    /// An explicit GPS accuracy has a non-positive or non-finite component.
    InvalidAccuracy {
        /// Horizontal accuracy ΔX.
        dx: f64,
        /// Vertical accuracy ΔY.
        dy: f64,
    },
    /// The accuracy floor is negative or not finite.
    InvalidAccuracyFloor {
        /// The offending value.
        floor: f64,
    },
    /// A termination safety valve (`max_depth` / `max_spaces`) is zero, so
    /// the search could not process a single space.
    InvalidLimit {
        /// Name of the offending field.
        field: &'static str,
    },
    /// A grid-index granularity has a zero side.
    InvalidIndexGranularity {
        /// Requested number of columns.
        cols: usize,
        /// Requested number of rows.
        rows: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::GridTooCoarse { ncols, nrows } => {
                write!(
                    f,
                    "discretisation grid must be at least 2 x 2, got {ncols} x {nrows}"
                )
            }
            ConfigError::InvalidDelta { delta } => {
                write!(
                    f,
                    "approximation parameter delta must be finite and non-negative, got {delta}"
                )
            }
            ConfigError::InvalidAccuracy { dx, dy } => {
                write!(
                    f,
                    "accuracy components must be finite and positive, got ({dx}, {dy})"
                )
            }
            ConfigError::InvalidAccuracyFloor { floor } => {
                write!(
                    f,
                    "accuracy floor must be finite and non-negative, got {floor}"
                )
            }
            ConfigError::InvalidLimit { field } => {
                write!(f, "termination limit `{field}` must be positive")
            }
            ConfigError::InvalidIndexGranularity { cols, rows } => {
                write!(
                    f,
                    "index grid must have at least one cell per axis, got {cols} x {rows}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The unified error type of every fallible `asrs-core` API.
#[derive(Debug, Clone, PartialEq)]
pub enum AsrsError {
    /// The query does not fit the engine's aggregator or is malformed.
    Query(QueryError),
    /// The search configuration is invalid.
    Config(ConfigError),
    /// The operation needs at least one object, but the dataset is empty
    /// (e.g. building a grid index).
    EmptyDataset,
    /// A strategy that requires a grid index was selected, but the engine
    /// has none attached.
    IndexRequired {
        /// Name of the strategy that needed the index.
        strategy: &'static str,
    },
    /// An attached grid index was built for a different aggregator: its
    /// statistics vectors have the wrong dimensionality.
    IndexMismatch {
        /// Statistics dimensions stored per index cell.
        index_dims: usize,
        /// Statistics dimensions the engine's aggregator produces.
        aggregator_dims: usize,
    },
    /// `search_top_k` was asked for zero results.
    InvalidTopK,
    /// A MaxRS region size is non-positive or non-finite.
    InvalidRegionSize {
        /// Requested width.
        width: f64,
        /// Requested height.
        height: f64,
    },
    /// A request's wall-clock execution budget was spent before the search
    /// finished (see [`Budget`](crate::Budget)).
    DeadlineExceeded {
        /// The allowance the request started with.
        budget: Duration,
    },
    /// A backend was forced for an operation it cannot execute (e.g. GI-DS
    /// for MaxRS, which always runs on the DS-Search adaptation).
    BackendUnsupported {
        /// Name of the forced backend.
        backend: &'static str,
        /// Name of the operation it cannot run.
        operation: &'static str,
    },
    /// An appended object does not conform to the dataset schema.
    Schema(SchemaError),
    /// An appended object carries an id that already exists in the dataset.
    /// Mutable engines enforce id uniqueness so removal-by-id stays
    /// unambiguous.
    DuplicateObjectId {
        /// The colliding id.
        id: u64,
    },
    /// A removal referenced an id no object carries.
    UnknownObjectId {
        /// The missing id.
        id: u64,
    },
    /// The planner's cost estimate for the chosen backend exceeds the
    /// engine's admission ceiling (see
    /// [`Planner::cost_ceiling`](crate::Planner::cost_ceiling)); the
    /// request was rejected *before* execution.  Servers map this to
    /// HTTP 429.
    CostCeilingExceeded {
        /// Estimated work of the chosen backend, in the planner's abstract
        /// rectangle-visit units.
        estimated: f64,
        /// The configured admission ceiling, in the same units.
        ceiling: f64,
    },
    /// A durability operation failed: a snapshot or write-ahead-log file
    /// could not be read, written or validated, or a persisted image does
    /// not match the engine configuration it is being restored into.
    /// Mutations refuse to publish when their WAL append fails, so a
    /// persistent engine never acknowledges a write it could lose.
    Persistence {
        /// Human-readable description of the failure.
        message: String,
    },
    /// An engine-internal failure that is a bug rather than bad input —
    /// most notably a panicking batch worker, which is caught and reported
    /// per query instead of aborting the process (a serving engine must
    /// outlive any single bad query).
    Internal {
        /// Human-readable description of the failure.
        message: String,
    },
}

impl fmt::Display for AsrsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsrsError::Query(e) => write!(f, "invalid query: {e}"),
            AsrsError::Config(e) => write!(f, "invalid configuration: {e}"),
            AsrsError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            AsrsError::IndexRequired { strategy } => {
                write!(f, "strategy {strategy} requires a grid index, but none is attached")
            }
            AsrsError::IndexMismatch {
                index_dims,
                aggregator_dims,
            } => write!(
                f,
                "grid index stores {index_dims}-dimensional statistics, aggregator produces {aggregator_dims}"
            ),
            AsrsError::InvalidTopK => write!(f, "search_top_k requires k >= 1"),
            AsrsError::InvalidRegionSize { width, height } => {
                write!(f, "region size must be positive and finite, got {width} x {height}")
            }
            AsrsError::DeadlineExceeded { budget } => {
                write!(f, "query exceeded its execution budget of {budget:?}")
            }
            AsrsError::BackendUnsupported { backend, operation } => {
                write!(f, "backend {backend} cannot execute {operation} requests")
            }
            AsrsError::Schema(e) => write!(f, "object violates the dataset schema: {e}"),
            AsrsError::DuplicateObjectId { id } => {
                write!(f, "an object with id {id} already exists in the dataset")
            }
            AsrsError::UnknownObjectId { id } => {
                write!(f, "no object with id {id} exists in the dataset")
            }
            AsrsError::CostCeilingExceeded { estimated, ceiling } => {
                write!(
                    f,
                    "estimated cost {estimated:.3e} exceeds the admission ceiling {ceiling:.3e}; \
                     request rejected before execution"
                )
            }
            AsrsError::Persistence { message } => {
                write!(f, "persistence failure: {message}")
            }
            AsrsError::Internal { message } => {
                write!(f, "internal engine error: {message}")
            }
        }
    }
}

impl std::error::Error for AsrsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsrsError::Query(e) => Some(e),
            AsrsError::Config(e) => Some(e),
            AsrsError::Schema(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchemaError> for AsrsError {
    fn from(e: SchemaError) -> Self {
        AsrsError::Schema(e)
    }
}

impl From<QueryError> for AsrsError {
    fn from(e: QueryError) -> Self {
        AsrsError::Query(e)
    }
}

impl From<ConfigError> for AsrsError {
    fn from(e: ConfigError) -> Self {
        AsrsError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = AsrsError::from(ConfigError::GridTooCoarse { ncols: 1, nrows: 9 });
        assert!(format!("{e}").contains("at least 2 x 2"));
        let e = AsrsError::from(QueryError::DegenerateRegion);
        assert!(format!("{e}").contains("invalid query"));
        assert!(format!("{}", AsrsError::EmptyDataset).contains("non-empty"));
        assert!(format!(
            "{}",
            AsrsError::IndexMismatch {
                index_dims: 3,
                aggregator_dims: 5
            }
        )
        .contains("3"));
        assert!(format!("{}", AsrsError::InvalidTopK).contains("k >= 1"));
        assert!(format!(
            "{}",
            AsrsError::DeadlineExceeded {
                budget: Duration::from_millis(5)
            }
        )
        .contains("budget"));
        assert!(format!(
            "{}",
            AsrsError::BackendUnsupported {
                backend: "gi-ds",
                operation: "max-rs"
            }
        )
        .contains("gi-ds"));
    }

    #[test]
    fn sources_chain_to_layer_errors() {
        use std::error::Error as _;
        let e = AsrsError::from(ConfigError::InvalidDelta { delta: -1.0 });
        assert!(e.source().is_some());
        assert!(AsrsError::EmptyDataset.source().is_none());
    }
}
