//! Lock shims for the generational engine: `std::sync` in normal builds,
//! an instrumented deterministic scheduler under `--features model`.
//!
//! Every lock in the engine's concurrency protocol — the epoch-swap
//! [`RwLock`] in the engine's shared state, the serialized mutator
//! [`Mutex`], the sharded query-cache locks, the batch/scatter result
//! slots — is constructed through this module instead of naming
//! `std::sync` directly.  The payoff:
//!
//! * **Normal builds** (`model` feature off): the types below *are*
//!   `std::sync::Mutex` / `std::sync::RwLock` — plain `pub use`
//!   re-exports, zero code, zero cost.  `BENCH_server.json` is the
//!   regression gate that this stays true.
//! * **Model builds** (`--features model`): the same names resolve to
//!   API-compatible wrappers in the `model` submodule (compiled only
//!   with the feature) that route every acquire and
//!   release through a cooperative scheduler, so a bounded-exhaustive
//!   explorer can run a multi-threaded protocol through *every*
//!   interleaving of its lock operations, detect deadlocks, verify the
//!   acquisition order against the committed lock-order manifest
//!   (`crates/interlock/LOCK_ORDER.md`), and replay any failing schedule
//!   deterministically.  Code that runs outside an exploration — the
//!   rest of the test suite compiled with the feature on — passes
//!   straight through to the underlying `std` primitives.
//!
//! The static half of the story lives in `crates/interlock`: a
//! source-level pass that extracts the same lock graph by scanning the
//! code.  The model checker is the dynamic half — `cargo test -p
//! asrs-core --features model --test model` drives the
//! mutator-publish / reader-snapshot / cache-insert / audit-pause
//! protocol through every schedule at the configured bound.

#[cfg(not(feature = "model"))]
pub use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "model")]
pub mod model;

#[cfg(feature = "model")]
pub use model::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
