//! Generational mutation machinery: append / remove / TTL expiry with
//! incremental index maintenance and rebuild-equivalence guarantees.
//!
//! # The epoch-swap model
//!
//! An [`AsrsEngine`](crate::AsrsEngine) and all its
//! [`EngineHandle`](crate::EngineHandle)s share one
//! [`EngineShared`](crate::engine::EngineShared): the current generation's
//! immutable [`EngineCore`](crate::engine::EngineCore) behind a read lock,
//! plus the mutation state behind a mutex.  A query snapshots the current
//! core (one `Arc` clone) and runs on it to completion; a mutation takes
//! the mutation mutex, assembles a complete successor core off to the
//! side, and publishes it with a single pointer swap.  In-flight queries
//! therefore finish on the generation they started on — no torn reads, no
//! locks on the query path beyond the snapshot.
//!
//! # Rebuild equivalence
//!
//! The invariant every mutation upholds: the published core is
//! *semantically identical* to the core a fresh
//! [`EngineBuilder`](crate::EngineBuilder) would produce from the final
//! dataset — identical object vector (appends go to the tail, removals
//! shift without reordering), bit-identical grid indexes (see
//! [`GridIndex::update_append`](crate::GridIndex::update_append) /
//! [`GridIndex::update_remove`](crate::GridIndex::update_remove), with a
//! rebuild fallback whenever the padded grid geometry moves or the applied
//! delta crosses [`MutationPolicy::index_rebuild_fraction`]), and planner
//! statistics recaptured per generation.  `tests/mutation_parity.rs`
//! enforces the consequence end-to-end: query responses from a mutated
//! engine are byte-identical to a fresh engine rebuilt from the equivalent
//! final dataset, for shard counts {1, 2, 4}, cache enabled.
//!
//! Sharded engines route an append to the shard whose region contains the
//! object (removals to the shard holding the id) and maintain only that
//! shard's sub-core — untouched shards are shared with the previous
//! generation via `Arc`.  A mutation that leaves the partition's extent or
//! unbalances a shard past [`MutationPolicy::shard_imbalance_factor`]
//! triggers a full re-partition instead.  Shard layout never affects
//! answers (the scatter-gather guarantee of PR 4), so routing and
//! re-partitioning are pure performance decisions.
//!
//! # Cache invalidation
//!
//! The query-result cache is shared across generations; every key is
//! stamped with the generation that computed the entry
//! ([`RequestKey::stamped`](crate::RequestKey::stamped)).  A mutation
//! therefore *invalidates nothing* — it simply moves the engine to a key
//! space no stale entry can inhabit, and superseded entries age out
//! through LRU eviction.

use crate::engine::{EngineCore, EngineShared, IndexUpkeep};
use crate::error::AsrsError;
use crate::grid_index::GridIndex;
use crate::planner::{EngineStatistics, IndexStatistics};
use crate::shard::{build_shard_set, EngineShard, ShardSet};
use asrs_aggregator::CompositeAggregator;
use asrs_data::{Dataset, Mutation, MutationLog, SpatialObject};
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Thresholds governing how a mutable engine maintains itself; set via
/// [`EngineBuilder::mutation_policy`](crate::EngineBuilder::mutation_policy).
#[derive(Debug, Clone, PartialEq)]
pub struct MutationPolicy {
    /// Fraction of the index's build-time object count that may be applied
    /// as incremental deltas before the next mutation forces a full index
    /// rebuild (amortising floating-point-drift-free but per-mutation
    /// suffix sweeps into one bulk build).  Incremental maintenance and
    /// rebuilds produce bit-identical indexes, so this is purely a
    /// performance knob.  Default 0.25.
    pub index_rebuild_fraction: f64,
    /// A shard whose object count exceeds this factor times the fair share
    /// (`n / shards`) after an append triggers a full re-partition.
    /// Default 4.0.
    pub shard_imbalance_factor: f64,
    /// How many recent mutations the in-memory log retains.  Default 256.
    pub log_retention: usize,
}

impl Default for MutationPolicy {
    fn default() -> Self {
        Self {
            index_rebuild_fraction: 0.25,
            shard_imbalance_factor: 4.0,
            log_retention: 256,
        }
    }
}

/// What happened to the engine's index(es) when a mutation was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum IndexMaintenance {
    /// The engine maintains no index (or the mutation touched an unindexed
    /// shard).
    NotIndexed,
    /// The affected index absorbed the delta incrementally: one cell edit
    /// plus a suffix-table sweep, no rescan of the dataset.
    Incremental,
    /// The affected index was rebuilt from scratch — the grid geometry
    /// moved, the accumulated delta crossed the rebuild threshold, or a
    /// previously empty (hence unindexed) dataset/shard gained its first
    /// object.
    Rebuilt,
    /// The index was dropped because the dataset emptied.
    Dropped,
}

/// The outcome of one applied mutation, stamped with the generation it
/// produced.  Serialized verbatim by the server's `POST /append` and
/// `DELETE /objects/{id}` responses.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MutationReceipt {
    /// `"append"`, `"remove"` or `"expire"`.
    pub kind: String,
    /// Id of the affected object.
    pub id: u64,
    /// Generation of the engine state after the mutation.
    pub generation: u64,
    /// Objects in the dataset after the mutation.
    pub object_count: usize,
    /// How the index(es) were maintained.
    pub index: IndexMaintenance,
    /// Whether the mutation triggered a full shard re-partition.
    pub repartitioned: bool,
}

/// Mutation counters for observability, served by `/metrics`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MutationStats {
    /// Current engine generation.
    pub generation: u64,
    /// Objects currently in the dataset.
    pub object_count: usize,
    /// Lifetime appends.
    pub appends: u64,
    /// Lifetime caller-initiated removals.
    pub removes: u64,
    /// Lifetime TTL expiries.
    pub expiries: u64,
    /// Index deltas absorbed incrementally.
    pub incremental_index_updates: u64,
    /// Full index rebuilds (geometry moves, threshold crossings, first
    /// objects).
    pub index_rebuilds: u64,
    /// Full shard re-partitions.
    pub repartitions: u64,
    /// TTL'd objects whose deadline has not passed yet.
    pub pending_ttl: usize,
}

/// A TTL deadline; min-heap via `Reverse`.  The token ties the entry to
/// one specific arming (see [`MutationState::ttl_armed`]).
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct TtlEntry {
    deadline: Instant,
    id: u64,
    token: u64,
}

/// The serialized-mutator side of [`EngineShared`]: everything mutations
/// read-modify-write outside the published cores.
#[derive(Debug)]
pub(crate) struct MutationState {
    log: MutationLog,
    ttl: BinaryHeap<Reverse<TtlEntry>>,
    /// The *armed* TTLs: object id → the token of its latest arming.  A
    /// heap entry only expires an object while its token is still the
    /// armed one — any removal disarms the id, so a later re-append under
    /// the same id can never be killed by a stale deadline (the heap is
    /// never searched, entries just lose their token and fall through on
    /// pop).
    ttl_armed: std::collections::HashMap<u64, u64>,
    /// Monotonic token source for [`MutationState::ttl_armed`].
    ttl_token: u64,
    /// Incremental deltas applied to the top-level index since its last
    /// full build (the numerator of the rebuild-fraction check).
    mutations_since_index_build: usize,
    /// Object count when the top-level index was last fully built (the
    /// denominator of the rebuild-fraction check).
    objects_at_index_build: usize,
    incremental_updates: u64,
    index_rebuilds: u64,
    repartitions: u64,
}

impl MutationState {
    pub(crate) fn for_core(core: &EngineCore) -> Self {
        Self {
            log: MutationLog::new(core.policy.log_retention),
            ttl: BinaryHeap::new(),
            ttl_armed: std::collections::HashMap::new(),
            ttl_token: 0,
            mutations_since_index_build: 0,
            objects_at_index_build: core.dataset.len(),
            incremental_updates: 0,
            index_rebuilds: 0,
            repartitions: 0,
        }
    }
}

/// What a mutation did to the dataset, borrowed for the maintenance paths.
#[derive(Debug, Clone, Copy)]
enum Delta<'a> {
    Append(&'a SpatialObject),
    Remove(&'a SpatialObject),
}

/// Applies an append (optionally TTL'd) and publishes the new generation.
pub(crate) fn append(
    shared: &EngineShared,
    object: SpatialObject,
    ttl: Option<Duration>,
) -> Result<MutationReceipt, AsrsError> {
    // interlock:allow(the mutator is defined as held across publish: it serializes the epoch swap and WAL append)
    // lint:allow(a poisoned mutation lock means a mutator died mid-publish; the TTL/log state is unknowable and continuing could corrupt history)
    let mut state = shared.mutator.lock().expect("mutation lock poisoned");
    let core = shared.load();
    if core.dataset.contains_id(object.id) {
        return Err(AsrsError::DuplicateObjectId { id: object.id });
    }
    let mut dataset = (*core.dataset).clone();
    dataset.append(object.clone())?;
    let receipt = publish(
        shared,
        &mut state,
        &core,
        dataset,
        Delta::Append(&object),
        "append",
        object.id,
    )?;
    if let Some(ttl) = ttl {
        // `checked_add` keeps absurd TTLs (u64::MAX ms ≈ 584 million
        // years) from panicking while the mutation mutex is held — an
        // unrepresentable deadline simply never expires, which is what it
        // means.
        if let Some(deadline) = Instant::now().checked_add(ttl) {
            state.ttl_token += 1;
            let token = state.ttl_token;
            state.ttl_armed.insert(object.id, token);
            state.ttl.push(Reverse(TtlEntry {
                deadline,
                id: object.id,
                token,
            }));
        }
    }
    Ok(receipt)
}

/// Applies a removal and publishes the new generation.  Any pending TTL on
/// the id is disarmed — a later re-append under the same id starts with a
/// clean slate.
pub(crate) fn remove(shared: &EngineShared, id: u64) -> Result<MutationReceipt, AsrsError> {
    // interlock:allow(the mutator is defined as held across publish: it serializes the epoch swap and WAL append)
    // lint:allow(a poisoned mutation lock means a mutator died mid-publish; the TTL/log state is unknowable and continuing could corrupt history)
    let mut state = shared.mutator.lock().expect("mutation lock poisoned");
    let core = shared.load();
    let mut dataset = (*core.dataset).clone();
    let removed = dataset
        .remove_by_id(id)
        .ok_or(AsrsError::UnknownObjectId { id })?;
    let receipt = publish(
        shared,
        &mut state,
        &core,
        dataset,
        Delta::Remove(&removed),
        "remove",
        id,
    )?;
    state.ttl_armed.remove(&id);
    Ok(receipt)
}

/// Expires every TTL'd object whose deadline has passed.  A popped heap
/// entry only fires while its token is still the armed one for its id:
/// ids removed by a caller (or re-appended since) were disarmed and fall
/// through without touching the dataset.
pub(crate) fn sweep_expired(shared: &EngineShared) -> Result<Vec<MutationReceipt>, AsrsError> {
    // interlock:allow(the mutator is defined as held across publish: it serializes the epoch swap and WAL append)
    // lint:allow(a poisoned mutation lock means a mutator died mid-publish; the TTL/log state is unknowable and continuing could corrupt history)
    let mut state = shared.mutator.lock().expect("mutation lock poisoned");
    let now = Instant::now();
    let mut receipts = Vec::new();
    loop {
        let due = matches!(state.ttl.peek(), Some(Reverse(entry)) if entry.deadline <= now);
        if !due {
            break;
        }
        let Some(entry) = state.ttl.pop().map(|e| e.0) else {
            break;
        };
        if state.ttl_armed.get(&entry.id) != Some(&entry.token) {
            continue;
        }
        state.ttl_armed.remove(&entry.id);
        let core = shared.load();
        let mut dataset = (*core.dataset).clone();
        let Some(removed) = dataset.remove_by_id(entry.id) else {
            continue;
        };
        receipts.push(publish(
            shared,
            &mut state,
            &core,
            dataset,
            Delta::Remove(&removed),
            "expire",
            entry.id,
        )?);
    }
    Ok(receipts)
}

/// A snapshot of the bounded mutation log.
pub(crate) fn log_snapshot(shared: &EngineShared) -> MutationLog {
    shared
        .mutator
        .lock()
        // lint:allow(a poisoned mutation lock means a mutator died mid-publish; the TTL/log state is unknowable and continuing could corrupt history)
        .expect("mutation lock poisoned")
        .log
        .clone()
}

/// A snapshot of the mutation counters.
pub(crate) fn stats_snapshot(shared: &EngineShared) -> MutationStats {
    // lint:allow(a poisoned mutation lock means a mutator died mid-publish; the TTL/log state is unknowable and continuing could corrupt history)
    let state = shared.mutator.lock().expect("mutation lock poisoned");
    let core = shared.load();
    MutationStats {
        generation: core.generation,
        object_count: core.dataset.len(),
        appends: state.log.appends,
        removes: state.log.removes,
        expiries: state.log.expiries,
        incremental_index_updates: state.incremental_updates,
        index_rebuilds: state.index_rebuilds,
        repartitions: state.repartitions,
        pending_ttl: state.ttl_armed.len(),
    }
}

/// Assembles the successor core for `dataset` (the post-mutation dataset)
/// and publishes it.  Called with the mutation mutex held.
fn publish(
    shared: &EngineShared,
    state: &mut MutationState,
    core: &Arc<EngineCore>,
    dataset: Dataset,
    delta: Delta<'_>,
    kind: &'static str,
    id: u64,
) -> Result<MutationReceipt, AsrsError> {
    let generation = core.generation + 1;
    let mut index_maintenance = IndexMaintenance::NotIndexed;
    let mut repartitioned = false;

    // Top-level index upkeep: unsharded engines, and sharded engines that
    // serve statistics from an attached whole-dataset index.
    let index: Option<Arc<GridIndex>> = match core.upkeep {
        IndexUpkeep::PerEngine { cols, rows } => {
            let (next, how) = maintain_index(
                core.index.as_deref(),
                &dataset,
                &core.aggregator,
                cols,
                rows,
                delta,
                state,
                Some(&core.policy),
            )?;
            index_maintenance = how;
            next.map(Arc::new)
        }
        IndexUpkeep::None | IndexUpkeep::PerShard { .. } => None,
    };

    // Shard upkeep: route the delta to the owning shard, or re-partition
    // when the layout no longer fits.
    let shards: Option<ShardSet> = match &core.shards {
        None => None,
        Some(set) => {
            let needs_repartition = match delta {
                Delta::Append(object) => match owning_shard_for_point(set, object) {
                    None => true,
                    Some(owner) => {
                        let new_len = set.shards[owner].core.dataset.len() + 1;
                        let fair = (dataset.len() as f64 / set.len() as f64).max(1.0);
                        new_len as f64 > core.policy.shard_imbalance_factor * fair
                    }
                },
                Delta::Remove(_) => false,
            };
            if needs_repartition {
                repartitioned = true;
                state.repartitions += 1;
                // A re-partition rebuilds every populated shard's index
                // from scratch inside `build_shard_set`; the receipt and
                // the rebuild counter must say so.
                if matches!(core.upkeep, IndexUpkeep::PerShard { .. }) {
                    index_maintenance = IndexMaintenance::Rebuilt;
                    state.index_rebuilds += 1;
                }
                Some(build_shard_set(
                    &dataset,
                    &core.aggregator,
                    &core.config,
                    core.strategy,
                    &core.planner,
                    core.upkeep,
                    set.len(),
                    generation,
                    &core.policy,
                )?)
            } else {
                let (set, how) = update_shard_set(core, set, delta, generation, state)?;
                if matches!(core.upkeep, IndexUpkeep::PerShard { .. }) {
                    index_maintenance = how;
                }
                Some(set)
            }
        }
    };

    // Statistics are recaptured per generation, mirroring the builder
    // paths exactly so mutated and rebuilt engines plan identically.
    let mut statistics = EngineStatistics::capture(&dataset, index.as_deref());
    if let IndexUpkeep::PerShard { cols, rows } = core.upkeep {
        statistics.index = if dataset.is_empty() {
            None
        } else {
            Some(IndexStatistics::virtual_for(&dataset, cols, rows)?)
        };
    }
    if let Some(set) = &shards {
        statistics.shards = Some(set.fan_out());
    }

    let object_count = dataset.len();
    let next = EngineCore {
        generation,
        dataset: Arc::new(dataset),
        aggregator: Arc::clone(&core.aggregator),
        config: core.config.clone(),
        strategy: core.strategy,
        index,
        upkeep: core.upkeep,
        planner: core.planner.clone(),
        statistics,
        cache: core.cache.clone(),
        policy: core.policy.clone(),
        shards,
    };
    let logged = match (kind, delta) {
        (_, Delta::Append(object)) => Mutation::Append {
            object: object.clone(),
        },
        ("expire", Delta::Remove(_)) => Mutation::Expire { id },
        (_, Delta::Remove(_)) => Mutation::Remove { id },
    };
    // Debug builds audit every assembled successor before it publishes:
    // the whole mutation-parity and persistence-recovery suites therefore
    // run under continuous invariant audit, while release builds compile
    // the hook out entirely.
    #[cfg(debug_assertions)]
    {
        let report = crate::audit::audit_core(&next);
        debug_assert!(
            report.is_clean(),
            "invariant audit failed publishing generation {generation} ({kind} of {id}): {:#?}",
            report.findings
        );
    }

    // Write-ahead: the durability sink must accept the mutation *before*
    // the generation becomes visible.  A sink failure aborts the mutation
    // — the assembled core is dropped, the engine stays on `core`, and the
    // caller sees the error instead of an acknowledgement the log lost.
    if let Some(sink) = shared.durability.get() {
        sink.log_mutation(generation, &logged)?;
    }
    shared.swap(Arc::new(next));
    state.log.record(generation, logged);

    Ok(MutationReceipt {
        kind: kind.to_string(),
        id,
        generation,
        object_count,
        index: index_maintenance,
        repartitioned,
    })
}

/// Maintains one grid index under `delta`: incremental when the grid
/// geometry still matches (and, with a rebuild budget, while the
/// accumulated delta stays within it), a full rebuild otherwise.  Both
/// paths produce bit-identical indexes (see [`GridIndex`]); the choice is
/// performance.
///
/// `policy` is `Some` for the engine's whole-dataset index — the
/// rebuild-fraction budget and its bookkeeping apply — and `None` for
/// per-shard indexes, which never affect answers (the scatter searches
/// the full instance) and only honour the geometry check.
#[allow(clippy::too_many_arguments)]
fn maintain_index(
    current: Option<&GridIndex>,
    dataset: &Dataset,
    aggregator: &CompositeAggregator,
    cols: usize,
    rows: usize,
    delta: Delta<'_>,
    state: &mut MutationState,
    policy: Option<&MutationPolicy>,
) -> Result<(Option<GridIndex>, IndexMaintenance), AsrsError> {
    if dataset.is_empty() {
        // Nothing left to index; a fresh builder over the empty dataset
        // would refuse to build one too.
        return Ok((None, IndexMaintenance::Dropped));
    }
    let within_budget = match policy {
        Some(policy) => {
            let budget = (policy.index_rebuild_fraction
                * state.objects_at_index_build.max(1) as f64)
                .ceil() as usize;
            state.mutations_since_index_build < budget.max(1)
        }
        None => true,
    };
    if let Some(idx) = current {
        if within_budget && idx.space_matches(dataset) {
            let mut next = idx.clone();
            match delta {
                Delta::Append(object) => next.update_append(object, aggregator),
                Delta::Remove(object) => next.update_remove(object, dataset, aggregator),
            }
            if policy.is_some() {
                state.mutations_since_index_build += 1;
            }
            state.incremental_updates += 1;
            return Ok((Some(next), IndexMaintenance::Incremental));
        }
    }
    let next = GridIndex::build(dataset, aggregator, cols, rows)?;
    if policy.is_some() {
        state.mutations_since_index_build = 0;
        state.objects_at_index_build = dataset.len();
    }
    state.index_rebuilds += 1;
    Ok((Some(next), IndexMaintenance::Rebuilt))
}

/// The shard an appended object routes to, honouring the partitioner's
/// tie rule for cut-line points: `SpatialPartition` assigns an object
/// sitting exactly on a cut to the *at-or-above* (right/upper) side, so a
/// containing region whose max edge passes through the point does not own
/// it — unless no other region does, which only happens on the partition
/// extent's own max edges (and for the zero-area regions of degenerate
/// partitions), where any containing region is fine.
pub(crate) fn owning_shard_for_point(set: &ShardSet, object: &SpatialObject) -> Option<usize> {
    let p = &object.location;
    set.shards
        .iter()
        .position(|s| s.region.contains_point(p) && p.x < s.region.max_x && p.y < s.region.max_y)
        .or_else(|| set.shards.iter().position(|s| s.region.contains_point(p)))
}

/// Applies `delta` to the owning shard's sub-core, sharing every untouched
/// shard with the previous generation.  Returns the new shard table and
/// what happened to the owning shard's index.
fn update_shard_set(
    core: &EngineCore,
    set: &ShardSet,
    delta: Delta<'_>,
    generation: u64,
    state: &mut MutationState,
) -> Result<(ShardSet, IndexMaintenance), AsrsError> {
    let owner = match delta {
        Delta::Append(object) => owning_shard_for_point(set, object),
        Delta::Remove(object) => set
            .shards
            .iter()
            .position(|s| s.core.dataset.contains_id(object.id)),
    };
    let mut how = IndexMaintenance::NotIndexed;
    let mut shards = Vec::with_capacity(set.len());
    for (i, shard) in set.shards.iter().enumerate() {
        let new_core = if Some(i) == owner {
            let mut sub = (*shard.core.dataset).clone();
            match delta {
                Delta::Append(object) => sub.append(object.clone())?,
                Delta::Remove(object) => {
                    sub.remove_by_id(object.id);
                }
            }
            let index = match core.upkeep {
                IndexUpkeep::PerShard { cols, rows } => {
                    let (next, shard_how) = maintain_index(
                        shard.core.index.as_deref(),
                        &sub,
                        &core.aggregator,
                        cols,
                        rows,
                        delta,
                        state,
                        None,
                    )?;
                    how = shard_how;
                    next.map(Arc::new)
                }
                _ => None,
            };
            let statistics = EngineStatistics::capture(&sub, index.as_deref());
            Arc::new(EngineCore {
                generation,
                dataset: Arc::new(sub),
                aggregator: Arc::clone(&shard.core.aggregator),
                config: shard.core.config.clone(),
                strategy: shard.core.strategy,
                index,
                upkeep: shard.core.upkeep,
                planner: shard.core.planner.clone(),
                statistics,
                cache: None,
                policy: shard.core.policy.clone(),
                shards: None,
            })
        } else {
            Arc::clone(&shard.core)
        };
        shards.push(EngineShard {
            region: shard.region,
            core: new_core,
            requests: AtomicU64::new(shard.requests.load(Ordering::Relaxed)),
        });
    }
    Ok((ShardSet { shards }, how))
}
