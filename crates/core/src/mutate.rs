//! Generational mutation machinery: append / remove / TTL expiry with
//! incremental index maintenance and rebuild-equivalence guarantees.
//!
//! # The epoch-swap model
//!
//! An [`AsrsEngine`](crate::AsrsEngine) and all its
//! [`EngineHandle`](crate::EngineHandle)s share one
//! [`EngineShared`](crate::engine::EngineShared): the current generation's
//! immutable [`EngineCore`](crate::engine::EngineCore) behind a read lock,
//! plus the mutation state behind a mutex.  A query snapshots the current
//! core (one `Arc` clone) and runs on it to completion; a mutation takes
//! the mutation mutex, assembles a complete successor core off to the
//! side, and publishes it with a single pointer swap.  In-flight queries
//! therefore finish on the generation they started on — no torn reads, no
//! locks on the query path beyond the snapshot.
//!
//! # Group commit
//!
//! Mutations do not race for the mutator directly: each caller first
//! enqueues its *commit group* (one op for [`append`]/[`remove`], a whole
//! payload for [`append_batch`]) on the commit queue
//! (`engine.commit_queue`), then blocks on the mutator.  Whoever acquires
//! the mutator drains **every** pending group — its own plus any enqueued
//! by callers still blocked behind it — applies them all to a single
//! successor core, writes all their WAL frames with **one fsync**, and
//! publishes **one** generation.  The receipts of the folded groups are
//! deposited under their tickets; when a blocked caller finally gets the
//! mutator it finds its receipts waiting and returns without touching the
//! engine.  Coalescing therefore happens exactly under contention: an
//! uncontended mutation drains only itself and publishes a batch of one,
//! preserving the historical one-generation-per-mutation behaviour of
//! sequential callers.  [`sweep_expired`] is a batch leader too: one sweep
//! folds every due expiry *and* every pending group into one generation.
//!
//! Each group is atomic — it is validated in full against the evolving id
//! set before the dataset is touched, and an invalid group fails alone
//! while its batch-mates still commit.
//!
//! # Rebuild equivalence
//!
//! The invariant every mutation upholds: the published core is
//! *semantically identical* to the core a fresh
//! [`EngineBuilder`](crate::EngineBuilder) would produce from the final
//! dataset — identical object vector (appends go to the tail, removals
//! shift without reordering), bit-identical grid indexes (see
//! [`GridIndex::update_append`](crate::GridIndex::update_append) /
//! [`GridIndex::update_remove`](crate::GridIndex::update_remove), with a
//! rebuild fallback whenever the padded grid geometry moves or the applied
//! delta crosses [`MutationPolicy::index_rebuild_fraction`]), and planner
//! statistics recaptured per generation.  A coalesced batch applies its
//! ops *in serialization order* through the exact per-delta maintenance a
//! sequence of solo mutations would run, so batching never changes
//! answers.  `tests/mutation_parity.rs` enforces the consequence
//! end-to-end: query responses from a mutated engine are byte-identical to
//! a fresh engine rebuilt from the equivalent final dataset, for shard
//! counts {1, 2, 4}, cache enabled — batched and sequential application
//! alike.
//!
//! Sharded engines route an append to the shard whose region contains the
//! object (removals to the shard holding the id) and maintain only that
//! shard's sub-core — untouched shards are shared with the previous
//! generation via `Arc`.  A mutation that leaves the partition's extent or
//! unbalances a shard past [`MutationPolicy::shard_imbalance_factor`]
//! triggers a full re-partition instead.  Shard layout never affects
//! answers (the scatter-gather guarantee of PR 4), so routing and
//! re-partitioning are pure performance decisions.
//!
//! # Cache invalidation
//!
//! The query-result cache is shared across generations; every key is
//! stamped with the generation that computed the entry
//! ([`RequestKey::stamped`](crate::RequestKey::stamped)).  A mutation
//! therefore *invalidates nothing* — it simply moves the engine to a key
//! space no stale entry can inhabit, and superseded entries age out
//! through LRU eviction.

use crate::engine::{EngineCore, EngineShared, IndexUpkeep};
use crate::error::AsrsError;
use crate::grid_index::GridIndex;
use crate::planner::{EngineStatistics, IndexStatistics};
use crate::shard::{build_shard_set, ShardSet};
use asrs_aggregator::CompositeAggregator;
use asrs_data::{Dataset, Mutation, MutationLog, SpatialObject};
use asrs_geo::Point;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Thresholds governing how a mutable engine maintains itself; set via
/// [`EngineBuilder::mutation_policy`](crate::EngineBuilder::mutation_policy).
#[derive(Debug, Clone, PartialEq)]
pub struct MutationPolicy {
    /// Fraction of the index's build-time object count that may be applied
    /// as incremental deltas before the next mutation forces a full index
    /// rebuild (amortising floating-point-drift-free but per-mutation
    /// suffix sweeps into one bulk build).  Incremental maintenance and
    /// rebuilds produce bit-identical indexes, so this is purely a
    /// performance knob.  Default 0.25.
    pub index_rebuild_fraction: f64,
    /// A shard whose object count exceeds this factor times the fair share
    /// (`n / shards`) after an append triggers a full re-partition.
    /// Default 4.0.
    pub shard_imbalance_factor: f64,
    /// How many recent mutations the in-memory log retains.  Default 256.
    pub log_retention: usize,
}

impl Default for MutationPolicy {
    fn default() -> Self {
        Self {
            index_rebuild_fraction: 0.25,
            shard_imbalance_factor: 4.0,
            log_retention: 256,
        }
    }
}

/// What happened to the engine's index(es) when a mutation was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum IndexMaintenance {
    /// The engine maintains no index (or the mutation touched an unindexed
    /// shard).
    NotIndexed,
    /// The affected index absorbed the delta incrementally: one cell edit
    /// plus a suffix-table sweep, no rescan of the dataset.
    Incremental,
    /// The affected index was rebuilt from scratch — the grid geometry
    /// moved, the accumulated delta crossed the rebuild threshold, or a
    /// previously empty (hence unindexed) dataset/shard gained its first
    /// object.
    Rebuilt,
    /// The index was dropped because the dataset emptied.
    Dropped,
}

/// The outcome of one applied mutation, stamped with the generation it
/// produced.  Serialized verbatim by the server's `POST /append`,
/// `POST /append_batch` and `DELETE /objects/{id}` responses.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MutationReceipt {
    /// `"append"`, `"remove"` or `"expire"`.
    pub kind: String,
    /// Id of the affected object.
    pub id: u64,
    /// Generation of the engine state after the mutation.  Mutations
    /// coalesced into one group commit share a generation.
    pub generation: u64,
    /// Objects in the dataset after this mutation applied (within a
    /// coalesced batch: after this op's position in serialization order).
    pub object_count: usize,
    /// How the index(es) were maintained for this op.
    pub index: IndexMaintenance,
    /// Whether this op triggered a full shard re-partition.
    pub repartitioned: bool,
    /// How many mutations were folded into the published generation —
    /// 1 for an uncontended mutation, more when concurrent mutations (or a
    /// bulk `append_batch`) coalesced into one commit.
    pub batch: usize,
}

/// Mutation counters for observability, served by `/metrics`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MutationStats {
    /// Current engine generation.  With group commit this counts *published
    /// batches*, so it is at most (and under contention less than) the sum
    /// of the applied-mutation counters below.
    pub generation: u64,
    /// Objects currently in the dataset.
    pub object_count: usize,
    /// Lifetime appends.
    pub appends: u64,
    /// Lifetime caller-initiated removals.
    pub removes: u64,
    /// Lifetime TTL expiries.
    pub expiries: u64,
    /// Index deltas absorbed incrementally.
    pub incremental_index_updates: u64,
    /// Full index rebuilds (geometry moves, threshold crossings, first
    /// objects).
    pub index_rebuilds: u64,
    /// Full shard re-partitions.
    pub repartitions: u64,
    /// TTL'd objects whose deadline has not passed yet.
    pub pending_ttl: usize,
}

/// A TTL deadline; min-heap via `Reverse`.  The token ties the entry to
/// one specific arming (see [`MutationState::ttl_armed`]).
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct TtlEntry {
    deadline: Instant,
    id: u64,
    token: u64,
}

/// The serialized-mutator side of [`EngineShared`]: everything mutations
/// read-modify-write outside the published cores.
#[derive(Debug)]
pub(crate) struct MutationState {
    log: MutationLog,
    ttl: BinaryHeap<Reverse<TtlEntry>>,
    /// The *armed* TTLs: object id → the token of its latest arming.  A
    /// heap entry only expires an object while its token is still the
    /// armed one — any removal disarms the id, so a later re-append under
    /// the same id can never be killed by a stale deadline (the heap is
    /// never searched, entries just lose their token and fall through on
    /// pop).
    ttl_armed: std::collections::HashMap<u64, u64>,
    /// Monotonic token source for [`MutationState::ttl_armed`].
    ttl_token: u64,
    /// Incremental deltas applied to the top-level index since its last
    /// full build (the numerator of the rebuild-fraction check).
    mutations_since_index_build: usize,
    /// Object count when the top-level index was last fully built (the
    /// denominator of the rebuild-fraction check).
    objects_at_index_build: usize,
    incremental_updates: u64,
    index_rebuilds: u64,
    repartitions: u64,
    /// Per-size probe contexts the carry-forward pass reuses across
    /// publishes (see [`carry`](crate::carry)); mutator-guarded like the
    /// rest of this state.
    carry_probes: crate::carry::CarryProbes,
}

impl MutationState {
    pub(crate) fn for_core(core: &EngineCore) -> Self {
        Self {
            log: MutationLog::new(core.policy.log_retention),
            ttl: BinaryHeap::new(),
            ttl_armed: std::collections::HashMap::new(),
            ttl_token: 0,
            mutations_since_index_build: 0,
            objects_at_index_build: core.dataset.len(),
            incremental_updates: 0,
            index_rebuilds: 0,
            repartitions: 0,
            carry_probes: crate::carry::CarryProbes::default(),
        }
    }
}

/// One mutation inside a commit group.
#[derive(Debug, Clone)]
pub(crate) enum BatchOp {
    /// Append `object`; a TTL arms after the batch publishes.
    Append {
        object: SpatialObject,
        ttl: Option<Duration>,
    },
    /// Caller-initiated removal of the object with this id.
    Remove { id: u64 },
    /// TTL-expiry removal of the object with this id.  Live sweeps feed
    /// expiries into the batch directly; this variant carries *replayed*
    /// expiries (WAL recovery), which skip the TTL bookkeeping.
    Expire { id: u64 },
}

/// A group of mutations committed atomically under one queue ticket:
/// either every op applies — all sharing the published generation — or
/// none does and the caller gets the group's error.  Solo mutations are
/// groups of one.
#[derive(Debug)]
struct PendingGroup {
    ticket: u64,
    ops: Vec<BatchOp>,
}

/// The group-commit queue behind `EngineShared::commit_queue`
/// (lock identity `engine.commit_queue`).
///
/// Lock order: a caller enqueues while holding **only** this lock, then
/// releases it before blocking on `engine.mutator`; the batch leader
/// re-acquires it *under* the mutator to drain and to deposit — so the one
/// acquisition-order edge is `engine.mutator → engine.commit_queue`, and
/// the queue lock is never held across publish, fsync or any other
/// blocking operation.
#[derive(Debug, Default)]
pub(crate) struct CommitQueue {
    next_ticket: u64,
    pending: Vec<PendingGroup>,
    /// Receipts (or errors) of groups another mutator folded into its
    /// batch, keyed by ticket, awaiting pickup by their blocked callers.
    deposits: HashMap<u64, Result<Vec<MutationReceipt>, AsrsError>>,
}

impl CommitQueue {
    fn enqueue(&mut self, ops: Vec<BatchOp>) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.pending.push(PendingGroup { ticket, ops });
        ticket
    }
}

/// Applies an append (optionally TTL'd) through the group commit and
/// returns its receipt.
pub(crate) fn append(
    shared: &EngineShared,
    object: SpatialObject,
    ttl: Option<Duration>,
) -> Result<MutationReceipt, AsrsError> {
    sole(commit(shared, vec![BatchOp::Append { object, ttl }])?)
}

/// Applies a removal through the group commit and returns its receipt.
/// Any pending TTL on the id is disarmed — a later re-append under the
/// same id starts with a clean slate.
pub(crate) fn remove(shared: &EngineShared, id: u64) -> Result<MutationReceipt, AsrsError> {
    sole(commit(shared, vec![BatchOp::Remove { id }])?)
}

/// Applies a whole payload of appends as **one atomic commit group**: one
/// published generation, one WAL fsync, all-or-nothing validation (a
/// duplicate or schema-violating object fails the entire payload without
/// touching the dataset).  Returns one receipt per object, all sharing the
/// batch's generation.
pub(crate) fn append_batch(
    shared: &EngineShared,
    items: Vec<(SpatialObject, Option<Duration>)>,
) -> Result<Vec<MutationReceipt>, AsrsError> {
    commit(
        shared,
        items
            .into_iter()
            .map(|(object, ttl)| BatchOp::Append { object, ttl })
            .collect(),
    )
}

/// Applies a replayed WAL batch — every mutation of one logged generation
/// — as one atomic commit group producing exactly one generation, so a
/// recovered engine's generation counter lands where the log says it
/// should.  Replayed `Expire` records apply as plain removals (there is no
/// armed TTL state at boot).
pub(crate) fn apply_batch(
    shared: &EngineShared,
    mutations: &[Mutation],
) -> Result<Vec<MutationReceipt>, AsrsError> {
    commit(
        shared,
        mutations
            .iter()
            .map(|m| match m {
                Mutation::Append { object } => BatchOp::Append {
                    object: object.clone(),
                    ttl: None,
                },
                Mutation::Remove { id } => BatchOp::Remove { id: *id },
                Mutation::Expire { id } => BatchOp::Expire { id: *id },
            })
            .collect(),
    )
}

fn sole(receipts: Vec<MutationReceipt>) -> Result<MutationReceipt, AsrsError> {
    match receipts.into_iter().next() {
        Some(receipt) => Ok(receipt),
        None => Err(AsrsError::Internal {
            message: "single-mutation commit returned no receipt".to_string(),
        }),
    }
}

/// Commits one group through the group-commit queue (see the module
/// documentation): enqueue, block on the mutator, then either pick up the
/// receipts a faster leader deposited or drain everything pending and
/// publish one batch.
pub(crate) fn commit(
    shared: &EngineShared,
    ops: Vec<BatchOp>,
) -> Result<Vec<MutationReceipt>, AsrsError> {
    if ops.is_empty() {
        return Ok(Vec::new());
    }
    let ticket = {
        // lint:allow(a poisoned commit queue means a mutator died mid-deposit; continuing could lose or double-deliver receipts)
        let mut queue = shared.commit_queue.lock().expect("commit queue poisoned");
        queue.enqueue(ops)
    };
    // interlock:allow(the mutator is defined as held across publish: it serializes the epoch swap and WAL append)
    // lint:allow(a poisoned mutation lock means a mutator died mid-publish; the TTL/log state is unknowable and continuing could corrupt history)
    let mut state = shared.mutator.lock().expect("mutation lock poisoned");
    let drained = {
        // lint:allow(a poisoned commit queue means a mutator died mid-deposit; continuing could lose or double-deliver receipts)
        let mut queue = shared.commit_queue.lock().expect("commit queue poisoned");
        if let Some(result) = queue.deposits.remove(&ticket) {
            // A faster mutator folded this group into its batch while we
            // were blocked; the engine is already past our commit.
            return result;
        }
        std::mem::take(&mut queue.pending)
    };
    // Piggyback: while write traffic flows, due TTL expiries ride the
    // application's commit batches — same generation, same WAL fsync —
    // instead of waiting for the sweeper's next timer tick.  They
    // serialize before the drained groups, exactly as a sweep leader
    // orders them.  Ids the batch's own operations reference are left
    // for the sweeper: expiring them here would fail a caller's
    // `remove(id)` (or let a duplicate `append(id)` through) that was
    // valid when issued.  The expiry receipts have no caller to go to;
    // the mutation log records the expiries all the same.
    let referenced: HashSet<u64> = drained
        .iter()
        .flat_map(|group| group.ops.iter())
        .map(|op| match op {
            BatchOp::Append { object, .. } => object.id,
            BatchOp::Remove { id } | BatchOp::Expire { id } => *id,
        })
        .collect();
    let popped = pop_due_expiries(&mut state, &referenced);
    let expiries = popped.iter().map(|e| e.id).collect();
    let (expired, outcomes) = publish(shared, &mut state, expiries, drained);
    if expired.is_err() {
        reinstate_popped(&mut state, popped);
    }
    let mut own = Err(AsrsError::Internal {
        message: format!("group commit lost ticket {ticket}"),
    });
    // lint:allow(a poisoned commit queue means a mutator died mid-deposit; continuing could lose or double-deliver receipts)
    let mut queue = shared.commit_queue.lock().expect("commit queue poisoned");
    for (t, result) in outcomes {
        if t == ticket {
            own = result;
        } else {
            queue.deposits.insert(t, result);
        }
    }
    drop(queue);
    own
}

/// Pops every armed TTL entry whose deadline has passed, disarming each.
/// Must run under the mutation mutex; a popped entry is *owed* an expiry —
/// either the caller publishes it or it must be reinstated with
/// [`reinstate_popped`].  Entries whose token is no longer the armed one
/// for their id (removed or re-appended since) fall through silently.
///
/// Entries whose id is in `exclude` are left armed for a later sweep: a
/// commit batch must not expire an id its own operations reference —
/// expiries serialize *before* the drained groups, so piggybacking one
/// would make the caller's `remove(id)` deterministically fail on an
/// object that was live when the caller issued it.
fn pop_due_expiries(state: &mut MutationState, exclude: &HashSet<u64>) -> Vec<TtlEntry> {
    let now = Instant::now();
    let mut popped: Vec<TtlEntry> = Vec::new();
    let mut deferred: Vec<TtlEntry> = Vec::new();
    loop {
        let due = matches!(state.ttl.peek(), Some(Reverse(entry)) if entry.deadline <= now);
        if !due {
            break;
        }
        let Some(entry) = state.ttl.pop().map(|e| e.0) else {
            break;
        };
        if state.ttl_armed.get(&entry.id) != Some(&entry.token) {
            continue;
        }
        if exclude.contains(&entry.id) {
            // Still armed; goes back on the heap once the scan is done
            // (re-pushing inside the loop would pop it right back).
            deferred.push(entry);
            continue;
        }
        state.ttl_armed.remove(&entry.id);
        popped.push(entry);
    }
    for entry in deferred {
        state.ttl.push(Reverse(entry));
    }
    popped
}

/// Puts popped-but-unpublished deadlines back — token, heap entry and all
/// — so the next sweep retries them.  Dropping them would leave the
/// objects live but unexpirable forever.  Nothing re-armed concurrently
/// (the mutator is held throughout), so reinstating the original tokens
/// is exact.
fn reinstate_popped(state: &mut MutationState, popped: Vec<TtlEntry>) {
    for entry in popped {
        state.ttl_armed.insert(entry.id, entry.token);
        state.ttl.push(Reverse(entry));
    }
}

/// Expires every TTL'd object whose deadline has passed — as **one**
/// published generation and one WAL fsync for the whole sweep.  A popped
/// heap entry only fires while its token is still the armed one for its
/// id: ids removed by a caller (or re-appended since) were disarmed and
/// fall through without touching the dataset.  The sweep is itself a batch
/// leader: any commit groups enqueued behind the mutator are folded into
/// the sweep's generation.
pub(crate) fn sweep_expired(shared: &EngineShared) -> Result<Vec<MutationReceipt>, AsrsError> {
    // interlock:allow(the mutator is defined as held across publish: it serializes the epoch swap and WAL append)
    // lint:allow(a poisoned mutation lock means a mutator died mid-publish; the TTL/log state is unknowable and continuing could corrupt history)
    let mut state = shared.mutator.lock().expect("mutation lock poisoned");
    let popped = pop_due_expiries(&mut state, &HashSet::new());
    let drained = {
        // lint:allow(a poisoned commit queue means a mutator died mid-deposit; continuing could lose or double-deliver receipts)
        let mut queue = shared.commit_queue.lock().expect("commit queue poisoned");
        std::mem::take(&mut queue.pending)
    };
    if popped.is_empty() && drained.is_empty() {
        return Ok(Vec::new());
    }
    let expiries = popped.iter().map(|e| e.id).collect();
    let (expired, outcomes) = publish(shared, &mut state, expiries, drained);
    if expired.is_err() {
        // A batch-level failure (WAL veto, assembly error) published
        // nothing: reinstate the deadlines for the next sweep.
        reinstate_popped(&mut state, popped);
    }
    // lint:allow(a poisoned commit queue means a mutator died mid-deposit; continuing could lose or double-deliver receipts)
    let mut queue = shared.commit_queue.lock().expect("commit queue poisoned");
    for (t, result) in outcomes {
        queue.deposits.insert(t, result);
    }
    drop(queue);
    expired
}

/// A snapshot of the bounded mutation log.
pub(crate) fn log_snapshot(shared: &EngineShared) -> MutationLog {
    shared
        .mutator
        .lock()
        // lint:allow(a poisoned mutation lock means a mutator died mid-publish; the TTL/log state is unknowable and continuing could corrupt history)
        .expect("mutation lock poisoned")
        .log
        .clone()
}

/// A snapshot of the mutation counters.
pub(crate) fn stats_snapshot(shared: &EngineShared) -> MutationStats {
    // lint:allow(a poisoned mutation lock means a mutator died mid-publish; the TTL/log state is unknowable and continuing could corrupt history)
    let state = shared.mutator.lock().expect("mutation lock poisoned");
    let core = shared.load();
    MutationStats {
        generation: core.generation,
        object_count: core.dataset.len(),
        appends: state.log.appends,
        removes: state.log.removes,
        expiries: state.log.expiries,
        incremental_index_updates: state.incremental_updates,
        index_rebuilds: state.index_rebuilds,
        repartitions: state.repartitions,
        pending_ttl: state.ttl_armed.len(),
    }
}

/// One accepted op in serialization order: provenance (`None` = sweep
/// expiry, `Some(i)` = the i-th drained group) plus the op itself.
type PlannedOp = (Option<usize>, BatchOp);

/// One TTL bookkeeping action, recorded during assembly **in
/// serialization order** and replayed in that same order once the batch
/// publishes.  Order matters: when contention coalesces `append(id, ttl)`
/// before `remove(id)` into one batch, the disarm must win (sequentially
/// the remove would disarm the TTL) — and when a remove precedes a
/// re-append-with-TTL, the arm must win.  A single ordered list makes
/// both fall out of replay; separate arm/disarm sets cannot express the
/// difference.
#[derive(Debug)]
enum TtlEvent {
    /// An appended object arms a deadline.
    Arm { id: u64, ttl: Duration },
    /// A caller-removal disarms whatever deadline the id had pending.
    Disarm { id: u64 },
}

/// Working copy of the index/shard maintenance counters a batch evolves
/// while assembling its successor core.  Ops within a batch read the
/// evolving values (the rebuild-fraction budget is cumulative), but the
/// durable [`MutationState`] only absorbs the draft at the commit point —
/// a batch aborted by a WAL veto leaves the published counters (and the
/// rebuild budget) exactly as they were, so `/metrics` never records
/// rebuilds or repartitions that no generation shipped.
#[derive(Debug, Clone, Copy)]
struct CounterDraft {
    mutations_since_index_build: usize,
    objects_at_index_build: usize,
    incremental_updates: u64,
    index_rebuilds: u64,
    repartitions: u64,
}

impl CounterDraft {
    fn from_state(state: &MutationState) -> Self {
        Self {
            mutations_since_index_build: state.mutations_since_index_build,
            objects_at_index_build: state.objects_at_index_build,
            incremental_updates: state.incremental_updates,
            index_rebuilds: state.index_rebuilds,
            repartitions: state.repartitions,
        }
    }
}

/// The evolving id set a batch is validated against.  Multi-op batches
/// materialize every live id once up front and replay their edits on the
/// set; the solo variant — one op in the whole batch, the uncontended
/// common case — delegates membership straight to
/// [`Dataset::contains_id`] and skips the O(n) scan plus the n-sized
/// allocation.  Solo edits deliberately record nothing: with a single op
/// there is no later membership query (nor an earlier-op rollback) that
/// could observe them.
enum LiveIds<'a> {
    Solo(&'a Dataset),
    Set(HashSet<u64>),
}

impl LiveIds<'_> {
    fn contains(&self, id: u64) -> bool {
        match self {
            LiveIds::Solo(dataset) => dataset.contains_id(id),
            LiveIds::Set(set) => set.contains(&id),
        }
    }

    fn insert(&mut self, id: u64) {
        if let LiveIds::Set(set) = self {
            set.insert(id);
        }
    }

    /// Removes `id`, reporting whether it was live.
    fn remove(&mut self, id: u64) -> bool {
        match self {
            LiveIds::Solo(dataset) => dataset.contains_id(id),
            LiveIds::Set(set) => set.remove(&id),
        }
    }
}

/// Everything a successfully applied batch produced, pending the
/// WAL-then-swap commit point.
struct AssembledBatch {
    next: EngineCore,
    receipts: Vec<(Option<usize>, MutationReceipt)>,
    logged: Vec<Mutation>,
    /// TTL bookkeeping actions in serialization order (see [`TtlEvent`]).
    ttl_events: Vec<TtlEvent>,
    /// The maintenance counters as this batch evolved them; folded into
    /// [`MutationState`] only after the WAL accepts the batch.
    counters: CounterDraft,
    /// Location of every object the batch appended or removed — the
    /// influence-window inputs of the cache carry-forward pass
    /// (see [`carry`](crate::carry)).
    touched: Vec<Point>,
    /// Whether any delta re-partitioned the shard layout (disqualifies
    /// the whole batch from carry-forward).
    repartitioned: bool,
    /// Whether every op in the batch (piggybacked expiries included) was
    /// an append — the precondition for extending the carry pass's probe
    /// contexts incrementally instead of rebuilding them.
    append_only: bool,
}

/// Applies the sweep's expiries and every drained group to **one**
/// successor core and publishes it: the group-commit fold.  Called with
/// the mutation mutex held.
///
/// Expiries serialize *before* the groups (the sweep popped them before
/// draining), so a queued re-append of an expired id lands after its
/// expiry.  Each group is validated in full against the evolving id set
/// before the dataset is touched; an invalid group fails alone — its
/// batch-mates still commit.  A failure *after* validation (index rebuild,
/// statistics capture, WAL write) aborts the whole batch: nothing
/// publishes and every participant sees that error.
///
/// Returns the expiries' own outcome plus one `(ticket, outcome)` pair per
/// drained group.
fn publish(
    shared: &EngineShared,
    state: &mut MutationState,
    expiries: Vec<u64>,
    groups: Vec<PendingGroup>,
) -> (
    Result<Vec<MutationReceipt>, AsrsError>,
    Vec<(u64, Result<Vec<MutationReceipt>, AsrsError>)>,
) {
    let core = shared.load();

    // Validation pass: replay the batch against the current id set so a
    // group is accepted or rejected in full before anything applies.
    // Only a genuine multi-op batch pays for materializing the id set.
    let total_ops = expiries.len() + groups.iter().map(|g| g.ops.len()).sum::<usize>();
    let mut live = if total_ops > 1 {
        LiveIds::Set(core.dataset.objects().map(|o| o.id).collect())
    } else {
        LiveIds::Solo(core.dataset.as_ref())
    };
    let mut plan: Vec<PlannedOp> = Vec::new();
    for id in expiries {
        // A disarmed-and-vanished id falls through receipt-less, exactly
        // as the per-object sweep used to skip it.
        if live.remove(id) {
            plan.push((None, BatchOp::Expire { id }));
        }
    }
    let mut verdicts: Vec<(u64, Result<(), AsrsError>)> = Vec::with_capacity(groups.len());
    for (slot, group) in groups.into_iter().enumerate() {
        let mut added: Vec<u64> = Vec::new();
        let mut dropped: Vec<u64> = Vec::new();
        let mut error: Option<AsrsError> = None;
        for op in &group.ops {
            match op {
                BatchOp::Append { object, .. } => {
                    if live.contains(object.id) {
                        error = Some(AsrsError::DuplicateObjectId { id: object.id });
                        break;
                    }
                    if let Err(e) = core.dataset.schema().validate_values(&object.values) {
                        error = Some(e.into());
                        break;
                    }
                    live.insert(object.id);
                    added.push(object.id);
                }
                BatchOp::Remove { id } | BatchOp::Expire { id } => {
                    if !live.remove(*id) {
                        error = Some(AsrsError::UnknownObjectId { id: *id });
                        break;
                    }
                    dropped.push(*id);
                }
            }
        }
        match error {
            Some(e) => {
                // Roll the rejected group's tentative id edits back so the
                // groups behind it validate against the true state.
                for id in added {
                    live.remove(id);
                }
                for id in dropped {
                    live.insert(id);
                }
                verdicts.push((group.ticket, Err(e)));
            }
            None => {
                for op in group.ops {
                    plan.push((Some(slot), op));
                }
                verdicts.push((group.ticket, Ok(())));
            }
        }
    }

    if plan.is_empty() {
        // Every group failed validation (or there was nothing to do): the
        // engine stays on `core`, no generation publishes.
        let outcomes = verdicts
            .into_iter()
            .map(|(t, v)| (t, v.map(|()| Vec::new())))
            .collect();
        return (Ok(Vec::new()), outcomes);
    }

    let generation = core.generation + 1;
    let assembled = match assemble(&core, state, plan, generation) {
        Ok(assembled) => assembled,
        Err(e) => return fail_batch(verdicts, e),
    };

    // Write-ahead: the durability sink must accept the whole batch —
    // every frame, one fsync — *before* the generation becomes visible.
    // A sink failure aborts the batch: the assembled core is dropped, the
    // engine stays on `core`, and every participant sees the error
    // instead of an acknowledgement the log lost.
    if let Some(sink) = shared.durability.get() {
        if let Err(e) = sink.log_batch(generation, &assembled.logged) {
            return fail_batch(verdicts, e);
        }
    }
    let next = Arc::new(assembled.next);
    // Carry-forward pass: re-stamp every cache entry the batch provably
    // did not affect to the successor generation (see the `carry` module
    // docs).  Runs after the WAL accepted the batch — nothing can abort
    // the publish past this point, so a re-stamped entry can never name a
    // generation that fails to appear — and *before* the swap, so by the
    // time readers can see the new generation its surviving entries are
    // already re-stamped: no cold window for the pass's duration.  A
    // reader still on the old generation may miss an entry the pass just
    // moved; that is an ordinary cold miss, never a stale hit.  The
    // mutation mutex is held throughout, so two publishes cannot re-stamp
    // one generation's entries concurrently.
    crate::carry::carry_forward(
        &core,
        &next,
        &assembled.touched,
        assembled.repartitioned,
        assembled.append_only,
        &mut state.carry_probes,
    );
    shared.swap(Arc::clone(&next));
    for logged in assembled.logged {
        state.log.record(generation, logged);
    }
    let CounterDraft {
        mutations_since_index_build,
        objects_at_index_build,
        incremental_updates,
        index_rebuilds,
        repartitions,
    } = assembled.counters;
    state.mutations_since_index_build = mutations_since_index_build;
    state.objects_at_index_build = objects_at_index_build;
    state.incremental_updates = incremental_updates;
    state.index_rebuilds = index_rebuilds;
    state.repartitions = repartitions;
    // Replay the TTL bookkeeping in serialization order, so whichever of
    // an arm/disarm pair for the same id came later in the batch wins —
    // exactly the armed set sequential solo mutations would leave.
    for event in assembled.ttl_events {
        match event {
            TtlEvent::Disarm { id } => {
                state.ttl_armed.remove(&id);
            }
            TtlEvent::Arm { id, ttl } => {
                // `checked_add` keeps absurd TTLs (u64::MAX ms ≈ 584
                // million years) from panicking while the mutation mutex
                // is held — an unrepresentable deadline simply never
                // expires, which is what it means.
                if let Some(deadline) = Instant::now().checked_add(ttl) {
                    state.ttl_token += 1;
                    let token = state.ttl_token;
                    state.ttl_armed.insert(id, token);
                    state.ttl.push(Reverse(TtlEntry {
                        deadline,
                        id,
                        token,
                    }));
                }
            }
        }
    }

    // Distribute the receipts back to their groups.
    let mut expired: Vec<MutationReceipt> = Vec::new();
    let mut per_group: Vec<Vec<MutationReceipt>> = Vec::new();
    per_group.resize_with(verdicts.len(), Vec::new);
    for (slot, receipt) in assembled.receipts {
        match slot {
            None => expired.push(receipt),
            Some(slot) => per_group[slot].push(receipt),
        }
    }
    let outcomes = verdicts
        .into_iter()
        .enumerate()
        .map(|(slot, (ticket, verdict))| {
            (
                ticket,
                verdict.map(|()| std::mem::take(&mut per_group[slot])),
            )
        })
        .collect();
    (Ok(expired), outcomes)
}

/// Batch-level failure: every group that passed validation fails with the
/// batch's error; groups that failed validation keep their own.
fn fail_batch(
    verdicts: Vec<(u64, Result<(), AsrsError>)>,
    error: AsrsError,
) -> (
    Result<Vec<MutationReceipt>, AsrsError>,
    Vec<(u64, Result<Vec<MutationReceipt>, AsrsError>)>,
) {
    let outcomes = verdicts
        .into_iter()
        .map(|(t, v)| {
            (
                t,
                match v {
                    Ok(()) => Err(error.clone()),
                    Err(e) => Err(e),
                },
            )
        })
        .collect();
    (Err(error), outcomes)
}

/// Applies the validated plan to a single successor core: one dataset
/// clone, per-op index/shard maintenance in serialization order (exactly
/// what a sequence of solo mutations would run, so batched and sequential
/// application are bit-identical), then one statistics capture and one
/// core assembly.
fn assemble(
    core: &Arc<EngineCore>,
    state: &MutationState,
    plan: Vec<PlannedOp>,
    generation: u64,
) -> Result<AssembledBatch, AsrsError> {
    let batch = plan.len();
    let mut dataset = (*core.dataset).clone();
    let mut index: Option<Arc<GridIndex>> = core.index.clone();
    let mut shards: Option<ShardSet> = core.shards.as_ref().map(ShardSet::carry_over);
    let mut receipts: Vec<(Option<usize>, MutationReceipt)> = Vec::with_capacity(batch);
    let mut logged: Vec<Mutation> = Vec::with_capacity(batch);
    let mut ttl_events: Vec<TtlEvent> = Vec::new();
    let mut counters = CounterDraft::from_state(state);
    let mut touched: Vec<Point> = Vec::with_capacity(batch);
    let mut any_repartitioned = false;
    let mut append_only = true;

    for (slot, op) in plan {
        let (kind, id, how, repartitioned) = match op {
            BatchOp::Append { object, ttl } => {
                touched.push(object.location);
                dataset.append(object.clone())?;
                let (how, repartitioned) = fold_delta(
                    core,
                    &mut counters,
                    &dataset,
                    &mut index,
                    &mut shards,
                    Delta::Append(&object),
                    generation,
                )?;
                if let Some(ttl) = ttl {
                    ttl_events.push(TtlEvent::Arm { id: object.id, ttl });
                }
                let id = object.id;
                logged.push(Mutation::Append { object });
                ("append", id, how, repartitioned)
            }
            BatchOp::Remove { id } => {
                append_only = false;
                let removed = take_by_id(&mut dataset, id)?;
                touched.push(removed.location);
                let (how, repartitioned) = fold_delta(
                    core,
                    &mut counters,
                    &dataset,
                    &mut index,
                    &mut shards,
                    Delta::Remove(&removed),
                    generation,
                )?;
                ttl_events.push(TtlEvent::Disarm { id });
                logged.push(Mutation::Remove { id });
                ("remove", id, how, repartitioned)
            }
            BatchOp::Expire { id } => {
                // No TTL event: a live sweep already disarmed the id when
                // it popped the deadline, and replayed expiries (WAL
                // recovery) have no armed state to touch.
                append_only = false;
                let removed = take_by_id(&mut dataset, id)?;
                touched.push(removed.location);
                let (how, repartitioned) = fold_delta(
                    core,
                    &mut counters,
                    &dataset,
                    &mut index,
                    &mut shards,
                    Delta::Remove(&removed),
                    generation,
                )?;
                logged.push(Mutation::Expire { id });
                ("expire", id, how, repartitioned)
            }
        };
        any_repartitioned |= repartitioned;
        receipts.push((
            slot,
            MutationReceipt {
                kind: kind.to_string(),
                id,
                generation,
                object_count: dataset.len(),
                index: how,
                repartitioned,
                batch,
            },
        ));
    }

    // Statistics are recaptured per generation, mirroring the builder
    // paths exactly so mutated and rebuilt engines plan identically.
    let mut statistics = EngineStatistics::capture(&dataset, index.as_deref());
    if let IndexUpkeep::PerShard { cols, rows } = core.upkeep {
        statistics.index = if dataset.is_empty() {
            None
        } else {
            Some(IndexStatistics::virtual_for(&dataset, cols, rows)?)
        };
    }
    if let Some(set) = &shards {
        statistics.shards = Some(set.fan_out());
    }

    let next = EngineCore {
        generation,
        dataset: Arc::new(dataset),
        aggregator: Arc::clone(&core.aggregator),
        config: core.config.clone(),
        strategy: core.strategy,
        index,
        upkeep: core.upkeep,
        planner: core.planner.clone(),
        statistics,
        cache: core.cache.clone(),
        policy: core.policy.clone(),
        shards,
    };
    // Debug builds audit every assembled successor before it publishes:
    // the whole mutation-parity and persistence-recovery suites therefore
    // run under continuous invariant audit, while release builds compile
    // the hook out entirely.
    #[cfg(debug_assertions)]
    {
        let report = crate::audit::audit_core(&next);
        debug_assert!(
            report.is_clean(),
            "invariant audit failed publishing generation {generation} (batch of {batch}): {:#?}",
            report.findings
        );
    }
    Ok(AssembledBatch {
        next,
        receipts,
        logged,
        ttl_events,
        counters,
        touched,
        repartitioned: any_repartitioned,
        append_only,
    })
}

/// Removes a validated id from the working dataset; its absence at this
/// point is an engine bug, not caller input.
fn take_by_id(dataset: &mut Dataset, id: u64) -> Result<SpatialObject, AsrsError> {
    dataset.remove_by_id(id).ok_or(AsrsError::Internal {
        message: format!("validated id {id} vanished from the working dataset"),
    })
}

/// What a mutation did to the dataset, borrowed for the maintenance paths.
#[derive(Debug, Clone, Copy)]
enum Delta<'a> {
    Append(&'a SpatialObject),
    Remove(&'a SpatialObject),
}

/// Folds one delta into the working index and shard table — the per-op
/// maintenance step of a batch, identical to what one solo mutation used
/// to run.  `dataset` is the working dataset *after* the delta applied.
/// Returns what happened to the index(es) and whether the delta
/// re-partitioned.
fn fold_delta(
    core: &EngineCore,
    counters: &mut CounterDraft,
    dataset: &Dataset,
    index: &mut Option<Arc<GridIndex>>,
    shards: &mut Option<ShardSet>,
    delta: Delta<'_>,
    generation: u64,
) -> Result<(IndexMaintenance, bool), AsrsError> {
    let mut index_maintenance = IndexMaintenance::NotIndexed;
    let mut repartitioned = false;

    // Top-level index upkeep: unsharded engines, and sharded engines that
    // serve statistics from an attached whole-dataset index.
    if let IndexUpkeep::PerEngine { cols, rows } = core.upkeep {
        let (next, how) = maintain_index(
            index.as_deref(),
            dataset,
            &core.aggregator,
            cols,
            rows,
            delta,
            counters,
            Some(&core.policy),
        )?;
        index_maintenance = how;
        *index = next.map(Arc::new);
    }

    // Shard upkeep: route the delta to the owning shard, or re-partition
    // when the layout no longer fits.
    if let Some(set) = shards.take() {
        let needs_repartition = match delta {
            Delta::Append(object) => match owning_shard_for_point(&set, object) {
                None => true,
                Some(owner) => {
                    let new_len = set.shards[owner].core.dataset.len() + 1;
                    let fair = (dataset.len() as f64 / set.len() as f64).max(1.0);
                    new_len as f64 > core.policy.shard_imbalance_factor * fair
                }
            },
            Delta::Remove(_) => false,
        };
        let next = if needs_repartition {
            repartitioned = true;
            counters.repartitions += 1;
            // A re-partition rebuilds every populated shard's index
            // from scratch inside `build_shard_set`; the receipt and
            // the rebuild counter must say so.
            if matches!(core.upkeep, IndexUpkeep::PerShard { .. }) {
                index_maintenance = IndexMaintenance::Rebuilt;
                counters.index_rebuilds += 1;
            }
            build_shard_set(
                dataset,
                &core.aggregator,
                &core.config,
                core.strategy,
                &core.planner,
                core.upkeep,
                set.len(),
                generation,
                &core.policy,
            )?
        } else {
            let (next, how) = update_shard_set(core, &set, delta, generation, counters)?;
            if matches!(core.upkeep, IndexUpkeep::PerShard { .. }) {
                index_maintenance = how;
            }
            next
        };
        *shards = Some(next);
    }
    Ok((index_maintenance, repartitioned))
}

/// Maintains one grid index under `delta`: incremental when the grid
/// geometry still matches (and, with a rebuild budget, while the
/// accumulated delta stays within it), a full rebuild otherwise.  Both
/// paths produce bit-identical indexes (see [`GridIndex`]); the choice is
/// performance.
///
/// `policy` is `Some` for the engine's whole-dataset index — the
/// rebuild-fraction budget and its bookkeeping apply — and `None` for
/// per-shard indexes, which never affect answers (the scatter searches
/// the full instance) and only honour the geometry check.
#[allow(clippy::too_many_arguments)]
fn maintain_index(
    current: Option<&GridIndex>,
    dataset: &Dataset,
    aggregator: &CompositeAggregator,
    cols: usize,
    rows: usize,
    delta: Delta<'_>,
    counters: &mut CounterDraft,
    policy: Option<&MutationPolicy>,
) -> Result<(Option<GridIndex>, IndexMaintenance), AsrsError> {
    if dataset.is_empty() {
        // Nothing left to index; a fresh builder over the empty dataset
        // would refuse to build one too.
        return Ok((None, IndexMaintenance::Dropped));
    }
    let within_budget = match policy {
        Some(policy) => {
            let budget = (policy.index_rebuild_fraction
                * counters.objects_at_index_build.max(1) as f64)
                .ceil() as usize;
            counters.mutations_since_index_build < budget.max(1)
        }
        None => true,
    };
    if let Some(idx) = current {
        if within_budget && idx.space_matches(dataset) {
            let mut next = idx.clone();
            match delta {
                Delta::Append(object) => next.update_append(object, aggregator),
                Delta::Remove(object) => next.update_remove(object, dataset, aggregator),
            }
            if policy.is_some() {
                counters.mutations_since_index_build += 1;
            }
            counters.incremental_updates += 1;
            return Ok((Some(next), IndexMaintenance::Incremental));
        }
    }
    let next = GridIndex::build(dataset, aggregator, cols, rows)?;
    if policy.is_some() {
        counters.mutations_since_index_build = 0;
        counters.objects_at_index_build = dataset.len();
    }
    counters.index_rebuilds += 1;
    Ok((Some(next), IndexMaintenance::Rebuilt))
}

/// The shard an appended object routes to, honouring the partitioner's
/// tie rule for cut-line points: `SpatialPartition` assigns an object
/// sitting exactly on a cut to the *at-or-above* (right/upper) side, so a
/// containing region whose max edge passes through the point does not own
/// it — unless no other region does, which only happens on the partition
/// extent's own max edges (and for the zero-area regions of degenerate
/// partitions), where any containing region is fine.
pub(crate) fn owning_shard_for_point(set: &ShardSet, object: &SpatialObject) -> Option<usize> {
    let p = &object.location;
    set.shards
        .iter()
        .position(|s| s.region.contains_point(p) && p.x < s.region.max_x && p.y < s.region.max_y)
        .or_else(|| set.shards.iter().position(|s| s.region.contains_point(p)))
}

/// Applies `delta` to the owning shard's sub-core, sharing every untouched
/// shard with the previous generation.  Returns the new shard table and
/// what happened to the owning shard's index.
fn update_shard_set(
    core: &EngineCore,
    set: &ShardSet,
    delta: Delta<'_>,
    generation: u64,
    counters: &mut CounterDraft,
) -> Result<(ShardSet, IndexMaintenance), AsrsError> {
    let owner = match delta {
        Delta::Append(object) => owning_shard_for_point(set, object),
        Delta::Remove(object) => set
            .shards
            .iter()
            .position(|s| s.core.dataset.contains_id(object.id)),
    };
    let mut how = IndexMaintenance::NotIndexed;
    let mut shards = Vec::with_capacity(set.len());
    for (i, shard) in set.shards.iter().enumerate() {
        let new_core = if Some(i) == owner {
            let mut sub = (*shard.core.dataset).clone();
            match delta {
                Delta::Append(object) => sub.append(object.clone())?,
                Delta::Remove(object) => {
                    sub.remove_by_id(object.id);
                }
            }
            let index = match core.upkeep {
                IndexUpkeep::PerShard { cols, rows } => {
                    let (next, shard_how) = maintain_index(
                        shard.core.index.as_deref(),
                        &sub,
                        &core.aggregator,
                        cols,
                        rows,
                        delta,
                        counters,
                        None,
                    )?;
                    how = shard_how;
                    next.map(Arc::new)
                }
                _ => None,
            };
            let statistics = EngineStatistics::capture(&sub, index.as_deref());
            Arc::new(EngineCore {
                generation,
                dataset: Arc::new(sub),
                aggregator: Arc::clone(&shard.core.aggregator),
                config: shard.core.config.clone(),
                strategy: shard.core.strategy,
                index,
                upkeep: shard.core.upkeep,
                planner: shard.core.planner.clone(),
                statistics,
                cache: None,
                policy: shard.core.policy.clone(),
                shards: None,
            })
        } else {
            Arc::clone(&shard.core)
        };
        shards.push(crate::shard::EngineShard {
            region: shard.region,
            core: new_core,
            requests: AtomicU64::new(shard.requests.load(Ordering::Relaxed)),
        });
    }
    Ok((ShardSet { shards }, how))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DurabilitySink;
    use crate::AsrsEngine;
    use asrs_aggregator::Selection;
    use asrs_data::gen::UniformGenerator;
    use std::sync::atomic::AtomicBool;

    fn test_engine(n: usize) -> (AsrsEngine, SpatialObject) {
        let ds = UniformGenerator::default().generate(n, 7);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let template = ds.object(0).clone();
        let engine = AsrsEngine::builder(ds, agg)
            .build_index(8, 8)
            .build()
            .unwrap();
        (engine, template)
    }

    fn fresh(template: &SpatialObject, id: u64) -> SpatialObject {
        let mut object = template.clone();
        object.id = id;
        object
    }

    /// A durability sink that can be told to veto batches, standing in
    /// for a WAL whose fsync fails.
    #[derive(Debug)]
    struct TogglingSink {
        fail: AtomicBool,
    }

    impl DurabilitySink for TogglingSink {
        fn log_mutation(&self, _generation: u64, _mutation: &Mutation) -> Result<(), AsrsError> {
            if self.fail.load(Ordering::SeqCst) {
                Err(AsrsError::Internal {
                    message: "sink vetoed".to_string(),
                })
            } else {
                Ok(())
            }
        }
    }

    /// A batch coalescing `append(id, ttl)` before `remove(id)` must
    /// leave the id disarmed, exactly as sequential application would —
    /// not armed with a stale deadline that later expires a re-appended
    /// live object.
    #[test]
    fn coalesced_arm_then_remove_leaves_id_disarmed() {
        let (engine, template) = test_engine(60);
        let receipts = commit(
            &engine.shared,
            vec![
                BatchOp::Append {
                    object: fresh(&template, 1_000),
                    ttl: Some(Duration::from_millis(1)),
                },
                BatchOp::Remove { id: 1_000 },
            ],
        )
        .unwrap();
        assert_eq!(receipts.len(), 2);
        assert_eq!(engine.mutation_stats().pending_ttl, 0);

        // Re-append the id without a TTL; the old deadline must not fire.
        engine.append(fresh(&template, 1_000)).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(engine.sweep_expired().unwrap().is_empty());
        assert!(engine.dataset().contains_id(1_000));
    }

    /// The mirror ordering: remove-then-re-append-with-TTL in one batch
    /// must leave the *new* deadline armed.
    #[test]
    fn coalesced_remove_then_arm_leaves_id_armed() {
        let (engine, template) = test_engine(60);
        engine
            .append_with_ttl(fresh(&template, 1_001), Duration::from_secs(3600))
            .unwrap();
        commit(
            &engine.shared,
            vec![
                BatchOp::Remove { id: 1_001 },
                BatchOp::Append {
                    object: fresh(&template, 1_001),
                    ttl: Some(Duration::from_millis(1)),
                },
            ],
        )
        .unwrap();
        assert_eq!(engine.mutation_stats().pending_ttl, 1);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(engine.sweep_expired().unwrap().len(), 1);
        assert!(!engine.dataset().contains_id(1_001));
    }

    /// A WAL veto during a sweep publishes nothing; the popped deadlines
    /// must be re-armed so the next sweep retries them instead of leaving
    /// the objects live-but-unexpirable.
    #[test]
    fn failed_sweep_rearms_popped_deadlines() {
        let (engine, template) = test_engine(60);
        let sink = Arc::new(TogglingSink {
            fail: AtomicBool::new(false),
        });
        engine.attach_durability(Arc::clone(&sink) as _).unwrap();
        engine
            .append_with_ttl(fresh(&template, 2_000), Duration::from_millis(1))
            .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        sink.fail.store(true, Ordering::SeqCst);
        assert!(engine.sweep_expired().is_err());
        // The deadline survived the aborted batch…
        assert_eq!(engine.mutation_stats().pending_ttl, 1);
        assert!(engine.dataset().contains_id(2_000));
        // …and fires once the log recovers.
        sink.fail.store(false, Ordering::SeqCst);
        assert_eq!(engine.sweep_expired().unwrap().len(), 1);
        assert!(!engine.dataset().contains_id(2_000));
    }

    /// An aborted batch must not move the durable maintenance counters
    /// (or the rebuild budget): `/metrics` records only what published.
    #[test]
    fn aborted_batch_leaves_counters_untouched() {
        let (engine, template) = test_engine(60);
        let sink = Arc::new(TogglingSink {
            fail: AtomicBool::new(false),
        });
        engine.attach_durability(Arc::clone(&sink) as _).unwrap();
        engine.append(fresh(&template, 3_000)).unwrap();
        let before = engine.mutation_stats();
        sink.fail.store(true, Ordering::SeqCst);
        assert!(engine.append(fresh(&template, 3_001)).is_err());
        let after = engine.mutation_stats();
        assert_eq!(after.generation, before.generation);
        assert_eq!(
            after.incremental_index_updates,
            before.incremental_index_updates
        );
        assert_eq!(after.index_rebuilds, before.index_rebuilds);
        assert_eq!(after.repartitions, before.repartitions);
        sink.fail.store(false, Ordering::SeqCst);
        engine.append(fresh(&template, 3_001)).unwrap();
        assert!(
            engine.mutation_stats().incremental_index_updates > before.incremental_index_updates
        );
    }
}
