//! Cross-generation cache carry-forward: the churn-survival half of the
//! generational cache design.
//!
//! Generation stamping ([`RequestKey::stamped`](crate::RequestKey)) makes
//! stale hits structurally impossible — but it also moves the *entire*
//! cache to fresh key space on every published mutation, so under a mixed
//! read/append workload nearly every read goes cold even though almost no
//! cached answer actually changed.  This module closes that gap: right
//! after a batch publishes (still under the mutation mutex), it walks the
//! old generation's entries and **re-stamps** every entry whose answer is
//! provably unaffected by the batch to the new generation.
//!
//! # The proof obligation
//!
//! A carry is sound iff a cold recomputation against the successor core
//! would produce a byte-identical `stats_stripped()` response.  The
//! predicate below establishes this from the ASP reduction's geometry
//! (Section 4.1 of the paper): appending or removing an object `o` changes
//! the covering set only of anchors strictly inside the *influence window*
//! `W(o.ρ) = (ρ.x − a, ρ.x) × (ρ.y − b, ρ.y)` — exactly the rectangle
//! object's open interior — and changes arrangement-cell representatives
//! only for cells meeting the window's edge coordinates.  An entry is
//! carried only when every per-slot check passes:
//!
//! - **R1 (plan stability)** — the successor core's planner still routes
//!   the request to the backend that produced the stored response, and the
//!   plan still admits.  Statistics shift with the dataset, so the planner
//!   may genuinely change its mind; a carried hit must not mask that.
//! - **R2 (reported regions untouched)** — no touched location lies inside
//!   any reported result region (closed containment, a conservative
//!   superset of the open window test).  This guarantees every *reported*
//!   anchor keeps its covering set, hence its representation and distance.
//! - **R3 (windowMin probe)** — for every touched location, the minimum
//!   distance attainable by any candidate anchored inside the influence
//!   window is computed against the successor dataset with the engine's
//!   own discretize–split branch-and-bound ([`DsSearch::search_space`]
//!   restricted to the window, Equation-1 pruning and all); if that
//!   windowMin reaches the slot's cutoff `d_max` (the worst reported
//!   distance), a changed candidate could enter or reorder the result
//!   set, and the entry is rejected.  A small relative tolerance widens
//!   the rejection band so an epsilon disagreement between evaluation
//!   orders can only reject.
//! - **R4 (anchor stability)** — every reported anchor snaps to itself
//!   under the successor instance's [`EdgeSnapper`].  Canonical answers
//!   report global edge-interval midpoints; if an edge appeared or
//!   vanished next to a reported anchor, the recomputed answer would name
//!   a different representative even though the covering set is unchanged.
//!
//! Candidates *tied* with a reported entry cannot displace it either: the
//! retained set is the minimum of the total order `(distance, anchor.y,
//! anchor.x)` (see [`BestSet`]), so a batch changes the winner only by
//! introducing a preceding candidate.  New or improved candidates live in
//! the influence windows (rejected by R3); a snapping-grid split elsewhere
//! moves a competitor's representative only *within* its own edge
//! interval, so a competitor ordered after a reported anchor stays after
//! it unless the reported anchor's own interval split — which R4 rejects.
//!
//! Batch-level gates: only sharded (canonical-mode) cores carry — the
//! byte-identity guarantee the predicate leans on is the canonical
//! executor's; re-partitions and bounding-box movement reject the whole
//! batch (the search space itself moved).  Top-k responses carry only when
//! the ranking is full (`len == k`), since a short ranking can be extended
//! by a candidate *worse* than every reported distance.  MaxRS responses
//! carry through their ASRS reduction (count aggregator, target above the
//! cardinality): the reduction shifts every candidate's distance by the
//! same amount when the cardinality changes, so order is preserved and the
//! same R2–R4 obligations apply with the cutoff `target − count`.
//! Approximate responses never carry: approximation-factor pruning makes
//! the influence-window argument inapplicable.
//!
//! Residual risk — an exact f64 distance tie at `d_max` whose tie-break
//! winner migrates between arrangement cells outside every window — is
//! measure-zero but real, so the proof path is belt-and-braces: debug
//! builds recompute every accepted entry and byte-compare
//! `stats_stripped()` serializations before re-stamping (a mismatch counts
//! a [`carry_proof_failure`](crate::CacheStats::carry_proof_failures) and
//! skips the carry), and the release-mode churn-parity suite
//! (`tests/mutation_parity.rs`) performs the same comparison end-to-end.
//!
//! # Probe-context reuse
//!
//! R3 and R4 need an [`AspInstance`] (and its [`EdgeSnapper`]) per distinct
//! query size — the expensive part of the pass.  The contexts persist in
//! the mutator state ([`CarryProbes`]) across publishes: an append-only
//! batch extends each cached instance *incrementally* (push the new
//! rectangles, sorted-insert their four edge coordinates, re-derive space,
//! accuracy and snapper), which is bit-identical to a fresh build because
//! appends land at the end of dataset iteration order and every derived
//! field is recomputed with the same fold the builder uses.  Any other
//! shape — removals, expiries, a stale context — falls back to a fresh
//! build.  Debug builds assert the incremental result against a fresh
//! build on every update.

use std::collections::HashMap;

use asrs_aggregator::Selection;
use asrs_geo::{Point, Rect, RegionSize};

use crate::asp::{AspInstance, EdgeSnapper, RectObject};
use crate::best::BestSet;
use crate::cache::CarryCandidate;
use crate::config::SearchConfig;
use crate::ds_search::DsSearch;
use crate::engine::EngineCore;
use crate::maxrs::{MaxRsResult, MaxRsSearch};
use crate::query::AsrsQuery;
use crate::request::{QueryOutcome, QueryRequest};
use crate::result::SearchResult;
use crate::stats::SearchStats;

/// Hard ceiling on candidate rectangles per windowMin search.  A
/// pathologically dense window makes proving cheap entries more expensive
/// than recomputing them — past the ceiling the entry is simply rejected
/// and takes the ordinary cold miss.  The branch-and-bound visits only
/// what Equation-1 pruning cannot exclude, so the ceiling is sized for
/// the candidate *list*, not for an exhaustive visit.
const PROBE_BUDGET: usize = 32_768;

/// Relative tolerance applied to the R3 cutoff comparison.  The probe
/// evaluates representations with [`CompositeAggregator::aggregate_region`]
/// while the backends fold per-rectangle statistics; the two orders agree
/// to well under this bound, and the tolerance only ever widens the
/// rejection band (a borderline carry degrades to a cold miss, never the
/// other way around).
const CUTOFF_SLACK: f64 = 1e-9;

/// Ceiling on cached per-size probe contexts.  Distinct query sizes past
/// the ceiling evict every context the current pass did not refresh.
const MAX_CACHED_SIZES: usize = 16;

/// Re-stamps every provably unaffected cache entry of `old`'s generation
/// to `next`'s generation.  Called from the publish path with the mutation
/// mutex held, after the WAL accepted the batch (nothing can abort the
/// publish past that point) and *before* the successor core swaps in, so
/// readers never observe a cold window for the pass's duration.
///
/// `touched` holds the location of every object the batch appended or
/// removed; `repartitioned` reports whether any delta rebuilt the shard
/// layout; `append_only` is true when every op in the batch (piggybacked
/// expiries included) was an append — the precondition for updating the
/// persistent probe contexts in `probes` incrementally.
pub(crate) fn carry_forward(
    old: &EngineCore,
    next: &EngineCore,
    touched: &[Point],
    repartitioned: bool,
    append_only: bool,
    probes: &mut CarryProbes,
) {
    let Some(cache) = next.cache.as_deref() else {
        return;
    };
    // Canonical sharded cores only: the soundness argument is built on the
    // scatter executor's decomposition-independence guarantee.  A
    // re-partition or a moved bounding box changes the search space (and
    // shard routing) wholesale — reject the entire batch.
    if next.shards.is_none() || repartitioned || touched.is_empty() {
        return;
    }
    if !rects_bit_equal(old.dataset.bounding_box(), next.dataset.bounding_box()) {
        return;
    }
    let candidates = cache.carry_candidates(old.generation);
    if candidates.is_empty() {
        return;
    }
    let incremental =
        append_only && next.dataset.len() == old.dataset.len() + touched.len();
    let mut probes = PassProbes {
        cache: probes,
        old_generation: old.generation,
        old_len: old.dataset.len(),
        incremental,
    };
    probes.prune();
    for candidate in candidates {
        if !entry_survives(next, &candidate, touched, &mut probes) {
            continue;
        }
        // Debug builds prove every accepted carry by recomputation before
        // it becomes servable; release builds rely on the predicate (and
        // the churn-parity suite, which runs this same comparison).
        #[cfg(debug_assertions)]
        {
            if !byte_identical_recompute(next, &candidate) {
                cache.note_carry_proof_failure();
                continue;
            }
        }
        let new_key = candidate.request.cache_key().stamped(next.generation);
        cache.carry(&candidate.key, new_key, old.generation);
    }
}

/// The full per-entry predicate (R1 plus the per-slot checks).
fn entry_survives(
    next: &EngineCore,
    candidate: &CarryCandidate,
    touched: &[Point],
    probes: &mut PassProbes<'_>,
) -> bool {
    // R1: the successor planner must still choose the stored backend and
    // admit the plan — otherwise a cold run would answer (or fail)
    // differently.
    let Ok(plan) = next.plan(&candidate.request) else {
        return false;
    };
    if plan.backend != candidate.response.backend || plan.admit().is_err() {
        return false;
    }
    match (candidate.request.operation(), &candidate.response.outcome) {
        (QueryRequest::Similar { query }, QueryOutcome::Best(result)) => {
            slot_survives(next, query, std::slice::from_ref(result), touched, probes)
        }
        (QueryRequest::TopK { query, k }, QueryOutcome::Ranked(ranked)) => {
            // A short ranking (fewer candidates than requested) can be
            // *extended* by a new candidate worse than every reported
            // distance, which no cutoff probe would catch.
            ranked.len() == *k && slot_survives(next, query, ranked, touched, probes)
        }
        (QueryRequest::Batch { queries }, QueryOutcome::Batch(results)) => {
            queries.len() == results.len()
                && queries.iter().zip(results).all(|(query, result)| {
                    slot_survives(next, query, std::slice::from_ref(result), touched, probes)
                })
        }
        (QueryRequest::MaxRs { size }, QueryOutcome::MaxRs(result)) => {
            maxrs_survives(next, *size, Selection::All, result, touched, probes)
        }
        (QueryRequest::MaxRsSelective { size, selection }, QueryOutcome::MaxRs(result)) => {
            maxrs_survives(next, *size, selection.clone(), result, touched, probes)
        }
        // Approximate: pruning against the (1+δ) band means candidates far
        // from the cutoff can steer the reported answer.  Mismatched
        // shapes: never sound to serve.
        _ => false,
    }
}

/// R2 + R3 + R4 for one query/result-set slot.  `results` is the slot's
/// reported set, best first; the cutoff is the worst reported distance.
fn slot_survives(
    next: &EngineCore,
    query: &AsrsQuery,
    results: &[SearchResult],
    touched: &[Point],
    probes: &mut PassProbes<'_>,
) -> bool {
    let Some(d_max) = results.last().map(|r| r.distance) else {
        return false;
    };
    // A non-finite cutoff poisons every comparison below (NaN compares
    // false, so probes could never reject).
    if !d_max.is_finite() {
        return false;
    }
    // R2: every reported region must be untouched — closed containment, a
    // conservative superset of the open influence-window membership test —
    // so reported representations and distances are still exact.
    for result in results {
        for p in touched {
            if result.region.contains_point(p) {
                return false;
            }
        }
    }
    // R4: reported anchors must still be their own arrangement-cell
    // representatives under the successor's edge set.
    let size = query.size;
    {
        let ctx = probes.context(next, size);
        for result in results {
            let snapped = ctx.snapper.snap(result.anchor);
            if !points_bit_equal(snapped, result.anchor) {
                return false;
            }
        }
    }
    // R3: no candidate inside any influence window may reach the cutoff.
    // Each window runs the engine's own pruned branch-and-bound instead of
    // enumerating arrangement cells — a dense instance puts 10^5..10^6
    // cells in a single window, but the windowMin search visits only what
    // Equation-1 pruning cannot exclude.
    let cutoff = d_max + d_max.abs() * CUTOFF_SLACK;
    let exact = SearchConfig {
        delta: 0.0,
        ..next.config.clone()
    };
    let solver = DsSearch::with_config(&next.dataset, &next.aggregator, exact);
    for p in touched {
        let ctx = probes.context(next, size);
        match window_min(&solver, &ctx.asp, query, size, *p) {
            Some(min) if min > cutoff => {}
            // `<= cutoff`, NaN, or an over-budget window: a changed
            // candidate could enter (or tie into) the reported set.
            _ => return false,
        }
    }
    true
}

/// R2 + R3 + R4 for a MaxRS answer, through the MaxRS → ASRS reduction
/// (count aggregator, target one above the successor cardinality).
///
/// The reduction's target moves with the cardinality, shifting *every*
/// candidate's distance by the same amount — order, ties and tie-breaks
/// are preserved exactly — so the stored `(region, anchor, count)` answer
/// is reproduced byte-for-byte by a successor search iff no influence
/// window holds a candidate reaching the reported count: windowMin
/// distance `target − windowMaxCount` must stay strictly above the
/// reported `target − count`.  Counts and targets are integers below
/// 2^53, so the comparison is exact and the slack only widens rejection.
fn maxrs_survives(
    next: &EngineCore,
    size: RegionSize,
    selection: Selection,
    result: &MaxRsResult,
    touched: &[Point],
    probes: &mut PassProbes<'_>,
) -> bool {
    // R2: the reported region's strict count is untouched.
    for p in touched {
        if result.region.contains_point(p) {
            return false;
        }
    }
    // R4: the reported anchor is still its own cell representative.
    {
        let ctx = probes.context(next, size);
        if !points_bit_equal(ctx.snapper.snap(result.anchor), result.anchor) {
            return false;
        }
    }
    // R3 via the same reduction the sharded executor runs
    // (`EngineCore::sharded_max_rs`): exact config, count aggregator over
    // the request's selection, target above the successor cardinality.
    let exact = SearchConfig {
        delta: 0.0,
        ..next.config.clone()
    };
    let Ok((aggregator, query)) = MaxRsSearch::new(&next.dataset, size)
        .with_selection(selection)
        .with_config(exact.clone())
        .reduction()
    else {
        return false;
    };
    let d_reported = (next.dataset.len() as f64 + 1.0) - result.count as f64;
    // R2 keeps every counted object alive, so the reported count cannot
    // exceed the successor cardinality; anything else is a stored answer
    // this predicate does not understand.
    if !d_reported.is_finite() || d_reported < 1.0 {
        return false;
    }
    let cutoff = d_reported + d_reported * CUTOFF_SLACK;
    let solver = DsSearch::with_config(&next.dataset, &aggregator, exact);
    for p in touched {
        let ctx = probes.context(next, size);
        match window_min(&solver, &ctx.asp, &query, size, *p) {
            Some(min) if min > cutoff => {}
            _ => return false,
        }
    }
    true
}

/// The minimum distance any candidate anchored in the influence window of
/// `touched` attains against the successor dataset, or `None` when the
/// window intersects more than [`PROBE_BUDGET`] candidate rectangles.
///
/// Mirrors the cold path: exact config (δ forced to zero, like the scatter
/// executor), the same contributing-rectangle filter, and the
/// empty-covering candidate seeded first — window cells no rectangle
/// reaches are real candidates too (a removal can strip a window down to
/// empty covering), and seeding it also primes the pruning cutoff.
fn window_min(
    solver: &DsSearch<'_>,
    asp: &AspInstance,
    query: &AsrsQuery,
    size: RegionSize,
    touched: Point,
) -> Option<f64> {
    let window = Rect::new(
        touched.x - size.width,
        touched.y - size.height,
        touched.x,
        touched.y,
    );
    let candidates = solver.contributing(asp, asp.rects_intersecting(&window));
    if candidates.len() > PROBE_BUDGET {
        return None;
    }
    let aggregator = solver.aggregator();
    let zero_stats = vec![0.0; aggregator.stats_dim()];
    let empty_rep = aggregator.stats_to_features(&zero_stats);
    let empty_distance =
        aggregator.distance(&empty_rep, &query.target, &query.weights, query.metric);
    let mut best = BestSet::new(1);
    best.offer(
        empty_distance,
        Point::new(window.min_x, window.min_y),
        empty_rep,
    );
    let mut stats = SearchStats::new();
    solver
        .search_space(asp, query, window, candidates, &mut best, &mut stats, None)
        .ok()?;
    best.into_entries().first().map(|e| e.distance)
}

/// The persistent per-size probe contexts, owned by the mutator state and
/// reused across publishes (see the module docs).  Building an
/// [`AspInstance`] per size dominated the carry pass; append-only batches
/// now extend each cached context incrementally.
#[derive(Debug, Default)]
pub(crate) struct CarryProbes {
    sizes: HashMap<(u64, u64), SizeContext>,
}

/// One cached probe context: the ASP instance and snapper for a query
/// size, plus the sorted (by `total_cmp`, duplicates kept) edge-coordinate
/// arrays the incremental update maintains, tagged with the dataset
/// generation and length they reflect.
#[derive(Debug)]
struct SizeContext {
    asp: AspInstance,
    snapper: EdgeSnapper,
    xs: Vec<f64>,
    ys: Vec<f64>,
    generation: u64,
    len: usize,
}

/// One carry pass's view of the probe cache: knows which predecessor
/// generation is extendable and whether this batch qualifies.
struct PassProbes<'a> {
    cache: &'a mut CarryProbes,
    old_generation: u64,
    old_len: usize,
    incremental: bool,
}

fn size_key(size: RegionSize) -> (u64, u64) {
    (size.width.to_bits(), size.height.to_bits())
}

impl PassProbes<'_> {
    /// Evicts contexts for sizes the workload stopped querying once the
    /// cache outgrows its ceiling: anything not refreshed by the previous
    /// pass is stale.
    fn prune(&mut self) {
        if self.cache.sizes.len() > MAX_CACHED_SIZES {
            let keep = self.old_generation;
            self.cache.sizes.retain(|_, ctx| ctx.generation == keep);
        }
    }

    /// The probe context for `size` against the successor core: reused
    /// when this pass already refreshed it, extended incrementally when
    /// the batch was append-only and the context reflects the predecessor,
    /// rebuilt from scratch otherwise.
    fn context(&mut self, next: &EngineCore, size: RegionSize) -> &SizeContext {
        use std::collections::hash_map::Entry;
        match self.cache.sizes.entry(size_key(size)) {
            Entry::Occupied(occupied) => {
                let ctx = occupied.into_mut();
                if ctx.generation == next.generation {
                    // Already refreshed for this publish by another entry.
                } else if self.incremental
                    && ctx.generation == self.old_generation
                    && ctx.len == self.old_len
                {
                    ctx.extend(next, size);
                } else {
                    *ctx = SizeContext::fresh(next, size);
                }
                ctx
            }
            Entry::Vacant(vacant) => vacant.insert(SizeContext::fresh(next, size)),
        }
    }
}

impl SizeContext {
    /// Builds the context from scratch, mirroring the canonical scatter
    /// executor's instance construction exactly (`shard::scatter_search`),
    /// so snapped representatives agree bit-for-bit.
    fn fresh(next: &EngineCore, size: RegionSize) -> Self {
        let asp = AspInstance::build(
            &next.dataset,
            size,
            next.config.accuracy,
            next.config.accuracy_floor,
        );
        let snapper = EdgeSnapper::from_asp(&asp);
        let mut xs = Vec::with_capacity(asp.rects().len() * 2);
        let mut ys = Vec::with_capacity(asp.rects().len() * 2);
        for r in asp.rects() {
            xs.push(r.rect.min_x);
            xs.push(r.rect.max_x);
            ys.push(r.rect.min_y);
            ys.push(r.rect.max_y);
        }
        xs.sort_by(f64::total_cmp);
        ys.sort_by(f64::total_cmp);
        Self {
            asp,
            snapper,
            xs,
            ys,
            generation: next.generation,
            len: next.dataset.len(),
        }
    }

    /// Extends the context over the objects an append-only batch added:
    /// push their rectangles (appends land at the end of dataset iteration
    /// order), sorted-insert their edge coordinates, and re-derive space,
    /// accuracy and snapper with the same folds a fresh build uses —
    /// bit-identical output for a fraction of the sort cost.
    fn extend(&mut self, next: &EngineCore, size: RegionSize) {
        for idx in self.len..next.dataset.len() {
            let rect = Rect::from_top_right(next.dataset.object(idx).location, size);
            sorted_insert(&mut self.xs, rect.min_x);
            sorted_insert(&mut self.xs, rect.max_x);
            sorted_insert(&mut self.ys, rect.min_y);
            sorted_insert(&mut self.ys, rect.max_y);
            self.asp.push_rect(RectObject {
                rect,
                object_idx: idx as u32,
            });
        }
        self.asp.refresh(
            next.config.accuracy,
            next.config.accuracy_floor,
            &self.xs,
            &self.ys,
        );
        self.snapper = EdgeSnapper::from_sorted_edges(&self.xs, &self.ys);
        self.generation = next.generation;
        self.len = next.dataset.len();
        #[cfg(debug_assertions)]
        self.assert_matches_fresh(next, size);
        #[cfg(not(debug_assertions))]
        let _ = size;
    }

    /// The debug-build proof of the incremental update: every derived
    /// field must match a from-scratch build of the successor dataset.
    #[cfg(debug_assertions)]
    fn assert_matches_fresh(&self, next: &EngineCore, size: RegionSize) {
        let fresh = AspInstance::build(
            &next.dataset,
            size,
            next.config.accuracy,
            next.config.accuracy_floor,
        );
        debug_assert!(
            self.asp.rects() == fresh.rects()
                && rects_bit_equal(self.asp.space(), fresh.space())
                && self.asp.accuracy() == fresh.accuracy(),
            "incremental ASP instance diverged from a fresh build"
        );
        debug_assert!(
            self.snapper.bits_eq(&EdgeSnapper::from_asp(&fresh)),
            "incremental snapper diverged from a fresh build"
        );
    }
}

/// Inserts `value` into a `total_cmp`-sorted vector, keeping it sorted.
fn sorted_insert(values: &mut Vec<f64>, value: f64) {
    let at = values.partition_point(|v| v.total_cmp(&value).is_lt());
    values.insert(at, value);
}

fn rects_bit_equal(a: Option<Rect>, b: Option<Rect>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => {
            a.min_x.to_bits() == b.min_x.to_bits()
                && a.min_y.to_bits() == b.min_y.to_bits()
                && a.max_x.to_bits() == b.max_x.to_bits()
                && a.max_y.to_bits() == b.max_y.to_bits()
        }
        _ => false,
    }
}

fn points_bit_equal(a: Point, b: Point) -> bool {
    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits()
}

/// The debug-build proof: a carried entry must serve exactly what a cold
/// recomputation against the successor core would.  Statistics describe
/// the run, not the answer, so both sides compare `stats_stripped()` —
/// the same comparison form as the sharded-parity guarantee.
#[cfg(debug_assertions)]
fn byte_identical_recompute(next: &EngineCore, candidate: &CarryCandidate) -> bool {
    match next.execute(&candidate.request) {
        Ok(fresh) => {
            serde::json::to_string(&fresh.stats_stripped())
                == serde::json::to_string(&candidate.response.stats_stripped())
        }
        Err(_) => false,
    }
}
