//! Datasets: collections of spatial objects sharing a schema.
//!
//! # Chunked persistent columns
//!
//! A [`Dataset`] stores its objects as a list of immutable, `Arc`-shared
//! *chunks* rather than one flat vector.  Cloning a dataset therefore
//! costs one reference count per chunk — never a byte copy of the
//! objects — which is what lets the generational mutation path assemble a
//! successor dataset per commit batch without copying the whole column:
//!
//! * [`Dataset::append`] pushes into the tail chunk when it is uniquely
//!   owned and under the chunk-size cap, copies only the (bounded) tail
//!   chunk when it is shared, and starts a fresh chunk once the tail is
//!   full — the large seed chunks are never touched;
//! * [`Dataset::remove_by_id`] copy-on-writes only the chunk owning the
//!   removed object.
//!
//! The chunk layout is an implementation detail: equality
//! ([`PartialEq`]), iteration order, indexing ([`Dataset::object`]) and
//! the serialized form (`{schema, objects}`) are all layout-independent,
//! so two datasets holding the same objects in the same order compare and
//! serialize identically no matter how their mutation histories chunked
//! them.

use crate::{AttrValue, Schema, SchemaError, SpatialObject};
use asrs_geo::{Point, Rect};
use serde::{map_get, DeError, Deserialize, Serialize, Value};
use std::sync::Arc;

/// Once the tail chunk reaches this many objects, appends start a fresh
/// chunk instead of growing (or copy-on-writing) it.  The cap bounds the
/// bytes a mutation batch can copy: a shared tail is cloned at most this
/// large, and everything older is shared by reference.
const CHUNK_CAP: usize = 1024;

/// An immutable collection of spatial objects with a common schema.
///
/// `Dataset` is the input `O` of the ASRS problem (Definition 4).  It owns
/// its objects; the search algorithms hold a shared reference.  Objects
/// live in `Arc`-shared chunks (see the module documentation), so cloning
/// a dataset is cheap and mutation helpers copy at most one chunk.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    chunks: Vec<Arc<Vec<SpatialObject>>>,
    /// `starts[i]` is the dataset position of chunk `i`'s first object;
    /// kept strictly increasing with `starts[0] == 0` when non-empty.
    starts: Vec<usize>,
    len: usize,
    bbox_cache: Option<Rect>,
}

impl Dataset {
    /// Creates a dataset, validating every object against the schema.
    pub fn new(schema: Schema, objects: Vec<SpatialObject>) -> Result<Self, SchemaError> {
        for o in &objects {
            schema.validate_values(&o.values)?;
        }
        Ok(Self::new_unchecked(schema, objects))
    }

    /// Creates a dataset without validating objects.
    ///
    /// Intended for generators that construct values known to conform to the
    /// schema; external inputs should use [`Dataset::new`].
    pub fn new_unchecked(schema: Schema, objects: Vec<SpatialObject>) -> Self {
        let len = objects.len();
        let (chunks, starts) = if objects.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            // The seed column is one chunk: it is never copied again
            // (appends grow past it, removals copy-on-write at most one
            // chunk), so splitting it here would only add indirection.
            (vec![Arc::new(objects)], vec![0])
        };
        let mut ds = Self {
            schema,
            chunks,
            starts,
            len,
            bbox_cache: None,
        };
        ds.bbox_cache = ds.compute_bbox();
        ds
    }

    /// The dataset schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Iterates over the objects in dataset (insertion) order.
    #[inline]
    pub fn objects(&self) -> impl Iterator<Item = &SpatialObject> + Clone + '_ {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the dataset holds no object.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The object with position `idx` in the dataset.
    #[inline]
    pub fn object(&self, idx: usize) -> &SpatialObject {
        if let [chunk] = self.chunks.as_slice() {
            return &chunk[idx];
        }
        let c = match self.starts.binary_search(&idx) {
            Ok(c) => c,
            Err(c) => c - 1,
        };
        &self.chunks[c][idx - self.starts[c]]
    }

    /// Appends `object` at the tail of the dataset, validating it against
    /// the schema.
    ///
    /// Appending preserves the order of existing objects, so a dataset
    /// grown by appends is byte-identical (objects and their order) to a
    /// dataset constructed from the final object vector in one go — the
    /// property the generational engine's rebuild-equivalence guarantee
    /// rests on.  The bounding box is maintained incrementally (a union
    /// with the new location, no rescan).
    ///
    /// Cost: a fresh or uniquely owned tail chunk grows in place; a tail
    /// chunk shared with another dataset clone is copied, but only up to
    /// the chunk-size cap — the chunks before it are shared untouched.
    ///
    /// Id uniqueness is *not* checked here (a dataset is allowed to carry
    /// duplicate ids, and several seed datasets do); the engine layer
    /// enforces uniqueness for mutable engines, where removal-by-id must be
    /// unambiguous.
    pub fn append(&mut self, object: SpatialObject) -> Result<(), SchemaError> {
        self.schema.validate_values(&object.values)?;
        let location = object.location;
        match self.chunks.last_mut() {
            Some(tail) if tail.len() < CHUNK_CAP => {
                if let Some(tail) = Arc::get_mut(tail) {
                    tail.push(object);
                } else {
                    // Shared tail: copy-on-write the one (bounded) chunk.
                    let mut copy = Vec::with_capacity((tail.len() + 1).min(CHUNK_CAP));
                    copy.extend_from_slice(tail);
                    copy.push(object);
                    *tail = Arc::new(copy);
                }
            }
            _ => {
                self.starts.push(self.len);
                self.chunks.push(Arc::new(vec![object]));
            }
        }
        self.len += 1;
        self.bbox_cache = Some(match self.bbox_cache {
            Some(bbox) => Rect::new(
                bbox.min_x.min(location.x),
                bbox.min_y.min(location.y),
                bbox.max_x.max(location.x),
                bbox.max_y.max(location.y),
            ),
            None => Rect::new(location.x, location.y, location.x, location.y),
        });
        Ok(())
    }

    /// Removes the first object whose id equals `id`, returning it, or
    /// `None` when no object matches.
    ///
    /// Removal preserves the relative order of the remaining objects, so
    /// the surviving object sequence equals the one a fresh dataset built
    /// without the removed object would hold — again the
    /// rebuild-equivalence property.  Only the chunk owning the removed
    /// object is copied; the bounding box is recomputed only when the
    /// removed location sat on the old boundary.
    pub fn remove_by_id(&mut self, id: u64) -> Option<SpatialObject> {
        let (chunk_idx, inner_idx) = self.chunks.iter().enumerate().find_map(|(ci, chunk)| {
            chunk.iter().position(|o| o.id == id).map(|oi| (ci, oi))
        })?;
        let removed = if self.chunks[chunk_idx].len() == 1 {
            let chunk = self.chunks.remove(chunk_idx);
            chunk.first().cloned()?
        } else {
            let chunk = Arc::make_mut(&mut self.chunks[chunk_idx]);
            chunk.remove(inner_idx)
        };
        self.rebuild_starts();
        self.len -= 1;
        let on_boundary = self.bbox_cache.is_some_and(|bbox| {
            let p = removed.location;
            p.x == bbox.min_x || p.x == bbox.max_x || p.y == bbox.min_y || p.y == bbox.max_y
        });
        if on_boundary {
            self.bbox_cache = self.compute_bbox();
        }
        Some(removed)
    }

    /// Recomputes the `starts` prefix sums from the chunk lengths — the
    /// one authoritative derivation, run after any structural edit.
    fn rebuild_starts(&mut self) {
        let mut at = 0;
        self.starts.clear();
        for chunk in &self.chunks {
            self.starts.push(at);
            at += chunk.len();
        }
    }

    /// Returns `true` when any object carries `id`.
    pub fn contains_id(&self, id: u64) -> bool {
        self.objects().any(|o| o.id == id)
    }

    /// The smallest id strictly greater than every id in the dataset
    /// (`0` when empty) — a convenient id source for appended objects.
    pub fn next_id(&self) -> u64 {
        self.objects()
            .map(|o| o.id)
            .max()
            .map_or(0, |max| max + 1)
    }

    fn compute_bbox(&self) -> Option<Rect> {
        Rect::mbr_of_points(self.objects().map(|o| o.location))
    }

    /// The minimum bounding rectangle of all object locations, or `None` for
    /// an empty dataset.
    #[inline]
    pub fn bounding_box(&self) -> Option<Rect> {
        self.bbox_cache
    }

    /// The bounding box, expanded so that it has strictly positive extent on
    /// both axes (degenerate axes are padded by `pad`).  Useful for building
    /// grids over datasets whose objects are collinear.
    pub fn padded_bounding_box(&self, pad: f64) -> Option<Rect> {
        let b = self.bounding_box()?;
        let dx = if b.width() > 0.0 { 0.0 } else { pad };
        let dy = if b.height() > 0.0 { 0.0 } else { pad };
        Some(b.expanded(dx, dy))
    }

    /// Like [`Dataset::padded_bounding_box`], but the pad for a degenerate
    /// axis scales with the dataset's extent (`relative` × the larger axis
    /// extent), so micro-extent datasets — a lat/lon neighbourhood spanning
    /// ~0.01° — are not drowned in absolute padding.  `absolute` is the
    /// fallback pad used only when *both* axes are degenerate (a
    /// single-point dataset has no extent to scale from).
    pub fn relative_padded_bounding_box(&self, relative: f64, absolute: f64) -> Option<Rect> {
        let b = self.bounding_box()?;
        let scale = b.width().max(b.height());
        let pad = if scale > 0.0 {
            relative * scale
        } else {
            absolute
        };
        self.padded_bounding_box(pad)
    }

    /// Returns the objects strictly inside `region` (open containment, as in
    /// Lemma 1 of the paper).
    pub fn objects_strictly_in(&self, region: &Rect) -> Vec<&SpatialObject> {
        self.objects()
            .filter(|o| region.strictly_contains_point(&o.location))
            .collect()
    }

    /// Returns the objects inside `region` including its boundary.
    pub fn objects_in(&self, region: &Rect) -> Vec<&SpatialObject> {
        self.objects()
            .filter(|o| region.contains_point(&o.location))
            .collect()
    }

    /// Counts the objects strictly inside `region`.
    pub fn count_strictly_in(&self, region: &Rect) -> usize {
        self.objects()
            .filter(|o| region.strictly_contains_point(&o.location))
            .count()
    }

    /// Returns a dataset containing only the first `n` objects (the paper's
    /// "extract 1 million objects from Tweet" style of sub-sampling).
    pub fn take_prefix(&self, n: usize) -> Dataset {
        let objects: Vec<SpatialObject> = self.objects().take(n).cloned().collect();
        Dataset::new_unchecked(self.schema.clone(), objects)
    }

    /// Returns a new dataset with every location snapped to a grid of the
    /// given quantum (mimicking the finite GPS accuracy of real data; see
    /// Definition 7).
    pub fn quantized(&self, quantum: f64) -> Dataset {
        assert!(quantum > 0.0, "quantum must be positive");
        let objects = self
            .objects()
            .map(|o| {
                let x = (o.location.x / quantum).round() * quantum;
                let y = (o.location.y / quantum).round() * quantum;
                SpatialObject::new(o.id, Point::new(x, y), o.values.clone())
            })
            .collect();
        Dataset::new_unchecked(self.schema.clone(), objects)
    }

    /// Iterates over `(index, object)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &SpatialObject)> {
        self.objects().enumerate()
    }

    /// Collects the distinct values of a categorical attribute that actually
    /// occur in the dataset.
    pub fn observed_categories(&self, attr: usize) -> Vec<u32> {
        let mut seen: Vec<u32> = self.objects().filter_map(|o| o.cat_value(attr)).collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    }

    /// Computes the observed minimum and maximum of a numeric attribute.
    pub fn numeric_extent(&self, attr: usize) -> Option<(f64, f64)> {
        let mut it = self.objects().filter_map(|o| o.num_value(attr));
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v))))
    }
}

/// Equality is chunk-layout independent: two datasets are equal when they
/// hold the same schema and the same objects in the same order (and hence
/// the same bounding box), no matter how mutation history chunked them.
impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.schema == other.schema && self.objects().eq(other.objects())
    }
}

/// Serializes as `{schema, objects}` — the flat-vector shape the derive
/// produced before chunking, so persisted/JSON forms are unchanged.
impl Serialize for Dataset {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("schema".to_string(), self.schema.to_value()),
            (
                "objects".to_string(),
                Value::Seq(self.objects().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

impl Deserialize for Dataset {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::expected("map", "Dataset", v))?;
        let schema = Schema::from_value(map_get(entries, "schema"))?;
        let objects = Vec::<SpatialObject>::from_value(map_get(entries, "objects"))?;
        Ok(Dataset::new_unchecked(schema, objects))
    }
}

/// Convenience builder used by tests and examples to assemble small datasets
/// by hand.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    schema: Schema,
    objects: Vec<SpatialObject>,
}

impl DatasetBuilder {
    /// Starts a builder with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            objects: Vec::new(),
        }
    }

    /// Adds an object at `(x, y)` with the given values.
    pub fn push(&mut self, x: f64, y: f64, values: Vec<AttrValue>) -> &mut Self {
        let id = self.objects.len() as u64;
        self.objects
            .push(SpatialObject::new(id, Point::new(x, y), values));
        self
    }

    /// Finishes the builder, validating the objects.
    pub fn build(self) -> Result<Dataset, SchemaError> {
        Dataset::new(self.schema, self.objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttributeDef, AttributeKind};

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("category", AttributeKind::categorical(3)),
            AttributeDef::new("price", AttributeKind::numeric(0.0, 100.0)),
        ])
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new(schema());
        b.push(0.0, 0.0, vec![AttrValue::Cat(0), AttrValue::Num(10.0)]);
        b.push(1.0, 1.0, vec![AttrValue::Cat(1), AttrValue::Num(20.0)]);
        b.push(2.0, 5.0, vec![AttrValue::Cat(2), AttrValue::Num(30.0)]);
        b.push(4.0, 3.0, vec![AttrValue::Cat(0), AttrValue::Num(40.0)]);
        b.build().unwrap()
    }

    #[test]
    fn new_validates_objects() {
        let bad = vec![SpatialObject::new(
            0,
            Point::new(0.0, 0.0),
            vec![AttrValue::Cat(9), AttrValue::Num(1.0)],
        )];
        assert!(Dataset::new(schema(), bad).is_err());
    }

    #[test]
    fn bounding_box_covers_all_objects() {
        let ds = dataset();
        let bbox = ds.bounding_box().unwrap();
        assert_eq!(bbox, Rect::new(0.0, 0.0, 4.0, 5.0));
        for o in ds.objects() {
            assert!(bbox.contains_point(&o.location));
        }
        assert!(Dataset::new_unchecked(schema(), vec![])
            .bounding_box()
            .is_none());
    }

    #[test]
    fn padded_bounding_box_fixes_degenerate_axes() {
        let mut b = DatasetBuilder::new(Schema::empty());
        b.push(1.0, 2.0, vec![]);
        b.push(1.0, 9.0, vec![]);
        let ds = b.build().unwrap();
        let padded = ds.padded_bounding_box(0.5).unwrap();
        assert!(padded.width() > 0.0);
        assert_eq!(padded.height(), 7.0);
    }

    #[test]
    fn relative_padding_scales_with_the_extent() {
        // A micro-extent dataset: ~0.01 wide, collinear in y.  An absolute
        // pad of 1.0 would make the box 200x taller than the data is wide;
        // the relative pad stays in proportion.
        let mut b = DatasetBuilder::new(Schema::empty());
        b.push(10.0, 5.0, vec![]);
        b.push(10.01, 5.0, vec![]);
        let ds = b.build().unwrap();
        let padded = ds.relative_padded_bounding_box(0.5, 1.0).unwrap();
        assert!((padded.width() - 0.01).abs() < 1e-12);
        assert!(
            (padded.height() - 0.01).abs() < 1e-12,
            "{}",
            padded.height()
        );

        // Healthy extents are untouched.
        let ds = dataset();
        assert_eq!(
            ds.relative_padded_bounding_box(0.5, 1.0).unwrap(),
            ds.bounding_box().unwrap()
        );

        // A single point has no extent to scale from: absolute fallback.
        let mut b = DatasetBuilder::new(Schema::empty());
        b.push(3.0, 4.0, vec![]);
        let ds = b.build().unwrap();
        let padded = ds.relative_padded_bounding_box(0.5, 1.0).unwrap();
        assert_eq!(padded.width(), 2.0);
        assert_eq!(padded.height(), 2.0);

        assert!(Dataset::new_unchecked(Schema::empty(), vec![])
            .relative_padded_bounding_box(0.5, 1.0)
            .is_none());
    }

    #[test]
    fn region_queries_use_strict_and_closed_containment() {
        let ds = dataset();
        let region = Rect::new(0.0, 0.0, 2.0, 5.0);
        // Strict: objects on the boundary are excluded.
        assert_eq!(ds.count_strictly_in(&region), 1);
        assert_eq!(ds.objects_strictly_in(&region).len(), 1);
        // Closed: boundary objects count.
        assert_eq!(ds.objects_in(&region).len(), 3);
    }

    #[test]
    fn take_prefix_preserves_schema() {
        let ds = dataset();
        let small = ds.take_prefix(2);
        assert_eq!(small.len(), 2);
        assert_eq!(small.schema(), ds.schema());
        assert_eq!(ds.take_prefix(100).len(), 4);
    }

    #[test]
    fn quantized_snaps_coordinates() {
        let mut b = DatasetBuilder::new(Schema::empty());
        b.push(0.123456, 0.98765, vec![]);
        let ds = b.build().unwrap().quantized(0.01);
        let o = ds.object(0);
        assert!((o.x() - 0.12).abs() < 1e-12);
        assert!((o.y() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn observed_categories_and_numeric_extent() {
        let ds = dataset();
        assert_eq!(ds.observed_categories(0), vec![0, 1, 2]);
        assert_eq!(ds.numeric_extent(1), Some((10.0, 40.0)));
        assert_eq!(ds.numeric_extent(0), None);
    }

    #[test]
    fn append_validates_and_grows_the_bounding_box() {
        let mut ds = dataset();
        let bad = SpatialObject::new(
            9,
            Point::new(0.0, 0.0),
            vec![AttrValue::Cat(9), AttrValue::Num(1.0)],
        );
        assert!(ds.append(bad).is_err());
        assert_eq!(ds.len(), 4, "a rejected append must not change anything");

        let outside = SpatialObject::new(
            9,
            Point::new(-3.0, 7.0),
            vec![AttrValue::Cat(1), AttrValue::Num(5.0)],
        );
        ds.append(outside).unwrap();
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.bounding_box().unwrap(), Rect::new(-3.0, 0.0, 4.0, 7.0));
        assert_eq!(ds.next_id(), 10);
        assert!(ds.contains_id(9));

        // Appending from empty seeds the box at the point itself.
        let mut empty = Dataset::new_unchecked(Schema::empty(), vec![]);
        empty
            .append(SpatialObject::new(0, Point::new(2.0, 3.0), vec![]))
            .unwrap();
        assert_eq!(empty.bounding_box().unwrap(), Rect::new(2.0, 3.0, 2.0, 3.0));
    }

    #[test]
    fn remove_by_id_preserves_order_and_shrinks_the_box() {
        let mut ds = dataset();
        // Object 2 at (2, 5) defines max_y.
        let removed = ds.remove_by_id(2).unwrap();
        assert_eq!(removed.location, Point::new(2.0, 5.0));
        assert_eq!(ds.bounding_box().unwrap(), Rect::new(0.0, 0.0, 4.0, 3.0));
        let ids: Vec<u64> = ds.iter().map(|(_, o)| o.id).collect();
        assert_eq!(ids, vec![0, 1, 3], "remaining order must be preserved");
        assert!(ds.remove_by_id(2).is_none());
        assert!(!ds.contains_id(2));
    }

    #[test]
    fn mutated_dataset_equals_a_fresh_rebuild() {
        // The rebuild-equivalence property: the same mutation sequence
        // applied to a dataset leaves an object sequence identical to one
        // constructed directly from the surviving objects.
        let mut mutated = dataset();
        mutated
            .append(SpatialObject::new(
                10,
                Point::new(1.5, 2.5),
                vec![AttrValue::Cat(2), AttrValue::Num(55.0)],
            ))
            .unwrap();
        mutated.remove_by_id(1).unwrap();
        mutated
            .append(SpatialObject::new(
                11,
                Point::new(3.5, 0.5),
                vec![AttrValue::Cat(0), AttrValue::Num(5.0)],
            ))
            .unwrap();

        let rebuilt = Dataset::new(
            mutated.schema().clone(),
            mutated.objects().cloned().collect(),
        )
        .unwrap();
        assert_eq!(&rebuilt, &mutated);
        assert_eq!(rebuilt.bounding_box(), mutated.bounding_box());
    }

    #[test]
    fn iter_enumerates_in_order() {
        let ds = dataset();
        let ids: Vec<u64> = ds.iter().map(|(_, o)| o.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(!ds.is_empty());
        assert_eq!(ds.len(), 4);
    }

    #[test]
    fn clones_share_chunks_and_appends_copy_at_most_the_tail() {
        // A cloned dataset shares every chunk by reference; appending to
        // the clone leaves the original untouched (copy-on-write).
        let ds = dataset();
        let mut clone = ds.clone();
        clone
            .append(SpatialObject::new(
                7,
                Point::new(0.5, 0.5),
                vec![AttrValue::Cat(1), AttrValue::Num(1.0)],
            ))
            .unwrap();
        assert_eq!(ds.len(), 4);
        assert_eq!(clone.len(), 5);
        let ids: Vec<u64> = ds.objects().map(|o| o.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);

        // Removal from a clone copies only the owning chunk.
        let mut removing = ds.clone();
        removing.remove_by_id(0).unwrap();
        assert_eq!(ds.len(), 4);
        assert_eq!(removing.len(), 3);
        assert_eq!(removing.object(0).id, 1);
    }

    #[test]
    fn chunk_layout_does_not_affect_equality_or_indexing() {
        // Grow a dataset object-by-object through cloned snapshots (the
        // generational engine's access pattern), then compare with a flat
        // single-chunk build of the same objects.
        let mut grown = Dataset::new_unchecked(Schema::empty(), vec![]);
        for i in 0..(super::CHUNK_CAP * 2 + 17) {
            let snapshot = grown.clone(); // force shared tails
            grown
                .append(SpatialObject::new(
                    i as u64,
                    Point::new(i as f64, -(i as f64)),
                    vec![],
                ))
                .unwrap();
            drop(snapshot);
        }
        let flat = Dataset::new_unchecked(Schema::empty(), grown.objects().cloned().collect());
        assert_eq!(grown, flat);
        assert!(grown.chunks.len() > 1, "growth must have chunked");
        assert_eq!(flat.chunks.len(), 1);
        for idx in [0, 1, super::CHUNK_CAP - 1, super::CHUNK_CAP, grown.len() - 1] {
            assert_eq!(grown.object(idx).id, flat.object(idx).id);
        }
        assert_eq!(grown.bounding_box(), flat.bounding_box());

        // Removal keeps positions consistent across the chunk boundary.
        let mut pruned = grown.clone();
        pruned.remove_by_id(3).unwrap();
        assert_eq!(pruned.object(3).id, 4);
        assert_eq!(pruned.object(super::CHUNK_CAP).id, (super::CHUNK_CAP + 1) as u64);
    }

    #[test]
    fn serde_round_trip_preserves_objects_and_box() {
        let ds = dataset();
        let back = Dataset::from_value(&ds.to_value()).unwrap();
        assert_eq!(back, ds);
        assert_eq!(back.bounding_box(), ds.bounding_box());
    }
}
