//! Attribute values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single attribute value attached to a spatial object.
///
/// Categorical values are stored as an index into the attribute's declared
/// domain (see [`crate::AttributeKind::Categorical`]); numeric values are
/// plain `f64`s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// A categorical value: index into the attribute's domain.
    Cat(u32),
    /// A numeric value.
    Num(f64),
}

impl AttrValue {
    /// Returns the categorical index, or `None` for numeric values.
    #[inline]
    pub fn as_cat(&self) -> Option<u32> {
        match self {
            AttrValue::Cat(c) => Some(*c),
            AttrValue::Num(_) => None,
        }
    }

    /// Returns the numeric value, or `None` for categorical values.
    #[inline]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AttrValue::Num(v) => Some(*v),
            AttrValue::Cat(_) => None,
        }
    }

    /// Returns a numeric view of the value: the numeric value itself, or the
    /// categorical index as a float.  Useful for generic statistics.
    #[inline]
    pub fn numeric_view(&self) -> f64 {
        match self {
            AttrValue::Num(v) => *v,
            AttrValue::Cat(c) => *c as f64,
        }
    }

    /// Returns `true` when the value is categorical.
    #[inline]
    pub fn is_cat(&self) -> bool {
        matches!(self, AttrValue::Cat(_))
    }

    /// Returns `true` when the value is numeric.
    #[inline]
    pub fn is_num(&self) -> bool {
        matches!(self, AttrValue::Num(_))
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Cat(c) => write!(f, "#{c}"),
            AttrValue::Num(v) => write!(f, "{v}"),
        }
    }
}

impl From<u32> for AttrValue {
    fn from(c: u32) -> Self {
        AttrValue::Cat(c)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Num(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_matching_variant() {
        assert_eq!(AttrValue::Cat(3).as_cat(), Some(3));
        assert_eq!(AttrValue::Cat(3).as_num(), None);
        assert_eq!(AttrValue::Num(2.5).as_num(), Some(2.5));
        assert_eq!(AttrValue::Num(2.5).as_cat(), None);
    }

    #[test]
    fn numeric_view_covers_both_variants() {
        assert_eq!(AttrValue::Cat(7).numeric_view(), 7.0);
        assert_eq!(AttrValue::Num(-1.25).numeric_view(), -1.25);
    }

    #[test]
    fn variant_predicates() {
        assert!(AttrValue::Cat(0).is_cat());
        assert!(!AttrValue::Cat(0).is_num());
        assert!(AttrValue::Num(0.0).is_num());
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(AttrValue::from(4u32), AttrValue::Cat(4));
        assert_eq!(AttrValue::from(1.5f64), AttrValue::Num(1.5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", AttrValue::Cat(2)), "#2");
        assert_eq!(format!("{}", AttrValue::Num(3.5)), "3.5");
    }
}
