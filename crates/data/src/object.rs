//! Spatial objects.

use crate::AttrValue;
use asrs_geo::Point;
use serde::{Deserialize, Serialize};

/// A spatial object: a location plus one attribute value per schema
/// attribute (Section 3.1 — `o.ρ` and `o[A_i]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialObject {
    /// Stable identifier of the object within its dataset.
    pub id: u64,
    /// Geo-location `o.ρ`.
    pub location: Point,
    /// Attribute values, ordered as in the dataset's [`crate::Schema`].
    pub values: Vec<AttrValue>,
}

impl SpatialObject {
    /// Creates a new spatial object.
    pub fn new(id: u64, location: Point, values: Vec<AttrValue>) -> Self {
        Self {
            id,
            location,
            values,
        }
    }

    /// The value of attribute `idx`, if present.
    #[inline]
    pub fn value(&self, idx: usize) -> Option<&AttrValue> {
        self.values.get(idx)
    }

    /// The categorical value of attribute `idx`, if the value exists and is
    /// categorical.
    #[inline]
    pub fn cat_value(&self, idx: usize) -> Option<u32> {
        self.values.get(idx).and_then(AttrValue::as_cat)
    }

    /// The numeric value of attribute `idx`, if the value exists and is
    /// numeric.
    #[inline]
    pub fn num_value(&self, idx: usize) -> Option<f64> {
        self.values.get(idx).and_then(AttrValue::as_num)
    }

    /// X coordinate shortcut.
    #[inline]
    pub fn x(&self) -> f64 {
        self.location.x
    }

    /// Y coordinate shortcut.
    #[inline]
    pub fn y(&self) -> f64 {
        self.location.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> SpatialObject {
        SpatialObject::new(
            7,
            Point::new(1.0, 2.0),
            vec![AttrValue::Cat(2), AttrValue::Num(4.5)],
        )
    }

    #[test]
    fn value_accessors() {
        let o = obj();
        assert_eq!(o.value(0), Some(&AttrValue::Cat(2)));
        assert_eq!(o.cat_value(0), Some(2));
        assert_eq!(o.num_value(0), None);
        assert_eq!(o.num_value(1), Some(4.5));
        assert_eq!(o.value(5), None);
        assert_eq!(o.cat_value(5), None);
    }

    #[test]
    fn coordinate_shortcuts() {
        let o = obj();
        assert_eq!(o.x(), 1.0);
        assert_eq!(o.y(), 2.0);
        assert_eq!(o.id, 7);
    }
}
