//! Attribute schemas.

use crate::AttrValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind (type) of an attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeKind {
    /// A categorical attribute with a finite domain.
    ///
    /// Values are indices in `0..cardinality`; `labels`, when present, gives
    /// a human-readable name per index (e.g. POI categories, weekdays).
    Categorical {
        /// Number of distinct values in the domain (`|dom(A)|`).
        cardinality: usize,
        /// Optional human-readable labels, one per domain value.
        labels: Option<Vec<String>>,
    },
    /// A numeric attribute with a declared value range.
    ///
    /// The range is used by the bound machinery (Sections 4.3 and 5.3) to
    /// bound the output of the average aggregator for dirty cells.
    Numeric {
        /// Smallest value the attribute can take.
        min: f64,
        /// Largest value the attribute can take.
        max: f64,
    },
}

impl AttributeKind {
    /// A categorical kind without labels.
    pub fn categorical(cardinality: usize) -> Self {
        AttributeKind::Categorical {
            cardinality,
            labels: None,
        }
    }

    /// A categorical kind with labels (cardinality is the label count).
    pub fn categorical_labeled<S: Into<String>>(labels: Vec<S>) -> Self {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        AttributeKind::Categorical {
            cardinality: labels.len(),
            labels: Some(labels),
        }
    }

    /// A numeric kind with the given inclusive range.
    pub fn numeric(min: f64, max: f64) -> Self {
        assert!(min <= max, "numeric range must satisfy min <= max");
        AttributeKind::Numeric { min, max }
    }

    /// Returns `true` when the kind is categorical.
    pub fn is_categorical(&self) -> bool {
        matches!(self, AttributeKind::Categorical { .. })
    }

    /// The cardinality of a categorical kind, or `None` for numeric kinds.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            AttributeKind::Categorical { cardinality, .. } => Some(*cardinality),
            AttributeKind::Numeric { .. } => None,
        }
    }

    /// The numeric range, or `None` for categorical kinds.
    pub fn numeric_range(&self) -> Option<(f64, f64)> {
        match self {
            AttributeKind::Numeric { min, max } => Some((*min, *max)),
            AttributeKind::Categorical { .. } => None,
        }
    }

    /// Checks that a value conforms to this kind.
    pub fn validate(&self, value: &AttrValue) -> Result<(), SchemaError> {
        match (self, value) {
            (AttributeKind::Categorical { cardinality, .. }, AttrValue::Cat(c)) => {
                if (*c as usize) < *cardinality {
                    Ok(())
                } else {
                    Err(SchemaError::CategoryOutOfRange {
                        value: *c,
                        cardinality: *cardinality,
                    })
                }
            }
            (AttributeKind::Numeric { min, max }, AttrValue::Num(v)) => {
                if v.is_finite() && *v >= *min && *v <= *max {
                    Ok(())
                } else {
                    Err(SchemaError::NumericOutOfRange {
                        value: *v,
                        min: *min,
                        max: *max,
                    })
                }
            }
            _ => Err(SchemaError::KindMismatch),
        }
    }
}

/// An attribute definition: a name plus its kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Attribute name (e.g. `"category"`, `"price"`).
    pub name: String,
    /// Attribute kind.
    pub kind: AttributeKind,
}

impl AttributeDef {
    /// Creates an attribute definition.
    pub fn new<S: Into<String>>(name: S, kind: AttributeKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }
}

/// Errors raised when values do not conform to a schema.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// A categorical value lies outside the declared domain.
    CategoryOutOfRange {
        /// The offending value.
        value: u32,
        /// The declared domain size.
        cardinality: usize,
    },
    /// A numeric value lies outside the declared range (or is not finite).
    NumericOutOfRange {
        /// The offending value.
        value: f64,
        /// Declared minimum.
        min: f64,
        /// Declared maximum.
        max: f64,
    },
    /// A categorical value was supplied for a numeric attribute or vice
    /// versa.
    KindMismatch,
    /// An object carries a different number of values than the schema has
    /// attributes.
    ArityMismatch {
        /// Number of values on the object.
        got: usize,
        /// Number of attributes in the schema.
        expected: usize,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::CategoryOutOfRange { value, cardinality } => {
                write!(
                    f,
                    "categorical value {value} out of range (domain size {cardinality})"
                )
            }
            SchemaError::NumericOutOfRange { value, min, max } => {
                write!(
                    f,
                    "numeric value {value} outside declared range [{min}, {max}]"
                )
            }
            SchemaError::KindMismatch => {
                write!(f, "attribute value kind does not match the schema")
            }
            SchemaError::ArityMismatch { got, expected } => {
                write!(
                    f,
                    "object has {got} attribute values, schema expects {expected}"
                )
            }
            SchemaError::UnknownAttribute(name) => write!(f, "unknown attribute: {name}"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// An ordered list of attribute definitions shared by all objects of a
/// dataset (the attribute set `A = {A_1, …, A_m}` of Section 3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Schema {
    attrs: Vec<AttributeDef>,
}

impl Schema {
    /// Creates a schema from attribute definitions.
    pub fn new(attrs: Vec<AttributeDef>) -> Self {
        Self { attrs }
    }

    /// An empty schema (objects carry no attributes; only counting queries
    /// such as MaxRS make sense).
    pub fn empty() -> Self {
        Self { attrs: Vec::new() }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Returns `true` when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute definitions in order.
    pub fn attributes(&self) -> &[AttributeDef] {
        &self.attrs
    }

    /// The definition of attribute `idx`.
    pub fn attribute(&self, idx: usize) -> Option<&AttributeDef> {
        self.attrs.get(idx)
    }

    /// Finds the index of the attribute with the given name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Finds the index of the attribute with the given name, returning a
    /// [`SchemaError::UnknownAttribute`] error when absent.
    pub fn require_attr(&self, name: &str) -> Result<usize, SchemaError> {
        self.attr_index(name)
            .ok_or_else(|| SchemaError::UnknownAttribute(name.to_string()))
    }

    /// Validates a full value tuple against the schema.
    pub fn validate_values(&self, values: &[AttrValue]) -> Result<(), SchemaError> {
        if values.len() != self.attrs.len() {
            return Err(SchemaError::ArityMismatch {
                got: values.len(),
                expected: self.attrs.len(),
            });
        }
        for (def, value) in self.attrs.iter().zip(values) {
            def.kind.validate(value)?;
        }
        Ok(())
    }

    /// Human-readable label of a categorical value, falling back to the
    /// numeric index when no labels are declared.
    pub fn category_label(&self, attr: usize, value: u32) -> String {
        match self.attrs.get(attr).map(|a| &a.kind) {
            Some(AttributeKind::Categorical {
                labels: Some(labels),
                ..
            }) if (value as usize) < labels.len() => labels[value as usize].clone(),
            _ => format!("{value}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new(
                "category",
                AttributeKind::categorical_labeled(vec![
                    "Apartment",
                    "Supermarket",
                    "Restaurant",
                    "Bus stop",
                ]),
            ),
            AttributeDef::new("price", AttributeKind::numeric(0.0, 10.0)),
        ])
    }

    #[test]
    fn attr_lookup_by_name() {
        let s = sample_schema();
        assert_eq!(s.attr_index("price"), Some(1));
        assert_eq!(s.attr_index("missing"), None);
        assert!(matches!(
            s.require_attr("missing"),
            Err(SchemaError::UnknownAttribute(_))
        ));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Schema::empty().is_empty());
    }

    #[test]
    fn categorical_validation() {
        let kind = AttributeKind::categorical(4);
        assert!(kind.validate(&AttrValue::Cat(3)).is_ok());
        assert!(matches!(
            kind.validate(&AttrValue::Cat(4)),
            Err(SchemaError::CategoryOutOfRange { .. })
        ));
        assert!(matches!(
            kind.validate(&AttrValue::Num(1.0)),
            Err(SchemaError::KindMismatch)
        ));
    }

    #[test]
    fn numeric_validation() {
        let kind = AttributeKind::numeric(0.0, 10.0);
        assert!(kind.validate(&AttrValue::Num(5.0)).is_ok());
        assert!(kind.validate(&AttrValue::Num(0.0)).is_ok());
        assert!(matches!(
            kind.validate(&AttrValue::Num(11.0)),
            Err(SchemaError::NumericOutOfRange { .. })
        ));
        assert!(matches!(
            kind.validate(&AttrValue::Num(f64::NAN)),
            Err(SchemaError::NumericOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn numeric_kind_rejects_inverted_range() {
        AttributeKind::numeric(5.0, 1.0);
    }

    #[test]
    fn validate_values_checks_arity_and_kinds() {
        let s = sample_schema();
        assert!(s
            .validate_values(&[AttrValue::Cat(0), AttrValue::Num(3.0)])
            .is_ok());
        assert!(matches!(
            s.validate_values(&[AttrValue::Cat(0)]),
            Err(SchemaError::ArityMismatch { .. })
        ));
        assert!(s
            .validate_values(&[AttrValue::Num(1.0), AttrValue::Num(3.0)])
            .is_err());
    }

    #[test]
    fn category_labels_resolve() {
        let s = sample_schema();
        assert_eq!(s.category_label(0, 2), "Restaurant");
        assert_eq!(s.category_label(0, 99), "99");
        assert_eq!(s.category_label(1, 1), "1");
    }

    #[test]
    fn kind_accessors() {
        let c = AttributeKind::categorical(7);
        assert!(c.is_categorical());
        assert_eq!(c.cardinality(), Some(7));
        assert_eq!(c.numeric_range(), None);
        let n = AttributeKind::numeric(-1.0, 1.0);
        assert!(!n.is_categorical());
        assert_eq!(n.cardinality(), None);
        assert_eq!(n.numeric_range(), Some((-1.0, 1.0)));
    }

    #[test]
    fn error_display_is_informative() {
        let e = SchemaError::CategoryOutOfRange {
            value: 9,
            cardinality: 4,
        };
        assert!(format!("{e}").contains("out of range"));
        let e = SchemaError::UnknownAttribute("foo".into());
        assert!(format!("{e}").contains("foo"));
    }
}
