//! Binary column-oriented encoding of datasets and mutations — the byte
//! substrate of the `asrs-persist` snapshot and write-ahead-log formats.
//!
//! # Layout
//!
//! All integers are little-endian; every `f64` travels as its IEEE-754 bit
//! pattern ([`f64::to_bits`]), so a decoded dataset is **bit-identical** to
//! the encoded one — NaNs, signed zeros and subnormals included.  A
//! dataset is stored column-oriented, in the spirit of the Parquet layout:
//! the schema (as JSON — the workspace serializer round-trips every `f64`
//! exactly), then one column per field — ids, xs, ys, and one value column
//! per schema attribute — each column holding all objects' entries
//! consecutively.  Column-major order groups same-typed bytes, which is
//! what makes a later compression pass worthwhile; order within a column
//! is the dataset's object order, so decoding reconstructs the exact
//! object vector (the engine's rebuild-equivalence guarantee depends on
//! it).
//!
//! The codec performs *no* framing, checksumming or versioning — those
//! belong to the file formats in `asrs-persist`, which wrap these bytes in
//! checked sections.  Decoding is bounds-checked and reports
//! [`ColumnarError`] instead of panicking, but it trusts the content
//! semantically (callers verify a CRC before decoding).

use crate::{AttrValue, Dataset, Mutation, Schema, SpatialObject};
use asrs_geo::Point;
use std::fmt;

/// Decoding failure: truncated input or a malformed tag.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl ColumnarError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "columnar decode failed: {}", self.message)
    }
}

impl std::error::Error for ColumnarError {}

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked sequential reader over an encoded byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ColumnarError> {
        if self.remaining() < n {
            return Err(ColumnarError::new(format!(
                "needed {n} bytes at offset {}, only {} available",
                self.at,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, ColumnarError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ColumnarError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ColumnarError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, ColumnarError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ColumnarError> {
        let len = self.u64()? as usize;
        if len > self.remaining() {
            return Err(ColumnarError::new(format!(
                "string length {len} exceeds the {} remaining bytes",
                self.remaining()
            )));
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|e| ColumnarError::new(format!("string is not UTF-8: {e}")))
    }
}

/// Value-column tags.
const TAG_CAT: u8 = 1;
const TAG_NUM: u8 = 2;

/// Mutation tags.
const TAG_APPEND: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_EXPIRE: u8 = 3;

fn put_value(out: &mut Vec<u8>, value: &AttrValue) {
    match value {
        AttrValue::Cat(c) => {
            put_u8(out, TAG_CAT);
            put_u32(out, *c);
        }
        AttrValue::Num(v) => {
            put_u8(out, TAG_NUM);
            put_f64(out, *v);
        }
    }
}

fn read_value(reader: &mut Reader<'_>) -> Result<AttrValue, ColumnarError> {
    match reader.u8()? {
        TAG_CAT => Ok(AttrValue::Cat(reader.u32()?)),
        TAG_NUM => Ok(AttrValue::Num(reader.f64()?)),
        tag => Err(ColumnarError::new(format!("unknown value tag {tag}"))),
    }
}

/// Encodes `dataset` column-oriented (see the module documentation).
///
/// The attribute column count is taken from the schema; objects are
/// expected to carry one value per attribute (every validated dataset
/// does).
pub fn encode_dataset(dataset: &Dataset, out: &mut Vec<u8>) {
    put_str(out, &serde::json::to_string(dataset.schema()));
    put_u64(out, dataset.len() as u64);
    for o in dataset.objects() {
        put_u64(out, o.id);
    }
    for o in dataset.objects() {
        put_f64(out, o.location.x);
    }
    for o in dataset.objects() {
        put_f64(out, o.location.y);
    }
    let arity = dataset.schema().len();
    put_u32(out, arity as u32);
    for attr in 0..arity {
        for o in dataset.objects() {
            put_value(out, &o.values[attr]);
        }
    }
}

/// Decodes a dataset encoded by [`encode_dataset`], reconstructing the
/// exact object vector (ids, locations and values are bit-identical and
/// in the original order).
///
/// The objects are *not* re-validated against the schema — the encoder
/// only ever sees validated datasets, and persistence callers verify a
/// checksum before decoding.
pub fn decode_dataset(reader: &mut Reader<'_>) -> Result<Dataset, ColumnarError> {
    let schema_json = reader.str()?;
    let schema: Schema = serde::json::from_str(&schema_json)
        .map_err(|e| ColumnarError::new(format!("schema JSON invalid: {e}")))?;
    let n = reader.u64()? as usize;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(reader.u64()?);
    }
    let mut xs = Vec::with_capacity(n);
    for _ in 0..n {
        xs.push(reader.f64()?);
    }
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        ys.push(reader.f64()?);
    }
    let arity = reader.u32()? as usize;
    let mut columns: Vec<Vec<AttrValue>> = Vec::with_capacity(arity);
    for _ in 0..arity {
        let mut column = Vec::with_capacity(n);
        for _ in 0..n {
            column.push(read_value(reader)?);
        }
        columns.push(column);
    }
    let objects: Vec<SpatialObject> = (0..n)
        .map(|i| {
            SpatialObject::new(
                ids[i],
                Point::new(xs[i], ys[i]),
                columns.iter().map(|column| column[i]).collect(),
            )
        })
        .collect();
    Ok(Dataset::new_unchecked(schema, objects))
}

/// Encodes one object row-oriented (the WAL's append payload).
pub fn encode_object(object: &SpatialObject, out: &mut Vec<u8>) {
    put_u64(out, object.id);
    put_f64(out, object.location.x);
    put_f64(out, object.location.y);
    put_u32(out, object.values.len() as u32);
    for value in &object.values {
        put_value(out, value);
    }
}

/// Decodes an object encoded by [`encode_object`].
pub fn decode_object(reader: &mut Reader<'_>) -> Result<SpatialObject, ColumnarError> {
    let id = reader.u64()?;
    let x = reader.f64()?;
    let y = reader.f64()?;
    let arity = reader.u32()? as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(read_value(reader)?);
    }
    Ok(SpatialObject::new(id, Point::new(x, y), values))
}

/// Encodes one mutation (the WAL's frame payload).
pub fn encode_mutation(mutation: &Mutation, out: &mut Vec<u8>) {
    match mutation {
        Mutation::Append { object } => {
            put_u8(out, TAG_APPEND);
            encode_object(object, out);
        }
        Mutation::Remove { id } => {
            put_u8(out, TAG_REMOVE);
            put_u64(out, *id);
        }
        Mutation::Expire { id } => {
            put_u8(out, TAG_EXPIRE);
            put_u64(out, *id);
        }
    }
}

/// Decodes a mutation encoded by [`encode_mutation`].
pub fn decode_mutation(reader: &mut Reader<'_>) -> Result<Mutation, ColumnarError> {
    match reader.u8()? {
        TAG_APPEND => Ok(Mutation::Append {
            object: decode_object(reader)?,
        }),
        TAG_REMOVE => Ok(Mutation::Remove { id: reader.u64()? }),
        TAG_EXPIRE => Ok(Mutation::Expire { id: reader.u64()? }),
        tag => Err(ColumnarError::new(format!("unknown mutation tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TweetGenerator, UniformGenerator};

    #[test]
    fn dataset_round_trips_bit_identically() {
        for dataset in [
            UniformGenerator::default().generate(200, 11),
            TweetGenerator::compact(24).generate(150, 3),
        ] {
            let mut bytes = Vec::new();
            encode_dataset(&dataset, &mut bytes);
            let decoded = decode_dataset(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(decoded.schema(), dataset.schema());
            assert!(decoded.objects().eq(dataset.objects()));
        }
    }

    #[test]
    fn non_finite_and_signed_zero_floats_survive() {
        let ds = UniformGenerator::default().generate(3, 1);
        let mut bytes = Vec::new();
        for v in [f64::NAN, f64::INFINITY, -0.0, f64::MIN_POSITIVE] {
            bytes.clear();
            put_f64(&mut bytes, v);
            let back = Reader::new(&bytes).f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        // A full object with an exotic location round-trips bit-exactly.
        let object =
            SpatialObject::new(99, Point::new(-0.0, 1.0e-310), ds.object(0).values.clone());
        bytes.clear();
        encode_object(&object, &mut bytes);
        let back = decode_object(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.location.x.to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.location.y.to_bits(), 1.0e-310f64.to_bits());
        assert_eq!(back, object);
    }

    #[test]
    fn mutations_round_trip() {
        let ds = UniformGenerator::default().generate(5, 7);
        for mutation in [
            Mutation::Append {
                object: ds.object(2).clone(),
            },
            Mutation::Remove { id: 42 },
            Mutation::Expire { id: 7 },
        ] {
            let mut bytes = Vec::new();
            encode_mutation(&mutation, &mut bytes);
            assert_eq!(decode_mutation(&mut Reader::new(&bytes)).unwrap(), mutation);
        }
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let ds = UniformGenerator::default().generate(20, 5);
        let mut bytes = Vec::new();
        encode_dataset(&ds, &mut bytes);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_dataset(&mut Reader::new(&bytes[..cut]));
            assert!(err.is_err(), "cut at {cut} must fail");
        }
        // Garbage tag.
        let err = decode_mutation(&mut Reader::new(&[9u8, 0, 0])).unwrap_err();
        assert!(err.message.contains("unknown mutation tag"));
    }
}
