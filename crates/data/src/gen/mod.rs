//! Synthetic workload generators.
//!
//! The paper evaluates on two large proprietary datasets (the 3.2 × 10⁸
//! geo-tagged `Tweet` corpus and the `POISyn` dataset derived from it) plus
//! the Foursquare Singapore POIs used in the case study.  None of these can
//! be redistributed, so this module provides deterministic generators that
//! reproduce the statistical properties the algorithms are sensitive to:
//!
//! * spatial skew (population-centre style Gaussian clusters inside the
//!   paper's US bounding box),
//! * coordinate quantisation (the GPS accuracy ΔX = ΔY = 10⁻⁸ reported in
//!   Section 7.1),
//! * the attribute layouts used by the paper's composite aggregators F1
//!   (day-of-week distribution) and F2 (sum of visits + average rating).
//!
//! All generators are seeded and therefore reproducible.

mod city;
mod clusters;
mod poisyn;
mod tweet;
mod uniform;

pub use city::{CityGenerator, CityMap, District, CITY_CATEGORIES};
pub use clusters::{Cluster, ClusteredGenerator};
pub use poisyn::PoiSynGenerator;
pub use tweet::{TweetGenerator, WEEKDAY_LABELS};
pub use uniform::UniformGenerator;

use asrs_geo::{Point, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates the deterministic RNG used by all generators.
pub(crate) fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Samples a standard-normal value using the Box–Muller transform.
///
/// `rand` (without `rand_distr`) does not ship a normal distribution; this
/// keeps the workspace within its allowed dependency set.
pub(crate) fn sample_gaussian(rng: &mut SmallRng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Samples a point from an isotropic Gaussian centred at `center`, clamped
/// to `bbox`.
pub(crate) fn sample_gaussian_point(
    rng: &mut SmallRng,
    center: Point,
    sigma_x: f64,
    sigma_y: f64,
    bbox: &Rect,
) -> Point {
    let x = center.x + sample_gaussian(rng) * sigma_x;
    let y = center.y + sample_gaussian(rng) * sigma_y;
    Point::new(
        x.clamp(bbox.min_x, bbox.max_x),
        y.clamp(bbox.min_y, bbox.max_y),
    )
}

/// Snaps a coordinate to an integer multiple of `quantum`, emulating finite
/// positioning accuracy.
pub(crate) fn quantize(value: f64, quantum: f64) -> f64 {
    if quantum <= 0.0 {
        value
    } else {
        (value / quantum).round() * quantum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_sampler_has_roughly_zero_mean_unit_variance() {
        let mut rng = rng_from_seed(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn gaussian_point_respects_bbox() {
        let mut rng = rng_from_seed(1);
        let bbox = Rect::new(0.0, 0.0, 1.0, 1.0);
        for _ in 0..1000 {
            let p = sample_gaussian_point(&mut rng, Point::new(0.5, 0.5), 2.0, 2.0, &bbox);
            assert!(bbox.contains_point(&p));
        }
    }

    #[test]
    fn quantize_rounds_to_multiples() {
        assert_eq!(quantize(0.123456, 0.01), 0.12);
        assert_eq!(quantize(5.0, 0.0), 5.0);
        assert!((quantize(1.000000004, 1e-8) - 1.0).abs() < 1e-12);
    }
}
