//! The synthetic analogue of the paper's `POISyn` dataset.
//!
//! The paper derives `POISyn` from `Tweet`: every tweet becomes a POI at the
//! same location with a `rating` ∈ [0, 10] proportional to the tweet length
//! and a `number of visits` drawn uniformly from [1, 500] (Section 7.1).
//! The composite aggregator F2 computes the *sum* of visits and the
//! *average* rating of a region.
//!
//! The generator mirrors this derivation: the spatial process is the same
//! clustered process as [`super::TweetGenerator`]; the rating follows a
//! right-skewed distribution in [0, 10] (mimicking the tweet-length
//! distribution), and visits are uniform integers in [1, 500].

use super::{rng_from_seed, ClusteredGenerator};
use crate::{AttrValue, AttributeDef, AttributeKind, Dataset, Schema, SpatialObject};
use asrs_geo::{Point, Rect};
use rand::Rng;

/// Generator for POISyn-like workloads.
#[derive(Debug, Clone)]
pub struct PoiSynGenerator {
    /// Spatial extent (defaults to the paper's US bounding box).
    pub bbox: Rect,
    /// Number of spatial clusters.
    pub num_clusters: usize,
    /// Coordinate quantum.
    pub quantum: f64,
    /// Seed controlling cluster placement and per-cluster rating bias.
    pub structure_seed: u64,
}

impl Default for PoiSynGenerator {
    fn default() -> Self {
        Self {
            bbox: Rect::new(-124.87, 24.39, -66.86, 49.39),
            num_clusters: 24,
            quantum: 1e-8,
            structure_seed: 0xC0FF_EE00,
        }
    }
}

impl PoiSynGenerator {
    /// A compact, unit-free variant for tests.
    pub fn compact(num_clusters: usize) -> Self {
        Self {
            bbox: Rect::new(0.0, 0.0, 1000.0, 1000.0),
            num_clusters,
            quantum: 1e-6,
            structure_seed: 0xC0FF_EE00,
        }
    }

    /// Index of the `visits` attribute in the generated schema.
    pub const VISITS_ATTR: usize = 0;
    /// Index of the `rating` attribute in the generated schema.
    pub const RATING_ATTR: usize = 1;

    /// The schema of generated datasets: `visits` ∈ [1, 500] and
    /// `rating` ∈ [0, 10].
    pub fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("visits", AttributeKind::numeric(1.0, 500.0)),
            AttributeDef::new("rating", AttributeKind::numeric(0.0, 10.0)),
        ])
    }

    /// Generates `n` POI-like objects.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        let spatial = ClusteredGenerator::random_clusters(
            self.bbox,
            self.num_clusters.max(1),
            self.structure_seed,
        );
        // Clusters differ in how highly rated and how popular their POIs
        // are, so that "many visits and great ratings" regions exist.
        let mut structure_rng = rng_from_seed(self.structure_seed ^ 0x9876_5432);
        let cluster_quality: Vec<(f64, f64)> = (0..self.num_clusters.max(1))
            .map(|i| {
                let rating_mean = if i % 4 == 0 {
                    structure_rng.gen_range(7.0..9.0)
                } else {
                    structure_rng.gen_range(3.0..6.5)
                };
                let visit_scale = if i % 4 == 0 {
                    structure_rng.gen_range(0.6..1.0)
                } else {
                    structure_rng.gen_range(0.2..0.6)
                };
                (rating_mean, visit_scale)
            })
            .collect();

        let mut rng = rng_from_seed(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|id| {
                let raw = spatial.sample_point(&mut rng);
                let p = Point::new(
                    super::quantize(raw.x, self.quantum),
                    super::quantize(raw.y, self.quantum),
                );
                let cluster = spatial.nearest_cluster(&raw);
                let (rating_mean, visit_scale) = cluster_quality[cluster];
                // Right-skewed rating around the cluster mean, clamped to
                // the declared [0, 10] domain.
                let rating =
                    (rating_mean + super::sample_gaussian(&mut rng) * 1.5).clamp(0.0, 10.0);
                // Visits: uniform in [1, 500], scaled by cluster popularity.
                let base_visits = rng.gen_range(1.0..=500.0);
                let visits = (base_visits * visit_scale).clamp(1.0, 500.0).round();
                SpatialObject::new(
                    id as u64,
                    p,
                    vec![AttrValue::Num(visits), AttrValue::Num(rating)],
                )
            })
            .collect();
        Dataset::new_unchecked(Self::schema(), objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_declares_expected_ranges() {
        let s = PoiSynGenerator::schema();
        assert_eq!(s.attr_index("visits"), Some(PoiSynGenerator::VISITS_ATTR));
        assert_eq!(s.attr_index("rating"), Some(PoiSynGenerator::RATING_ATTR));
        assert_eq!(
            s.attribute(PoiSynGenerator::RATING_ATTR)
                .unwrap()
                .kind
                .numeric_range(),
            Some((0.0, 10.0))
        );
    }

    #[test]
    fn values_stay_inside_declared_domains() {
        let ds = PoiSynGenerator::compact(6).generate(1000, 1);
        for o in ds.objects() {
            let visits = o.num_value(PoiSynGenerator::VISITS_ATTR).unwrap();
            let rating = o.num_value(PoiSynGenerator::RATING_ATTR).unwrap();
            assert!((1.0..=500.0).contains(&visits));
            assert!((0.0..=10.0).contains(&rating));
        }
    }

    #[test]
    fn validates_against_its_own_schema() {
        let ds = PoiSynGenerator::compact(3).generate(200, 2);
        for o in ds.objects() {
            assert!(ds.schema().validate_values(&o.values).is_ok());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = PoiSynGenerator::compact(4);
        assert_eq!(g.generate(64, 8), g.generate(64, 8));
    }

    #[test]
    fn rating_distribution_has_spread() {
        let ds = PoiSynGenerator::compact(8).generate(2000, 5);
        let (lo, hi) = ds.numeric_extent(PoiSynGenerator::RATING_ATTR).unwrap();
        assert!(
            hi - lo > 3.0,
            "ratings should span a meaningful range, got [{lo}, {hi}]"
        );
    }
}
